//! Snapshot-accelerated campaigns must be *bitwise* equivalent to direct
//! ones: same `CampaignResult`, same per-trial records and events, same
//! telemetry artifacts (trial JSONL, metrics JSON, coverage JSON) — for
//! register and branch-target faults, at 1 and 3 worker threads, across
//! checkpoint intervals — and on both the decoded and the fused
//! execution tiers, including cross-tier (snapshots taken under one
//! engine drive resumes under the other). The snapshot engine is a pure
//! perf optimization; any observable divergence is a bug.

use softft::Technique;
use softft_campaign::campaign::{
    run_campaign_attributed, run_campaign_with_stats, CampaignConfig, CampaignTelemetry,
};
use softft_campaign::coverage::build_coverage;
use softft_campaign::prep::prepare;
use softft_vm::fault::FaultKind;
use softft_vm::interp::{Engine, VmConfig};
use softft_workloads::workload_by_name;

fn cfg(threads: usize, kind: FaultKind, interval: u64, engine: Engine) -> CampaignConfig {
    CampaignConfig {
        trials: 40,
        seed: 11,
        threads,
        fault_kind: kind,
        snapshot_interval: interval,
        vm: VmConfig {
            engine,
            ..VmConfig::default()
        },
        ..CampaignConfig::default()
    }
}

#[test]
fn snapshot_results_match_direct_across_kinds_threads_and_intervals() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let t = Technique::DupVal;
    for kind in [FaultKind::Register, FaultKind::BranchTarget] {
        let (direct, dstats) =
            run_campaign_with_stats(&*p.workload, p.module(t), &cfg(1, kind, 0, Engine::Decoded));
        assert_eq!(dstats.resumed_trials, 0);
        assert_eq!(dstats.checkpoints, 0);
        for engine in [Engine::Decoded, Engine::Fused] {
            for interval in [700, 5000] {
                for prune in [false, true] {
                    let threads = 3;
                    let mut c = cfg(threads, kind, interval, engine);
                    c.prune = prune;
                    let (snap, stats) = run_campaign_with_stats(&*p.workload, p.module(t), &c);
                    assert_eq!(
                        direct, snap,
                        "{kind:?} diverged on {engine:?} at {threads} threads, \
                         interval {interval}, prune {prune}"
                    );
                    assert!(
                        stats.resumed_trials > 0,
                        "{kind:?} {engine:?} interval {interval}: no trial resumed"
                    );
                    assert_eq!(
                        stats.resumed_trials + stats.fresh_trials + stats.pruned_trials,
                        40
                    );
                    assert!(stats.prefix_insts_skipped >= stats.resumed_trials * interval);
                    // Register faults prune when enabled (dead/masked
                    // victims are common); branch-target faults never do.
                    if kind == FaultKind::Register && prune {
                        assert!(
                            stats.pruned_trials > 0,
                            "{kind:?} {engine:?} interval {interval}: nothing pruned"
                        );
                        assert!(stats.pruned_insts_skipped > 0);
                    } else {
                        assert_eq!(stats.pruned_trials, 0);
                    }
                    // Masked register-fault trials re-join the golden
                    // state within a few intervals, so convergence
                    // early-exit must fire (and still produce the
                    // bitwise-equal result asserted above) — checked with
                    // pruning off, since pruning removes exactly those
                    // trials first. Branch-target trials mark control
                    // flow corrupted, which the convergence guard
                    // refuses.
                    if kind == FaultKind::Register && !prune {
                        assert!(
                            stats.converged_trials > 0,
                            "{kind:?} {engine:?} interval {interval}: no trial converged"
                        );
                        assert!(stats.suffix_insts_skipped > 0);
                    }
                }
            }
        }
    }
}

/// Serializes telemetry exactly as `repro --telemetry` writes it, so the
/// comparison covers the bytes that reach disk.
fn artifact_bytes(tel: &CampaignTelemetry) -> (String, String) {
    let mut jsonl = String::new();
    for e in &tel.events {
        jsonl.push_str(&e.to_jsonl().expect("event serializes"));
        jsonl.push('\n');
    }
    (jsonl, tel.metrics.to_json())
}

#[test]
fn snapshot_telemetry_artifacts_are_byte_identical() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let t = Technique::DupVal;
    let (dres, dtel) = run_campaign_attributed(
        &*p.workload,
        p.module(t),
        &cfg(2, FaultKind::Register, 0, Engine::Decoded),
        Some(p.protection(t)),
    );
    let (sres, stel) = run_campaign_attributed(
        &*p.workload,
        p.module(t),
        &cfg(2, FaultKind::Register, 1500, Engine::Fused),
        Some(p.protection(t)),
    );
    assert_eq!(dres, sres);
    assert_eq!(dtel.events, stel.events);
    assert_eq!(dtel.records, stel.records);
    assert_eq!(dtel.checks, stel.checks);

    let (d_jsonl, d_metrics) = artifact_bytes(&dtel);
    let (s_jsonl, s_metrics) = artifact_bytes(&stel);
    assert_eq!(d_jsonl, s_jsonl, "trial JSONL diverged");
    assert_eq!(d_metrics, s_metrics, "metrics JSON diverged");

    let cov = |res, records| {
        build_coverage("tiff2bw", t, p.module(t), p.protection(t), res, records)
            .to_json()
            .expect("coverage serializes")
    };
    assert_eq!(
        cov(&dres, &dtel.records),
        cov(&sres, &stel.records),
        "coverage JSON diverged"
    );
}
