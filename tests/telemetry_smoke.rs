//! Cross-crate telemetry integration: the `repro` orchestration writes
//! well-formed trial JSONL / manifests / metrics, report output is
//! byte-stable, and tracing never changes campaign results.

use softft_bench::orchestrate::run_exhibit;
use softft_bench::{Exhibit, ReproConfig};
use softft_telemetry::{RunManifest, TrialEvent, TRIAL_SCHEMA_VERSION};
use std::path::PathBuf;

fn small() -> ReproConfig {
    ReproConfig {
        trials: 12,
        seed: 3,
        benchmarks: vec!["tiff2bw".into()],
        threads: 2,
        ..ReproConfig::default()
    }
}

/// A scratch directory under the target-adjacent temp area, removed on
/// drop so repeated test runs start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("softft-telemetry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn latency_exhibit_renders_without_telemetry() {
    let cfg = small();
    let out = run_exhibit(Exhibit::Latency, &cfg);
    assert!(out.contains("Detection latency"), "{out}");
    assert!(out.contains("sw-p50"), "{out}");
    assert!(out.contains("tiff2bw"), "{out}");
    // All four techniques appear.
    for label in ["Original", "Dup only", "Dup + val chks", "Full duplication"] {
        assert!(out.contains(label), "missing {label}:\n{out}");
    }
}

#[test]
fn campaign_reports_are_byte_stable() {
    // Golden-stability: identical config twice → identical bytes, for a
    // per-outcome report and the latency exhibit.
    let cfg = small();
    for ex in [Exhibit::Fig11, Exhibit::Detect, Exhibit::Latency] {
        let a = run_exhibit(ex, &cfg);
        let b = run_exhibit(ex, &cfg);
        assert_eq!(a, b, "{ex:?} output must be byte-stable");
    }
}

#[test]
fn telemetry_dir_gets_manifest_and_trials_per_technique() {
    let scratch = ScratchDir::new("fig11");
    let cfg = ReproConfig {
        telemetry: Some(scratch.0.clone()),
        ..small()
    };
    // Fig. 11 runs Original, DupOnly, DupVal (and FullDup for its
    // comparator line), exercising the acceptance matrix.
    let out = run_exhibit(Exhibit::Fig11, &cfg);
    assert!(out.contains("tiff2bw"), "{out}");

    for tech in ["original", "dup-only", "dup-val"] {
        let file = |suffix: &str| scratch.0.join(format!("tiff2bw.{tech}.{suffix}"));

        let manifest_path = file("manifest.json");
        let manifest = std::fs::read_to_string(&manifest_path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", manifest_path.display()));
        let m = RunManifest::from_json(&manifest).expect("manifest parses");
        assert_eq!(m.schema_version, TRIAL_SCHEMA_VERSION);
        assert_eq!(m.benchmark, "tiff2bw");
        assert_eq!(m.trials, 12);
        assert_eq!(m.master_seed, 3);
        assert_eq!(m.fault_kind, "register");
        assert!(m.golden_dyn_insts > 0);

        let jsonl_path = file("trials.jsonl");
        let jsonl = std::fs::read_to_string(&jsonl_path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", jsonl_path.display()));
        let events: Vec<TrialEvent> = jsonl
            .lines()
            .map(|l| TrialEvent::from_jsonl(l).expect("event parses"))
            .collect();
        assert_eq!(events.len(), 12, "{tech}: one event per trial");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.trial, i as u32);
            assert!(e.at_dyn < m.golden_dyn_insts);
            assert!(e.dyn_insts > 0);
            // Detection metadata is internally consistent.
            assert_eq!(e.detected_by.is_some(), e.outcome.starts_with("swdetect."));
            if e.outcome.starts_with("swdetect.") || e.outcome == "hwdetect" {
                assert!(e.detect_latency.is_some(), "{tech} trial {i}: {e:?}");
            }
        }

        let metrics_path = file("metrics.json");
        let metrics = std::fs::read_to_string(&metrics_path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", metrics_path.display()));
        assert!(
            metrics.starts_with('{') && metrics.ends_with('}'),
            "{metrics}"
        );
        assert!(metrics.contains("vm.dyn_insts"), "{metrics}");
        assert!(metrics.contains("\"outcome."), "{metrics}");
    }
}

#[test]
fn telemetry_does_not_change_report_output() {
    // The NoopObserver fast path and the traced path classify every
    // trial identically: the rendered exhibit is byte-identical with
    // and without --telemetry.
    let scratch = ScratchDir::new("equiv");
    let plain_cfg = small();
    let traced_cfg = ReproConfig {
        telemetry: Some(scratch.0.clone()),
        ..small()
    };
    let plain = run_exhibit(Exhibit::Detect, &plain_cfg);
    let traced = run_exhibit(Exhibit::Detect, &traced_cfg);
    assert_eq!(plain, traced);
}
