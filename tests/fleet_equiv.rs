//! Fleet campaigns must be *bitwise* equivalent to single-process
//! ones: any worker count, thread count, steal interleaving, torn
//! tail, or killed-and-reclaimed worker produces a store whose replay
//! matches `run_campaign_attributed` over the same config — results,
//! per-trial records, attributed events, metrics JSON, and coverage.
//! Distribution is pure scheduling; any observable divergence is a bug.

use softft::Technique;
use softft_campaign::campaign::{run_campaign_attributed, CampaignConfig};
use softft_campaign::coverage::build_coverage;
use softft_campaign::live::{
    plan_hash, replay, run_campaign_to_store, store_manifest, stored_trial,
};
use softft_campaign::prep::{prepare, PreparedBenchmark};
use softft_campaign::{golden_dyn_insts, neutralized_module, ShardEngine, SharedRange};
use softft_fleet::{run_fleet_campaign, FleetConfig};
use softft_telemetry::{shard_file_name, shard_file_name_worker, RunStore, ShardMeta};
use softft_vm::fault::FaultPlan;
use softft_workloads::workload_by_name;
use std::io::Write;
use std::path::{Path, PathBuf};

const TECH: Technique = Technique::DupVal;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softft_fleet_equiv_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(trials: u32, threads: usize, interval: u64) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 11,
        threads,
        snapshot_interval: interval,
        ..CampaignConfig::default()
    }
}

fn fleet(workers: usize, worker_threads: usize) -> FleetConfig {
    FleetConfig {
        workers,
        worker_threads,
        ..FleetConfig::default()
    }
}

/// Replays `dir`'s single shard (primary file plus all worker files)
/// and asserts every aggregate matches a fresh buffered campaign under
/// the same config.
fn assert_matches_buffered(dir: &Path, p: &PreparedBenchmark, ccfg: &CampaignConfig, ctx: &str) {
    let shards = replay(dir).expect("replay");
    assert_eq!(shards.len(), 1, "{ctx}: shard count");
    let shard = &shards[0];
    assert!(shard.complete, "{ctx}: shard incomplete");
    let t = shard.technique;
    let (res, tel) =
        run_campaign_attributed(&*p.workload, p.module(t), ccfg, Some(p.protection(t)));
    assert_eq!(shard.result, res, "{ctx}: result diverged");
    assert_eq!(shard.telemetry.events, tel.events, "{ctx}: events diverged");
    assert_eq!(
        shard.telemetry.records, tel.records,
        "{ctx}: records diverged"
    );
    assert_eq!(shard.telemetry.checks, tel.checks, "{ctx}: checks diverged");
    assert_eq!(
        shard.telemetry.metrics.to_json(),
        tel.metrics.to_json(),
        "{ctx}: metrics diverged"
    );
    let cov = build_coverage(
        &shard.benchmark,
        t,
        p.module(t),
        p.protection(t),
        &res,
        &tel.records,
    );
    assert_eq!(shard.coverage, cov, "{ctx}: coverage diverged");
}

#[test]
fn fleet_matches_buffered_across_worker_and_thread_counts() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    for (workers, threads) in [(1, 1), (2, 1), (3, 2)] {
        let ccfg = cfg(24, 1, 1000);
        let dir = temp_store(&format!("pool_{workers}_{threads}"));
        let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();
        let report = run_fleet_campaign(&store, &p, TECH, &ccfg, fleet(workers, threads)).unwrap();
        assert!(report.complete, "w{workers} t{threads}: incomplete");
        assert_eq!(report.distinct_done, 24);
        assert_eq!(report.workers, workers);
        assert_matches_buffered(&dir, &p, &ccfg, &format!("w{workers} t{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fleet_resumes_partial_single_process_store() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let ccfg = cfg(30, 2, 1000);
    let dir = temp_store("resume");
    let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();

    // A single-process campaign is interrupted after 11 trials…
    let first = run_campaign_to_store(&store, &p, TECH, &ccfg, Some(11)).unwrap();
    assert_eq!(first.executed, 11);
    assert!(!first.complete);

    // …and a fleet finishes exactly the remainder.
    let store = RunStore::open(&dir).unwrap();
    let report = run_fleet_campaign(&store, &p, TECH, &ccfg, fleet(2, 1)).unwrap();
    assert_eq!(report.already_done, 11);
    assert!(report.complete);
    assert_eq!(report.distinct_done, 30);

    // A second fleet invocation finds nothing left to do.
    let again = run_fleet_campaign(&store, &p, TECH, &ccfg, fleet(2, 1)).unwrap();
    assert_eq!(again.executed, 0);
    assert!(again.complete);

    assert_matches_buffered(&dir, &p, &ccfg, "single-process interrupt + fleet resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The runstore concurrent-writer stress test: N threads append
/// disjoint shard ranges to their own worker files, each "killed"
/// mid-campaign (a prefix of its range persisted, then a torn
/// half-frame appended to simulate dying mid-write). Reopening must
/// truncate each torn tail independently, and a fleet resume over the
/// now-sparse missing set must fold bitwise-identically to a buffered
/// campaign.
#[test]
fn concurrent_writers_with_torn_tails_fold_bitwise() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let ccfg = cfg(30, 1, 1000);
    let dir = temp_store("stress");
    let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();

    // Register the shard with three worker files, exactly as a fleet
    // coordinator would.
    let bench = p.workload.name().to_string();
    let label = format!("{}/{}", bench, TECH.slug());
    let golden = golden_dyn_insts(&*p.workload, p.module(TECH), &ccfg);
    let worker_files: Vec<String> = (0..3).map(|w| shard_file_name_worker(&label, w)).collect();
    let wf = worker_files.clone();
    store
        .update_manifest(|m| {
            m.shards.push(ShardMeta {
                label: label.clone(),
                benchmark: bench.clone(),
                technique: TECH.slug().to_string(),
                file: shard_file_name(&label),
                plan_hash: plan_hash(&bench, TECH, &ccfg, golden),
                golden_dyn_insts: golden,
                completed: 0,
                complete: false,
                wall_ms: 0,
                worker_files: wf,
            });
        })
        .unwrap();

    // Three concurrent writers over disjoint ranges, each persisting
    // only a prefix of its share before "dying".
    let module = neutralized_module(&*p.workload, p.module(TECH), &ccfg);
    let engine = ShardEngine::prepare(&*p.workload, &module, &ccfg);
    let prefixes: [(usize, usize); 3] = [(0, 6), (10, 14), (20, 27)];
    std::thread::scope(|scope| {
        for (w, (lo, hi)) in prefixes.iter().enumerate() {
            let writer = store.shard_writer(&worker_files[w]).unwrap();
            let engine = &engine;
            let range = SharedRange::new(*lo, *hi);
            scope.spawn(move || {
                let sink = |i: usize,
                            _plan: &FaultPlan,
                            rec: &softft_campaign::TrialRecord,
                            obs: &softft_telemetry::TraceObserver,
                            t: &softft_campaign::TrialTiming| {
                    writer.append(stored_trial(i, rec, obs, t, 0)).unwrap();
                };
                engine.run_range(&range, 1, &sink);
            });
        }
    });

    // Each worker died mid-append: a frame header with a partial
    // payload and no terminating newline.
    for f in &worker_files {
        let mut h = std::fs::OpenOptions::new()
            .append(true)
            .open(store.shard_path(f))
            .unwrap();
        h.write_all(b"000000ff {\"trial\"").unwrap();
    }

    // Reopen and resume as a fleet: every torn tail is truncated
    // per-file, the missing set is the sparse complement of the three
    // prefixes, and the fold is bitwise identical to buffered.
    let store = RunStore::open(&dir).unwrap();
    let report = run_fleet_campaign(&store, &p, TECH, &ccfg, fleet(2, 1)).unwrap();
    assert_eq!(report.already_done, 6 + 4 + 7, "torn tails not dropped");
    assert!(report.complete);
    assert_eq!(report.distinct_done, 30);
    assert_matches_buffered(&dir, &p, &ccfg, "concurrent writers + torn tails");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Locates the `repro` binary next to the test executable
/// (`target/<profile>/repro`); absent when only the test target was
/// built, in which case process-mode coverage is skipped.
fn repro_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let cand = profile_dir.join(format!("repro{}", std::env::consts::EXE_SUFFIX));
    cand.is_file().then_some(cand)
}

/// Process-mode fleet with a worker killed mid-campaign: worker 1
/// exits abruptly after 3 trials, the coordinator reclaims its ranges,
/// and the surviving worker finishes them — store still bitwise
/// identical to buffered.
#[test]
fn process_fleet_with_killed_worker_matches_buffered() {
    let Some(repro) = repro_bin() else {
        eprintln!("skipping: repro binary not built");
        return;
    };
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let ccfg = cfg(30, 1, 1000);
    let dir = temp_store("procfleet");
    let out = std::process::Command::new(&repro)
        .args([
            "fleet",
            "--store",
            dir.to_str().unwrap(),
            "--benchmarks",
            "tiff2bw",
            "--trials",
            "30",
            "--seed",
            "11",
            "--threads",
            "1",
            "--snapshot-interval",
            "1000",
            "--workers",
            "2",
            "--processes",
            "--fail-after",
            "1:3",
            "--heartbeat-ms",
            "300",
        ])
        .output()
        .expect("spawn repro fleet");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "repro fleet failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("reclaim(s)") && !stdout.contains(" 0 reclaim(s)"),
        "killed worker was not reclaimed\nstdout: {stdout}"
    );
    assert_matches_buffered(&dir, &p, &ccfg, "process fleet + killed worker");
    let _ = std::fs::remove_dir_all(&dir);
}
