//! The decoded flat-bytecode engine and the fused superinstruction
//! engine above it are pure perf optimizations over the tree-walking
//! reference interpreter: every observable — return values,
//! `dyn_insts`, check failures, trap kinds, injection records, output
//! bytes, campaign results — must match bitwise across all three tiers.
//! This differential suite fuzzes randomized DSL kernels (plain and
//! protected) and runs the real benchmark modules under every engine,
//! across fault kinds, snapshot intervals, and thread counts. The
//! reference path is selected with `VmConfig::reference_interp`; the
//! perf tiers with `VmConfig::engine`.

use soft_ft_tests::random_module;
use softft::{transform, Technique, TransformConfig};
use softft_campaign::campaign::{run_campaign_with_stats, CampaignConfig};
use softft_campaign::prep::prepare;
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::fault::FaultKind;
use softft_vm::interp::{Engine, NoopObserver, Snapshot, Vm, VmConfig};
use softft_vm::FaultPlan;
use softft_workloads::runner::WorkloadImage;
use softft_workloads::{workload_by_name, InputSet};

fn reference() -> VmConfig {
    VmConfig {
        reference_interp: true,
        ..VmConfig::default()
    }
}

fn with_engine(engine: Engine) -> VmConfig {
    VmConfig {
        engine,
        ..VmConfig::default()
    }
}

/// Both perf tiers, each compared against the tree-walking oracle.
const PERF_ENGINES: [Engine; 2] = [Engine::Decoded, Engine::Fused];

/// Fault-free plus register and branch-target flips at triggers spanning
/// early, mid-run, and beyond-program-end (the last must stay unarmed on
/// both engines).
fn plans() -> Vec<Option<FaultPlan>> {
    let mut plans = vec![None];
    for at in [1, 40, 700, 250_000] {
        for fseed in [0, 9] {
            plans.push(Some(FaultPlan::register(at, fseed)));
            plans.push(Some(FaultPlan::branch_target(at, fseed)));
        }
    }
    plans
}

#[test]
fn random_kernels_agree_bitwise_across_engines() {
    for seed in 0..24u64 {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        for plan in plans() {
            let tree = Vm::new(&m, reference()).run(main, &[], &mut NoopObserver, plan);
            for engine in PERF_ENGINES {
                let r = Vm::new(&m, with_engine(engine)).run(main, &[], &mut NoopObserver, plan);
                assert_eq!(r, tree, "seed {seed}, engine {engine:?}, plan {plan:?}");
            }
        }
    }
}

#[test]
fn protected_kernels_agree_bitwise_under_faults() {
    // Protected modules exercise the decoded Check/duplicate paths and
    // the detected-trap plumbing.
    for seed in [3u64, 11, 17] {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        let mut prof = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut prof, None);
        let db = ProfileDb::from_profiler(&prof, &ClassifyConfig::default());
        for t in [Technique::DupVal, Technique::FullDup] {
            let (tm, _) = transform(&m, &db, t, &TransformConfig::default());
            let main = tm.function_by_name("main").expect("main exists");
            for plan in plans() {
                let tree = Vm::new(&tm, reference()).run(main, &[], &mut NoopObserver, plan);
                for engine in PERF_ENGINES {
                    let r =
                        Vm::new(&tm, with_engine(engine)).run(main, &[], &mut NoopObserver, plan);
                    assert_eq!(
                        r, tree,
                        "seed {seed}, engine {engine:?}, technique {t}, plan {plan:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn snapshots_recorded_on_either_engine_resume_bitwise_on_either() {
    for seed in [2u64, 9, 21] {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        let golden = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
        let interval = (golden.dyn_insts / 4).max(1);

        let record = |cfg: VmConfig| {
            let mut snaps: Vec<Snapshot> = Vec::new();
            let r =
                Vm::new(&m, cfg)
                    .run_recording(main, &[], &mut NoopObserver, interval, |s, _| snaps.push(s));
            (r, snaps)
        };
        let (rd, dec_snaps) = record(with_engine(Engine::Decoded));
        let (rf, fused_snaps) = record(with_engine(Engine::Fused));
        let (rt, tree_snaps) = record(reference());
        assert_eq!(rd, rt, "seed {seed}: recording results diverged");
        assert_eq!(rf, rt, "seed {seed}: fused recording diverged");
        assert_eq!(golden, rd, "seed {seed}: recording changed the run");
        assert_eq!(
            dec_snaps.len(),
            tree_snaps.len(),
            "seed {seed}: checkpoint counts diverged"
        );
        assert_eq!(
            fused_snaps.len(),
            tree_snaps.len(),
            "seed {seed}: fused checkpoint counts diverged"
        );
        assert!(!dec_snaps.is_empty(), "seed {seed}: no checkpoint captured");

        for (i, ((ds, fs), ts)) in dec_snaps
            .iter()
            .zip(&fused_snaps)
            .zip(&tree_snaps)
            .enumerate()
        {
            assert_eq!(
                ds.dyn_count(),
                ts.dyn_count(),
                "seed {seed}, checkpoint {i}"
            );
            assert_eq!(
                fs.dyn_count(),
                ts.dyn_count(),
                "seed {seed}, checkpoint {i} (fused)"
            );
            // Resume from every checkpoint on every engine, from
            // snapshots recorded by any engine — all nine pairings must
            // agree, faulted and fault-free. In particular a snapshot
            // taken mid-pair by the fused engine must thaw cleanly on
            // the other tiers and vice versa.
            let mut resume_plans = vec![None];
            for delta in [1, 37] {
                let at = ds.dyn_count() + delta;
                resume_plans.push(Some(FaultPlan::register(at, seed ^ i as u64)));
                resume_plans.push(Some(FaultPlan::branch_target(at, i as u64)));
            }
            for plan in resume_plans {
                let base = Vm::new(&m, with_engine(Engine::Decoded)).resume_from(
                    ds,
                    &mut NoopObserver,
                    plan,
                );
                for snap in [ds, fs, ts] {
                    for cfg in [
                        with_engine(Engine::Decoded),
                        with_engine(Engine::Fused),
                        reference(),
                    ] {
                        let eng = cfg.effective_engine();
                        let r = Vm::new(&m, cfg).resume_from(snap, &mut NoopObserver, plan);
                        assert_eq!(
                            base, r,
                            "seed {seed}, checkpoint {i}, plan {plan:?}: \
                             {eng:?} engine diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn benchmark_golden_runs_agree_bitwise() {
    for name in ["tiff2bw", "kmeans", "g721enc"] {
        let w = workload_by_name(name).expect("workload exists");
        let m = w.build_module();
        let input = w.input(InputSet::Test);
        let (rt, out_t) = WorkloadImage::new(&m, &input, reference()).run(&mut NoopObserver, None);
        for engine in PERF_ENGINES {
            let (r, out) =
                WorkloadImage::new(&m, &input, with_engine(engine)).run(&mut NoopObserver, None);
            assert_eq!(r, rt, "{name}: golden results diverged on {engine:?}");
            assert_eq!(out, out_t, "{name}: output bytes diverged on {engine:?}");
        }
    }
}

fn cfg(threads: usize, kind: FaultKind, interval: u64, vm: VmConfig) -> CampaignConfig {
    CampaignConfig {
        trials: 30,
        seed: 23,
        threads,
        fault_kind: kind,
        snapshot_interval: interval,
        vm,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaigns_agree_bitwise_across_engines_threads_and_intervals() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let t = Technique::DupVal;
    for kind in [FaultKind::Register, FaultKind::BranchTarget] {
        let (golden, _) =
            run_campaign_with_stats(&*p.workload, p.module(t), &cfg(1, kind, 0, reference()));
        for engine in PERF_ENGINES {
            for threads in [1, 3] {
                for interval in [0, 1500] {
                    let (r, _) = run_campaign_with_stats(
                        &*p.workload,
                        p.module(t),
                        &cfg(threads, kind, interval, with_engine(engine)),
                    );
                    assert_eq!(
                        golden, r,
                        "{kind:?} diverged on {engine:?} at {threads} threads, \
                         interval {interval}"
                    );
                }
            }
        }
    }
}
