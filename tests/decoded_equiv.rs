//! The decoded flat-bytecode engine is a pure perf optimization over the
//! tree-walking reference interpreter: every observable — return values,
//! `dyn_insts`, check failures, trap kinds, injection records, output
//! bytes, campaign results — must match bitwise. This differential suite
//! fuzzes randomized DSL kernels (plain and protected) and runs the real
//! benchmark modules under both engines, across fault kinds, snapshot
//! intervals, and thread counts. The reference path is selected with
//! `VmConfig::reference_interp`.

use soft_ft_tests::random_module;
use softft::{transform, Technique, TransformConfig};
use softft_campaign::campaign::{run_campaign_with_stats, CampaignConfig};
use softft_campaign::prep::prepare;
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::fault::FaultKind;
use softft_vm::interp::{NoopObserver, Snapshot, Vm, VmConfig};
use softft_vm::FaultPlan;
use softft_workloads::runner::WorkloadImage;
use softft_workloads::{workload_by_name, InputSet};

fn reference() -> VmConfig {
    VmConfig {
        reference_interp: true,
        ..VmConfig::default()
    }
}

/// Fault-free plus register and branch-target flips at triggers spanning
/// early, mid-run, and beyond-program-end (the last must stay unarmed on
/// both engines).
fn plans() -> Vec<Option<FaultPlan>> {
    let mut plans = vec![None];
    for at in [1, 40, 700, 250_000] {
        for fseed in [0, 9] {
            plans.push(Some(FaultPlan::register(at, fseed)));
            plans.push(Some(FaultPlan::branch_target(at, fseed)));
        }
    }
    plans
}

#[test]
fn random_kernels_agree_bitwise_across_engines() {
    for seed in 0..24u64 {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        for plan in plans() {
            let dec = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
            let tree = Vm::new(&m, reference()).run(main, &[], &mut NoopObserver, plan);
            assert_eq!(dec, tree, "seed {seed}, plan {plan:?}");
        }
    }
}

#[test]
fn protected_kernels_agree_bitwise_under_faults() {
    // Protected modules exercise the decoded Check/duplicate paths and
    // the detected-trap plumbing.
    for seed in [3u64, 11, 17] {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        let mut prof = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut prof, None);
        let db = ProfileDb::from_profiler(&prof, &ClassifyConfig::default());
        for t in [Technique::DupVal, Technique::FullDup] {
            let (tm, _) = transform(&m, &db, t, &TransformConfig::default());
            let main = tm.function_by_name("main").expect("main exists");
            for plan in plans() {
                let dec = Vm::new(&tm, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
                let tree = Vm::new(&tm, reference()).run(main, &[], &mut NoopObserver, plan);
                assert_eq!(dec, tree, "seed {seed}, technique {t}, plan {plan:?}");
            }
        }
    }
}

#[test]
fn snapshots_recorded_on_either_engine_resume_bitwise_on_either() {
    for seed in [2u64, 9, 21] {
        let m = random_module(seed);
        let main = m.function_by_name("main").expect("main exists");
        let golden = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
        let interval = (golden.dyn_insts / 4).max(1);

        let record = |cfg: VmConfig| {
            let mut snaps: Vec<Snapshot> = Vec::new();
            let r =
                Vm::new(&m, cfg)
                    .run_recording(main, &[], &mut NoopObserver, interval, |s, _| snaps.push(s));
            (r, snaps)
        };
        let (rd, dec_snaps) = record(VmConfig::default());
        let (rt, tree_snaps) = record(reference());
        assert_eq!(rd, rt, "seed {seed}: recording results diverged");
        assert_eq!(golden, rd, "seed {seed}: recording changed the run");
        assert_eq!(
            dec_snaps.len(),
            tree_snaps.len(),
            "seed {seed}: checkpoint counts diverged"
        );
        assert!(!dec_snaps.is_empty(), "seed {seed}: no checkpoint captured");

        for (i, (ds, ts)) in dec_snaps.iter().zip(&tree_snaps).enumerate() {
            assert_eq!(
                ds.dyn_count(),
                ts.dyn_count(),
                "seed {seed}, checkpoint {i}"
            );
            // Resume from every checkpoint on both engines, from
            // snapshots recorded by either engine — all four pairings
            // must agree, faulted and fault-free.
            let mut resume_plans = vec![None];
            for delta in [1, 37] {
                let at = ds.dyn_count() + delta;
                resume_plans.push(Some(FaultPlan::register(at, seed ^ i as u64)));
                resume_plans.push(Some(FaultPlan::branch_target(at, i as u64)));
            }
            for plan in resume_plans {
                let base =
                    Vm::new(&m, VmConfig::default()).resume_from(ds, &mut NoopObserver, plan);
                for (snap, cfg, label) in [
                    (ts, VmConfig::default(), "decoded engine, tree snapshot"),
                    (ds, reference(), "tree engine, decoded snapshot"),
                    (ts, reference(), "tree engine, tree snapshot"),
                ] {
                    let r = Vm::new(&m, cfg).resume_from(snap, &mut NoopObserver, plan);
                    assert_eq!(
                        base, r,
                        "seed {seed}, checkpoint {i}, plan {plan:?}: {label} diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn benchmark_golden_runs_agree_bitwise() {
    for name in ["tiff2bw", "kmeans", "g721enc"] {
        let w = workload_by_name(name).expect("workload exists");
        let m = w.build_module();
        let input = w.input(InputSet::Test);
        let (rd, out_d) =
            WorkloadImage::new(&m, &input, VmConfig::default()).run(&mut NoopObserver, None);
        let (rt, out_t) = WorkloadImage::new(&m, &input, reference()).run(&mut NoopObserver, None);
        assert_eq!(rd, rt, "{name}: golden results diverged");
        assert_eq!(out_d, out_t, "{name}: output bytes diverged");
    }
}

fn cfg(threads: usize, kind: FaultKind, interval: u64, reference_interp: bool) -> CampaignConfig {
    CampaignConfig {
        trials: 30,
        seed: 23,
        threads,
        fault_kind: kind,
        snapshot_interval: interval,
        vm: VmConfig {
            reference_interp,
            ..VmConfig::default()
        },
        ..CampaignConfig::default()
    }
}

#[test]
fn campaigns_agree_bitwise_across_engines_threads_and_intervals() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let t = Technique::DupVal;
    for kind in [FaultKind::Register, FaultKind::BranchTarget] {
        let (golden, _) =
            run_campaign_with_stats(&*p.workload, p.module(t), &cfg(1, kind, 0, true));
        for threads in [1, 3] {
            for interval in [0, 1500] {
                let (dec, _) = run_campaign_with_stats(
                    &*p.workload,
                    p.module(t),
                    &cfg(threads, kind, interval, false),
                );
                assert_eq!(
                    golden, dec,
                    "{kind:?} diverged at {threads} threads, interval {interval}"
                );
            }
        }
    }
}
