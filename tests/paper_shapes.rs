//! Cross-benchmark assertions of the paper's headline shapes, run at
//! reduced trial counts (the `repro` binary runs the full versions):
//!
//! * USDC rate falls Original → Dup-only → Dup+val-chks (means),
//! * selective protection is much cheaper than full duplication,
//! * Fig. 10 static fractions stay in the paper's ballpark ordering,
//! * the false-positive rate is rare,
//! * cross-validation deltas are bounded.

use softft::Technique;
use softft_campaign::campaign::{run_campaign, CampaignConfig};
use softft_campaign::falsepos::measure_false_positives;
use softft_campaign::perf::all_overheads;
use softft_campaign::prep::prepare;
use softft_workloads::{all_workloads, workload_by_name, InputSet};

/// A representative, fast subset (one per category).
const SUBSET: [&str; 5] = ["tiff2bw", "g721dec", "h264dec", "segm", "kmeans"];

fn cfg(trials: u32) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 0xCAFE,
        ..CampaignConfig::default()
    }
}

#[test]
fn usdc_means_fall_with_protection() {
    let c = cfg(150);
    let (mut orig, mut dup, mut dv) = (0.0, 0.0, 0.0);
    for name in SUBSET {
        let p = prepare(workload_by_name(name).expect("known"));
        orig += run_campaign(&*p.workload, p.module(Technique::Original), &c).usdc_frac();
        dup += run_campaign(&*p.workload, p.module(Technique::DupOnly), &c).usdc_frac();
        dv += run_campaign(&*p.workload, p.module(Technique::DupVal), &c).usdc_frac();
    }
    let n = SUBSET.len() as f64;
    let (orig, dup, dv) = (orig / n, dup / n, dv / n);
    assert!(
        dup <= orig,
        "dup-only USDC mean {dup:.3} exceeds original {orig:.3}"
    );
    assert!(
        dv <= orig,
        "dup+val USDC mean {dv:.3} exceeds original {orig:.3}"
    );
    // The protected means must show a real reduction, as in the paper's
    // 3.4% → 1.8% → 1.2% trend (we allow slack for the small trial count).
    assert!(
        dv <= orig * 0.75 + 0.005,
        "dup+val USDC mean {dv:.3} not clearly below original {orig:.3}"
    );
}

#[test]
fn protection_converts_corruptions_into_detections() {
    let c = cfg(150);
    for name in ["tiff2bw", "g721dec"] {
        let p = prepare(workload_by_name(name).expect("known"));
        let orig = run_campaign(&*p.workload, p.module(Technique::Original), &c);
        let dv = run_campaign(&*p.workload, p.module(Technique::DupVal), &c);
        assert_eq!(orig.swdetect_frac(), 0.0, "{name}: original has no checks");
        assert!(dv.swdetect_frac() > 0.02, "{name}: almost no detections");
        assert!(
            dv.coverage() >= orig.coverage(),
            "{name}: protection reduced coverage ({} vs {})",
            dv.coverage(),
            orig.coverage()
        );
    }
}

#[test]
fn selective_protection_cheaper_than_full_duplication_on_average() {
    let mut sel = 0.0;
    let mut full = 0.0;
    for name in SUBSET {
        let p = prepare(workload_by_name(name).expect("known"));
        let ovs = all_overheads(&*p.workload, &p.modules, InputSet::Test);
        let get = |t: Technique| ovs.iter().find(|(x, _)| *x == t).map(|(_, v)| *v).unwrap();
        sel += get(Technique::DupOnly);
        full += get(Technique::FullDup);
    }
    assert!(
        sel < full,
        "selective duplication mean {sel:.3} not below full duplication {full:.3}"
    );
}

#[test]
fn fig10_fractions_have_paper_ordering() {
    // Duplicated fraction bounded; state variables are a small share of
    // static instructions; every kernel reports sane numbers.
    for w in all_workloads() {
        let name = w.name();
        let p = prepare(w);
        let s = p.static_stats[&Technique::DupVal];
        assert!(
            s.state_var_frac() < 0.25,
            "{name}: state vars are {:.2} of static insts",
            s.state_var_frac()
        );
        assert!(
            s.duplicated_frac() < 0.75,
            "{name}: duplicated {:.2}",
            s.duplicated_frac()
        );
        assert!(s.value_check_frac() < 0.40, "{name}");
    }
}

#[test]
fn false_positives_are_rare_across_the_suite() {
    let mut failures = 0u64;
    let mut insts = 0u64;
    for w in all_workloads() {
        let p = prepare(w);
        let fp = measure_false_positives(&*p.workload, p.module(Technique::DupVal), InputSet::Test);
        failures += fp.failures;
        insts += fp.insts;
    }
    let rate = failures as f64 / insts.max(1) as f64;
    // The paper reports ~1 per 235K instructions; require the same order.
    assert!(
        rate < 1.0 / 50_000.0,
        "false-positive rate {rate:.2e} ({failures} in {insts})"
    );
}

#[test]
fn full_duplication_leaves_residual_usdcs() {
    // The paper's point: full duplication is not strictly better — loads
    // and stores escape it, leaving residual USDCs at much higher cost.
    let c = cfg(250);
    let mut fulldup_usdc = 0.0;
    let mut dv_usdc = 0.0;
    for name in SUBSET {
        let p = prepare(workload_by_name(name).expect("known"));
        fulldup_usdc += run_campaign(&*p.workload, p.module(Technique::FullDup), &c).usdc_frac();
        dv_usdc += run_campaign(&*p.workload, p.module(Technique::DupVal), &c).usdc_frac();
    }
    // Both should be small; dup+val must at least match full duplication
    // within noise (the paper measures 1.2% vs 1.4%).
    assert!(
        dv_usdc <= fulldup_usdc + 0.05 * SUBSET.len() as f64,
        "dup+val {dv_usdc:.3} far above full dup {fulldup_usdc:.3}"
    );
}
