//! Smoke tests for the `repro` orchestration: every exhibit renders on a
//! small configuration without panicking and contains its key rows.

use softft_bench::orchestrate::run_exhibit;
use softft_bench::{Exhibit, ReproConfig};

fn small() -> ReproConfig {
    ReproConfig {
        trials: 12,
        seed: 3,
        benchmarks: vec!["tiff2bw".into(), "kmeans".into()],
        threads: 2,
        ..ReproConfig::default()
    }
}

#[test]
fn tables_render() {
    let cfg = small();
    let t1 = run_exhibit(Exhibit::Table1, &cfg);
    for name in [
        "jpegenc",
        "jpegdec",
        "tiff2bw",
        "segm",
        "tex_synth",
        "g721enc",
        "g721dec",
        "mp3enc",
        "mp3dec",
        "h264enc",
        "h264dec",
        "kmeans",
        "svm",
    ] {
        assert!(t1.contains(name), "table1 missing {name}:\n{t1}");
    }
    let t2 = run_exhibit(Exhibit::Table2, &cfg);
    assert!(t2.contains("issue width"));
    assert!(t2.contains("reorder buffer"));
}

#[test]
fn static_figures_render() {
    let cfg = small();
    let f6 = run_exhibit(Exhibit::Fig6, &cfg);
    assert!(f6.contains("single") && f6.contains("range"), "{f6}");
    let f10 = run_exhibit(Exhibit::Fig10, &cfg);
    assert!(f10.contains("state vars") && f10.contains("mean"), "{f10}");
}

#[test]
fn campaign_figures_render() {
    let cfg = small();
    let f2 = run_exhibit(Exhibit::Fig2, &cfg);
    assert!(f2.contains("USDC-large"), "{f2}");
    let f11 = run_exhibit(Exhibit::Fig11, &cfg);
    assert!(f11.contains("Dup + val chks"), "{f11}");
    assert!(f11.contains("full duplication mean USDC"), "{f11}");
    let f13 = run_exhibit(Exhibit::Fig13, &cfg);
    assert!(f13.contains("ASDC"), "{f13}");
}

#[test]
fn perf_and_analysis_figures_render() {
    let cfg = small();
    let f12 = run_exhibit(Exhibit::Fig12, &cfg);
    assert!(f12.contains("tiff2bw") && f12.contains("mean"), "{f12}");
    let fp = run_exhibit(Exhibit::FalsePos, &cfg);
    assert!(fp.contains("insts/failure"), "{fp}");
    let det = run_exhibit(Exhibit::Detect, &cfg);
    assert!(det.contains("dup-chk"), "{det}");
}

#[test]
fn extension_exhibits_render() {
    let cfg = ReproConfig {
        trials: 10,
        seed: 3,
        benchmarks: vec!["tiff2bw".into()],
        threads: 1,
        ..ReproConfig::default()
    };
    let cfc = run_exhibit(Exhibit::Cfc, &cfg);
    assert!(cfc.contains("cfcss"), "{cfc}");
    assert!(cfc.contains("SWDetect"), "{cfc}");
    let rec = run_exhibit(Exhibit::Recovery, &cfg);
    assert!(rec.contains("rollback insts"), "{rec}");
    let abl = run_exhibit(Exhibit::Ablate, &cfg);
    assert!(
        abl.contains("opt1+opt2") && abl.contains("neither"),
        "{abl}"
    );
}

#[test]
fn fig1_finds_representative_injections() {
    let cfg = ReproConfig {
        trials: 5,
        ..small()
    };
    let f1 = run_exhibit(Exhibit::Fig1, &cfg);
    assert!(f1.contains("no fault"), "{f1}");
    // At least one of the fault cases should be found within the scanned
    // seed budget.
    assert!(
        f1.contains("acceptable fault") || f1.contains("unacceptable fault"),
        "{f1}"
    );
}
