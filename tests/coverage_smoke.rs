//! Cross-crate coverage integration: the `repro coverage` exhibit is
//! byte-stable, `--telemetry` adds a parseable per-technique
//! `coverage.json`, and `--html` writes a single self-contained heatmap
//! without perturbing the rendered report.

use softft_bench::orchestrate::run_exhibit;
use softft_bench::{Exhibit, ReproConfig};
use softft_campaign::CoverageMap;
use std::path::PathBuf;

fn small() -> ReproConfig {
    ReproConfig {
        trials: 12,
        seed: 3,
        benchmarks: vec!["tiff2bw".into()],
        threads: 2,
        ..ReproConfig::default()
    }
}

/// A scratch directory under the temp area, removed on drop so repeated
/// test runs start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("softft-coverage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn coverage_exhibit_renders_and_is_byte_stable() {
    let cfg = small();
    let a = run_exhibit(Exhibit::Coverage, &cfg);
    assert!(a.contains("Protection-gap report"), "{a}");
    assert!(a.contains("tiff2bw"), "{a}");
    assert!(a.contains("gap-site ladder"), "{a}");
    // Both protected techniques appear in the ladder.
    assert!(a.contains("Dup only"), "{a}");
    assert!(a.contains("Dup + val chks"), "{a}");
    let b = run_exhibit(Exhibit::Coverage, &cfg);
    assert_eq!(a, b, "coverage output must be byte-stable");

    // Thread count must not leak into the report.
    let c = run_exhibit(
        Exhibit::Coverage,
        &ReproConfig {
            threads: 4,
            ..small()
        },
    );
    assert_eq!(a, c, "coverage output must be thread-count agnostic");
}

#[test]
fn telemetry_dir_gets_coverage_json_that_round_trips() {
    let scratch = ScratchDir::new("json");
    let cfg = ReproConfig {
        telemetry: Some(scratch.0.clone()),
        ..small()
    };
    let plain = run_exhibit(Exhibit::Coverage, &small());
    let traced = run_exhibit(Exhibit::Coverage, &cfg);
    assert_eq!(plain, traced, "--telemetry must not change the report");

    for tech in ["dup-only", "dup-val"] {
        let path = scratch.0.join(format!("tiff2bw.{tech}.coverage.json"));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let cov = CoverageMap::from_json(&json).expect("coverage.json parses");
        assert_eq!(cov.benchmark, "tiff2bw");
        assert_eq!(cov.trials, 12);
        assert_eq!(cov.injected + cov.trigger_unreached, cov.trials);
        let site_trials: u64 = cov.sites.iter().map(|s| s.trials).sum();
        assert_eq!(site_trials, cov.injected, "{tech}: sites cover injections");

        // Serde round trip is lossless.
        let again = CoverageMap::from_json(&cov.to_json().expect("re-serializes"))
            .expect("round-trip parses");
        assert_eq!(again, cov);
    }
}

#[test]
fn html_heatmap_is_single_self_contained_file() {
    let scratch = ScratchDir::new("html");
    std::fs::create_dir_all(&scratch.0).unwrap();
    let html_path = scratch.0.join("heatmap.html");
    let cfg = ReproConfig {
        html: Some(html_path.clone()),
        ..small()
    };
    let with_html = run_exhibit(Exhibit::Coverage, &cfg);
    assert_eq!(
        with_html,
        run_exhibit(Exhibit::Coverage, &small()),
        "--html must not change the report"
    );

    let html = std::fs::read_to_string(&html_path).expect("heatmap written");
    assert!(
        html.starts_with("<!DOCTYPE html>"),
        "{}",
        &html[..60.min(html.len())]
    );
    assert!(html.contains("tiff2bw"));
    // Self-contained: no external fetches, scripts, or stylesheets.
    for banned in ["http://", "https://", "<script", "<link", "src="] {
        assert!(!html.contains(banned), "heatmap must not contain {banned}");
    }
}
