//! End-to-end pipeline tests: every benchmark survives the full
//! profile → transform → verify → run → score path, and the protection
//! mechanisms behave as the paper describes.

use softft::Technique;
use softft_campaign::prep::{neutralize_false_positives, prepare};
use softft_vm::interp::{NoopObserver, VmConfig};
use softft_workloads::runner::run_workload;
use softft_workloads::{all_workloads, InputSet};

#[test]
fn every_benchmark_pipelines_cleanly() {
    for w in all_workloads() {
        let name = w.name();
        let p = prepare(w);
        for t in Technique::ALL {
            softft_ir::verify::verify_module(p.module(t))
                .unwrap_or_else(|e| panic!("{name}/{t}: {e}"));
        }
        // Static stats are self-consistent.
        let s = p.static_stats[&Technique::DupVal];
        assert!(s.insts_before > 0, "{name}");
        assert!(s.insts_after >= s.insts_before, "{name}");
        assert!(s.state_vars > 0, "{name}: every kernel has loops");
        let d = p.static_stats[&Technique::DupOnly];
        assert!(d.duplicated > 0, "{name}: nothing was duplicated");
        assert!(d.dup_checks > 0, "{name}: no duplication checks");
        let f = p.static_stats[&Technique::FullDup];
        assert!(
            f.duplicated > d.duplicated,
            "{name}: full duplication must clone more than selective"
        );
    }
}

#[test]
fn transformations_preserve_fault_free_outputs_on_both_inputs() {
    for w in all_workloads() {
        let name = w.name();
        let p = prepare(w);
        for set in [InputSet::Train, InputSet::Test] {
            let input = p.workload.input(set);
            let mut reference: Option<Vec<u8>> = None;
            for t in Technique::ALL {
                let mut m = p.module(t).clone();
                neutralize_false_positives(&mut m, &*p.workload, set);
                let (r, out) =
                    run_workload(&m, &input, VmConfig::default(), &mut NoopObserver, None);
                assert!(r.completed(), "{name}/{t}/{set:?}: {:?}", r.end);
                match &reference {
                    None => reference = Some(out),
                    Some(golden) => assert_eq!(
                        &out, golden,
                        "{name}/{t}/{set:?}: fault-free output changed"
                    ),
                }
            }
        }
    }
}

#[test]
fn profiles_find_amenable_instructions_everywhere() {
    for w in all_workloads() {
        let name = w.name();
        let p = prepare(w);
        assert!(
            p.profile.num_amenable() > 0,
            "{name}: no check-amenable instructions at all"
        );
    }
}

#[test]
fn fidelity_metrics_score_own_golden_as_acceptable() {
    for w in all_workloads() {
        let name = w.name();
        let module = w.build_module();
        let input = w.input(InputSet::Test);
        let (r, out) = run_workload(
            &module,
            &input,
            VmConfig::default(),
            &mut NoopObserver,
            None,
        );
        assert!(r.completed(), "{name}");
        assert!(
            w.acceptable(&out, &out),
            "{name}: golden output not acceptable against itself"
        );
    }
}
