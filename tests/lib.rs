//! Shared helpers for the cross-crate integration tests: a seeded
//! random-kernel generator used by the semantic-preservation property
//! tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softft_ir::dsl::{FunctionDsl, Var};
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type, ValueId};

/// Builds a random but well-formed kernel module: nested counted loops
/// over a global array with accumulator state, random (trap-free)
/// arithmetic, and in-bounds memory traffic. The generated programs are
/// deterministic per `seed`, always terminate, and always verify.
pub fn random_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let elems: i64 = rng.gen_range(16..64);
    let mut m = Module::new(format!("random_{seed}"));
    let g = m.add_global("data", (elems as u64) * 8);
    let base = m.global(g).addr as i64;
    let outer: i64 = rng.gen_range(2..8);
    let inner: i64 = rng.gen_range(2..10);
    // Pre-draw the random structure so the closure is deterministic.
    let body_ops: Vec<u8> = (0..rng.gen_range(2..7))
        .map(|_| rng.gen_range(0u8..8))
        .collect();
    let with_branch = rng.gen_bool(0.6);
    let init_vals: Vec<i64> = (0..elems).map(|_| rng.gen_range(-100..100)).collect();

    let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
        let b = d.i64c(base);
        // Initialize the array from baked constants.
        for (i, &v) in init_vals.iter().enumerate() {
            let idx = d.i64c(i as i64);
            let val = d.i64c(v);
            d.store_elem(b, idx, val);
        }
        let acc: Var = d.declare_var(Type::I64);
        let z = d.i64c(0);
        d.set(acc, z);
        let (s, e) = (d.i64c(0), d.i64c(outer));
        d.for_range(s, e, |d, i| {
            let (s2, e2) = (d.i64c(0), d.i64c(inner));
            d.for_range(s2, e2, |d, j| {
                let n = d.i64c(elems);
                let prod = d.mul(i, j);
                let sum = d.add(prod, j);
                let idx = d.srem(sum, n);
                let idx = {
                    // srem can be negative only if sum is; it is not here,
                    // but stay defensive for future edits.
                    let zero = d.i64c(0);
                    let neg = d.icmp(IntCC::Slt, idx, zero);
                    let fixed = d.add(idx, n);
                    d.select(neg, fixed, idx)
                };
                let x = d.load_elem(Type::I64, b, idx);
                let mut v: ValueId = x;
                for &op in &body_ops {
                    let c = d.i64c(3 + op as i64);
                    v = match op % 8 {
                        0 => d.add(v, c),
                        1 => d.sub(v, c),
                        2 => d.mul(v, c),
                        3 => d.xor(v, c),
                        4 => d.and_(v, c),
                        5 => d.or_(v, c),
                        6 => {
                            let amt = d.i64c((op % 5) as i64);
                            d.shl(v, amt)
                        }
                        _ => {
                            let amt = d.i64c((op % 3) as i64 + 1);
                            d.ashr(v, amt)
                        }
                    };
                }
                if with_branch {
                    let zero = d.i64c(0);
                    let cnd = d.icmp(IntCC::Sgt, v, zero);
                    let one = d.i64c(1);
                    let a1 = d.add(v, one);
                    let a2 = d.sub(v, one);
                    v = d.select(cnd, a1, a2);
                }
                // Fold into the accumulator (a state variable) and write
                // back (memory traffic to stop duplication chains).
                let mask = d.i64c(0xFFFF_FFFF);
                let folded = d.and_(v, mask);
                let a = d.get(acc);
                let a2 = d.add(a, folded);
                d.set(acc, a2);
                d.store_elem(b, idx, folded);
            });
        });
        let a = d.get(acc);
        d.ret(Some(a));
    });
    m.add_function(f);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_modules_verify_and_run() {
        for seed in 0..20 {
            let m = random_module(seed);
            softft_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let main = m.function_by_name("main").unwrap();
            let r = softft_vm::interp::Vm::new(&m, softft_vm::VmConfig::default()).run(
                main,
                &[],
                &mut softft_vm::interp::NoopObserver,
                None,
            );
            assert!(r.completed(), "seed {seed}: {:?}", r.end);
        }
    }
}
