//! The two outcome-aware trial schedulers — divergence-bounded spin
//! proofs and static fault-space pruning — must be *bitwise* invisible:
//! a campaign run with them on produces the same `CampaignResult`,
//! per-trial records, events, metrics JSON, and coverage JSON as one
//! run with them off, across all three execution tiers and all four
//! protection techniques. They are pure scheduling optimizations; any
//! observable divergence is a bug.
//!
//! The workloads here are crafted so the interesting paths actually
//! fire: a period-1 spin latch, a period-8 latch whose cycle straddles
//! checkpoint boundaries (coprime intervals), a sweep loop whose
//! corrupted trip count spins with linearly drifting counters (the
//! affine proof shape — exact recurrence never fires), a countdown loop
//! that always terminates (must never be spin-proved), and a kernel
//! stuffed with dead and truncation-masked victims (must be pruned).

use softft::Technique;
use softft_campaign::campaign::{
    run_campaign_attributed, run_campaign_with_stats, CampaignConfig, CampaignTelemetry,
};
use softft_campaign::coverage::build_coverage;
use softft_campaign::prep::prepare;
use softft_ir::{IntCC, Module, Type};
use softft_vm::fault::FaultKind;
use softft_vm::interp::{Engine, VmConfig};
use softft_workloads::common::{
    build_kernel, input_base, load_u8, output_data_base, param, set_output_len, store_u8,
};
use softft_workloads::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};

const LEN: u64 = 64;

/// Which loop the crafted kernel ends with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// `while (latch != 0) {}` — any flip of the latch spins with a
    /// constant (period-1) boundary state.
    Period1,
    /// Same latch, but the body advances `t = (t + 1) & 7`, so the
    /// spinning state recurs with period 8 — with a checkpoint grid
    /// coprime to 8 the cycle straddles boundaries.
    Period8,
    /// Trailing sweep loop `for (i = 0; i < sweeps; i++) {}` with the
    /// trip count in a dedicated param. A high-bit flip on the loaded
    /// bound leaves the empty body re-executing on a fixed point while
    /// the induction counters drift linearly — the exact-recurrence
    /// proof can never fire (the state never repeats), only the affine
    /// drift proof can.
    Affine,
    /// `while (x != 0) { x = x - 1 }` with `x` loaded as 0 — a flipped
    /// `x` counts down monotonically, so the state never recurs: small
    /// flips exit the loop, large ones hit the watchdog by actually
    /// running to the bound. Neither may be spin-proved.
    Countdown,
    /// No trailing loop; instead every iteration computes a value that
    /// is never used (dead victim) and one whose high bits are shifted
    /// out before the store (masked victim) — prime pruning targets.
    DeadMask,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Period1 => "spin_p1",
            Shape::Period8 => "spin_p8",
            Shape::Affine => "spin_affine",
            Shape::Countdown => "countdown",
            Shape::DeadMask => "deadmask",
        }
    }
}

/// Crafted test workload; see [`Shape`].
#[derive(Clone, Copy, Debug)]
struct Crafted(Shape);

impl Workload for Crafted {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Mismatch {
            threshold_frac: 0.1,
        }
    }

    fn build_module(&self) -> Module {
        let shape = self.0;
        build_kernel(self.name(), LEN, LEN, &[], move |d, io, _| {
            let n = param(d, io, 0);
            // The sweep bound must be loaded in the entry block: the
            // affine validator only accepts comparison bounds whose slot
            // is provably loop-invariant (entry-block definitions).
            let sweeps = (shape == Shape::Affine).then(|| param(d, io, 1));
            let inp = input_base(d, io);
            let out = output_data_base(d, io);

            // The latch: input byte 0 is always 0 on the golden run, so
            // the trailing loops below never iterate unless a fault
            // makes the latch (or a value feeding it) nonzero. Loaded
            // *before* the busy loop so its slot stays live across it,
            // giving the injection sampler a long window to hit.
            let zero = d.i64c(0);
            let latch = d.declare_var(Type::I64);
            let l0 = load_u8(d, inp, zero);
            d.set(latch, l0);

            // Busy loop: spreads the campaign's trigger points and
            // carries enough live state to make trials interesting.
            let acc = d.declare_var(Type::I64);
            d.set(acc, zero);
            d.for_range(zero, n, |d, i| {
                let v = load_u8(d, inp, i);
                if shape == Shape::DeadMask {
                    // Dead victim: a wide product no later instruction
                    // reads. Flips to it cannot reach the output.
                    let k = d.i64c(0x9e37_79b9);
                    let _dead = d.mul(v, k);
                    // Masked victim: only bits 0..8 of `wide` survive
                    // the shift-out below, so flips to bits 8.. are
                    // architecturally masked.
                    let c3 = d.i64c(3);
                    let wide = d.mul(v, c3);
                    let c56 = d.i64c(56);
                    let hi = d.shl(wide, c56);
                    let lo = d.ashr(hi, c56);
                    let c7 = d.i64c(7);
                    let g = d.and_(lo, c7);
                    store_u8(d, out, i, g);
                } else {
                    let c3 = d.i64c(3);
                    let t = d.mul(v, c3);
                    let a = d.get(acc);
                    let s = d.add(a, t);
                    d.set(acc, s);
                    let c255 = d.i64c(255);
                    let g = d.and_(t, c255);
                    store_u8(d, out, i, g);
                }
            });

            match shape {
                Shape::Period1 => {
                    d.while_(
                        |d| {
                            let x = d.get(latch);
                            let z = d.i64c(0);
                            d.icmp(IntCC::Ne, x, z)
                        },
                        |_d| {},
                    );
                }
                Shape::Period8 => {
                    let t = d.declare_var(Type::I64);
                    d.set(t, zero);
                    d.while_(
                        |d| {
                            let x = d.get(latch);
                            let z = d.i64c(0);
                            d.icmp(IntCC::Ne, x, z)
                        },
                        |d| {
                            let cur = d.get(t);
                            let one = d.i64c(1);
                            let inc = d.add(cur, one);
                            let seven = d.i64c(7);
                            let wrapped = d.and_(inc, seven);
                            d.set(t, wrapped);
                        },
                    );
                }
                Shape::Affine => {
                    let sw = sweeps.expect("loaded for Affine");
                    d.for_range(zero, sw, |_d, _i| {});
                }
                Shape::Countdown => {
                    d.while_(
                        |d| {
                            let x = d.get(latch);
                            let z = d.i64c(0);
                            d.icmp(IntCC::Ne, x, z)
                        },
                        |d| {
                            let x = d.get(latch);
                            let one = d.i64c(1);
                            let dec = d.sub(x, one);
                            d.set(latch, dec);
                        },
                    );
                }
                Shape::DeadMask => {}
            }

            set_output_len(d, io, n);
            let r = d.i64c(0);
            d.ret(Some(r));
        })
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let salt = match set {
            InputSet::Train => 5u8,
            InputSet::Test => 11u8,
        };
        let mut data: Vec<u8> = (0..LEN as usize)
            .map(|i| (i as u8).wrapping_mul(salt).wrapping_add(1))
            .collect();
        data[0] = 0; // the latch byte — must be zero fault-free
        WorkloadInput {
            // Param 1 is the sweep-loop trip count (Affine shape only;
            // the other shapes never read it).
            params: vec![LEN as i64, 8],
            data,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        if golden.len() != candidate.len() {
            return 1.0;
        }
        if golden.is_empty() {
            return 0.0;
        }
        let diff = golden.iter().zip(candidate).filter(|(a, b)| a != b).count();
        diff as f64 / golden.len() as f64
    }
}

fn cfg(
    trials: u32,
    interval: u64,
    engine: Engine,
    spin_proof: bool,
    prune: bool,
) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 23,
        threads: 2,
        fault_kind: FaultKind::Register,
        snapshot_interval: interval,
        spin_proof,
        prune,
        vm: VmConfig {
            engine,
            // Small watchdog so un-proved spins stay cheap; comfortably
            // above every golden run (~2k dynamic insts, ~6k FullDup).
            max_dyn_insts: 40_000,
            ..VmConfig::default()
        },
        ..CampaignConfig::default()
    }
}

/// Serializes telemetry exactly as `repro --telemetry` writes it. A
/// serialization error is folded into the comparison text instead of
/// panicking so the structural assertions still run on builds whose
/// serde stubs cannot serialize (the bytes then compare error-to-error).
fn artifact_bytes(tel: &CampaignTelemetry) -> (String, String) {
    let mut jsonl = String::new();
    for e in &tel.events {
        match e.to_jsonl() {
            Ok(s) => jsonl.push_str(&s),
            Err(err) => jsonl.push_str(&format!("<unserializable: {err:?}>")),
        }
        jsonl.push('\n');
    }
    (jsonl, tel.metrics.to_json())
}

/// Runs one campaign with the scheduling optimizations off and one with
/// them on, asserting byte-identical artifacts; returns the optimized
/// leg's stats for path assertions.
fn assert_invisible(
    shape: Shape,
    t: Technique,
    trials: u32,
    interval: u64,
    engine: Engine,
) -> softft_campaign::snapshot::SnapshotStats {
    let p = prepare(Box::new(Crafted(shape)));
    let (base, btel) = run_campaign_attributed(
        &*p.workload,
        p.module(t),
        &cfg(trials, interval, engine, false, false),
        Some(p.protection(t)),
    );
    let opt_cfg = cfg(trials, interval, engine, true, true);
    let (opt, otel) =
        run_campaign_attributed(&*p.workload, p.module(t), &opt_cfg, Some(p.protection(t)));
    let ctx = format!("{shape:?} {t:?} interval {interval} {engine:?}");
    assert_eq!(base, opt, "{ctx}: CampaignResult diverged");
    assert_eq!(btel.records, otel.records, "{ctx}: records diverged");
    assert_eq!(btel.events, otel.events, "{ctx}: events diverged");
    assert_eq!(btel.checks, otel.checks, "{ctx}: check counts diverged");
    let (bl, bm) = artifact_bytes(&btel);
    let (ol, om) = artifact_bytes(&otel);
    assert_eq!(bl, ol, "{ctx}: trial JSONL diverged");
    assert_eq!(bm, om, "{ctx}: metrics JSON diverged");
    let cov = |res, records| match build_coverage(
        shape.name(),
        t,
        p.module(t),
        p.protection(t),
        res,
        records,
    )
    .to_json()
    {
        Ok(s) => s,
        Err(err) => format!("<unserializable: {err:?}>"),
    };
    assert_eq!(
        cov(&base, &btel.records),
        cov(&opt, &otel.records),
        "{ctx}: coverage JSON diverged"
    );

    let (_, stats) = run_campaign_with_stats(&*p.workload, p.module(t), &opt_cfg);
    stats
}

#[test]
fn period1_spin_is_proved_and_invisible_across_tiers() {
    for engine in [Engine::Tree, Engine::Decoded, Engine::Fused] {
        let stats = assert_invisible(Shape::Period1, Technique::DupVal, 60, 7, engine);
        assert!(
            stats.spin_proved_trials > 0,
            "{engine:?}: no period-1 spin proved"
        );
        assert!(stats.spin_insts_skipped > 0);
    }
}

#[test]
fn period8_spin_straddling_checkpoint_boundaries_is_proved() {
    // 7 and 13 are both coprime to the loop's period-8 state cycle, so
    // every checkpoint boundary lands at a different phase of the loop
    // and the recurrence is only visible across multiple grid crossings.
    for interval in [7, 13] {
        let stats = assert_invisible(
            Shape::Period8,
            Technique::DupVal,
            60,
            interval,
            Engine::Fused,
        );
        assert!(
            stats.spin_proved_trials > 0,
            "interval {interval}: no period-8 spin proved"
        );
    }
}

#[test]
fn corrupted_trip_count_spin_is_affine_proved_across_tiers() {
    // High-bit flips on the sweep bound make the empty loop outlast the
    // watchdog with its counters drifting linearly — the state never
    // exactly recurs, so only the affine drift proof can classify these
    // trials early. It must do so bitwise-invisibly in every tier.
    for engine in [Engine::Tree, Engine::Decoded, Engine::Fused] {
        let stats = assert_invisible(Shape::Affine, Technique::DupVal, 60, 7, engine);
        assert!(
            stats.spin_proved_trials > 0,
            "{engine:?}: no affine trip-count spin proved"
        );
        assert!(stats.spin_insts_skipped > 0);
    }
}

#[test]
fn terminating_countdown_is_never_spin_proved() {
    for engine in [Engine::Tree, Engine::Decoded, Engine::Fused] {
        let stats = assert_invisible(Shape::Countdown, Technique::DupVal, 60, 7, engine);
        assert_eq!(
            stats.spin_proved_trials, 0,
            "{engine:?}: monotonic countdown misclassified as a spin"
        );
        assert_eq!(stats.spin_insts_skipped, 0);
    }
}

#[test]
fn dead_and_masked_victims_prune_across_techniques() {
    for t in [Technique::DupOnly, Technique::DupVal, Technique::FullDup] {
        let stats = assert_invisible(Shape::DeadMask, t, 60, 13, Engine::Fused);
        assert!(stats.pruned_trials > 0, "{t:?}: nothing pruned");
        assert!(stats.pruned_insts_skipped > 0);
    }
}

#[test]
fn spin_kernels_equivalent_under_every_technique() {
    for t in Technique::ALL {
        let stats = assert_invisible(Shape::Period1, t, 150, 13, Engine::Decoded);
        // Under full duplication every latch flip is detected and
        // repaired before the loop can spin, so only the partial
        // protections are expected to still produce provable spins —
        // but the bitwise-equivalence assertions above hold regardless.
        if t != Technique::FullDup {
            assert!(stats.spin_proved_trials > 0, "{t:?}: no spin proved");
        }
    }
}
