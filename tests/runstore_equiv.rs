//! Streamed run-store campaigns must be *bitwise* equivalent to buffered
//! ones: replaying a store — whether written in one pass or interrupted
//! and resumed — produces the same `CampaignResult`, per-trial records,
//! attributed events, metrics JSON, and coverage map as
//! `run_campaign_attributed` over the same config. Persistence is pure
//! plumbing; any observable divergence is a bug.

use softft::Technique;
use softft_campaign::campaign::{run_campaign_attributed, CampaignConfig};
use softft_campaign::coverage::build_coverage;
use softft_campaign::live::{replay, run_campaign_to_store, store_manifest};
use softft_campaign::prep::{prepare, PreparedBenchmark};
use softft_telemetry::{RunStore, TrialEvent};
use softft_workloads::workload_by_name;
use std::io::Write;
use std::path::{Path, PathBuf};

const TECH: Technique = Technique::DupVal;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softft_rs_equiv_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(trials: u32, threads: usize, interval: u64) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 11,
        threads,
        snapshot_interval: interval,
        ..CampaignConfig::default()
    }
}

fn jsonl(events: &[TrialEvent]) -> Option<String> {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_jsonl().ok()?);
        s.push('\n');
    }
    Some(s)
}

/// Replays `dir`'s single shard and asserts every aggregate matches a
/// fresh buffered campaign under the same config — structurally always,
/// and byte-for-byte where the serializer is available.
fn assert_matches_buffered(dir: &Path, p: &PreparedBenchmark, ccfg: &CampaignConfig, ctx: &str) {
    let shards = replay(dir).expect("replay");
    assert_eq!(shards.len(), 1, "{ctx}: shard count");
    let shard = &shards[0];
    assert!(shard.complete, "{ctx}: shard incomplete");
    let t = shard.technique;
    let (res, tel) =
        run_campaign_attributed(&*p.workload, p.module(t), ccfg, Some(p.protection(t)));
    assert_eq!(shard.result, res, "{ctx}: result diverged");
    assert_eq!(shard.telemetry.events, tel.events, "{ctx}: events diverged");
    assert_eq!(
        shard.telemetry.records, tel.records,
        "{ctx}: records diverged"
    );
    assert_eq!(shard.telemetry.checks, tel.checks, "{ctx}: checks diverged");
    assert_eq!(
        shard.telemetry.metrics.to_json(),
        tel.metrics.to_json(),
        "{ctx}: metrics diverged"
    );
    let cov = build_coverage(
        &shard.benchmark,
        t,
        p.module(t),
        p.protection(t),
        &res,
        &tel.records,
    );
    assert_eq!(shard.coverage, cov, "{ctx}: coverage diverged");
    if let (Some(a), Some(b)) = (jsonl(&shard.telemetry.events), jsonl(&tel.events)) {
        assert_eq!(a, b, "{ctx}: event JSONL bytes diverged");
    }
    if let (Ok(a), Ok(b)) = (shard.coverage.to_json(), cov.to_json()) {
        assert_eq!(a, b, "{ctx}: coverage JSON bytes diverged");
    }
}

#[test]
fn streamed_store_matches_buffered_across_threads_and_intervals() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    for threads in [1, 3] {
        for interval in [0, 1500] {
            let ccfg = cfg(25, threads, interval);
            let dir = temp_store(&format!("one_pass_{threads}_{interval}"));
            let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();
            let stats = run_campaign_to_store(&store, &p, TECH, &ccfg, None).unwrap();
            assert_eq!(stats.executed, 25);
            assert!(stats.complete);
            assert_matches_buffered(&dir, &p, &ccfg, &format!("t{threads} i{interval}"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn interrupted_then_resumed_store_is_bitwise_identical() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let ccfg = cfg(30, 2, 1000);
    let dir = temp_store("resume");
    let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();

    // "Crash" after 11 trials: the cap stands in for a kill signal —
    // every persisted frame is one the real writer had flushed.
    let first = run_campaign_to_store(&store, &p, TECH, &ccfg, Some(11)).unwrap();
    assert_eq!(first.executed, 11);
    assert!(!first.complete);

    // Resume from a freshly opened store: finishes exactly the rest.
    let store = RunStore::open(&dir).unwrap();
    let second = run_campaign_to_store(&store, &p, TECH, &ccfg, None).unwrap();
    assert_eq!(second.already_done, 11);
    assert_eq!(second.executed, 19);
    assert!(second.complete);

    // A third invocation finds nothing left to do.
    let third = run_campaign_to_store(&store, &p, TECH, &ccfg, None).unwrap();
    assert_eq!(third.executed, 0);
    assert!(third.complete);

    assert_matches_buffered(&dir, &p, &ccfg, "interrupt+resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pruned_store_replays_identical_to_unpruned_buffered_campaign() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());

    // Written with both outcome-aware schedulers on (most register-fault
    // trials are then pruned or spin-proved, never executed)…
    let mut write_cfg = cfg(30, 2, 1000);
    write_cfg.spin_proof = true;
    write_cfg.prune = true;
    let dir = temp_store("pruned");
    let store = RunStore::create(&dir, store_manifest(&write_cfg)).unwrap();

    // …interrupted mid-stream so the resume boundary lands among
    // synthesized (pruned) trial frames…
    let first = run_campaign_to_store(&store, &p, TECH, &write_cfg, Some(9)).unwrap();
    assert_eq!(first.executed, 9);
    assert!(!first.complete);
    let store = RunStore::open(&dir).unwrap();
    let second = run_campaign_to_store(&store, &p, TECH, &write_cfg, None).unwrap();
    assert_eq!(second.already_done, 9);
    assert_eq!(second.executed, 21);
    assert!(second.complete);

    // …must replay byte-identical to a buffered campaign with both
    // optimizations off: persistence and scheduling are each invisible,
    // so their composition must be too.
    let mut read_cfg = write_cfg.clone();
    read_cfg.spin_proof = false;
    read_cfg.prune = false;
    assert_matches_buffered(&dir, &p, &read_cfg, "pruned store vs unpruned buffered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_rewritten_on_resume() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let ccfg = cfg(20, 2, 0);
    let dir = temp_store("torn");
    let store = RunStore::create(&dir, store_manifest(&ccfg)).unwrap();
    run_campaign_to_store(&store, &p, TECH, &ccfg, Some(8)).unwrap();

    // Simulate a crash mid-append: a frame header with no payload or
    // newline. The next writer must truncate it before appending.
    let shard = dir.join(format!("tiff2bw.{}.shard.jsonl", TECH.slug()));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&shard)
        .unwrap();
    f.write_all(b"000000ff {\"seq\"").unwrap();
    drop(f);

    let store = RunStore::open(&dir).unwrap();
    let resumed = run_campaign_to_store(&store, &p, TECH, &ccfg, None).unwrap();
    assert_eq!(resumed.already_done, 8);
    assert_eq!(resumed.executed, 12);
    assert_matches_buffered(&dir, &p, &ccfg, "torn tail");
    let _ = std::fs::remove_dir_all(&dir);
}
