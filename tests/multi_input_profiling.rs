//! Extension from the paper's Section V: "the false positive rate can be
//! further reduced by combining profiling from multiple inputs and thus
//! inserting checks only on more stable invariant values." We implement
//! profile merging and verify it behaves as predicted.

use softft::{transform, Technique, TransformConfig};
use softft_campaign::falsepos::measure_false_positives;
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::interp::VmConfig;
use softft_workloads::runner::run_workload;
use softft_workloads::{workload_by_name, InputSet, Workload};

fn profile_on(w: &dyn Workload, module: &softft_ir::Module, set: InputSet) -> Profiler {
    let mut prof = Profiler::default();
    let (r, _) = run_workload(module, &w.input(set), VmConfig::default(), &mut prof, None);
    assert!(r.completed());
    prof
}

#[test]
fn merged_profiles_reduce_false_positives_in_aggregate() {
    // The paper's prediction is statistical: merging inputs stabilizes
    // the invariants overall, though an individual instruction's check
    // can shift (different Algorithm-2 trimming, newly amenable sites),
    // so we assert on the aggregate plus a small per-benchmark slack.
    let mut total_single = 0u64;
    let mut total_merged = 0u64;
    for name in ["kmeans", "segm", "g721dec", "svm"] {
        let w = workload_by_name(name).expect("known workload");
        let module = w.build_module();

        // Single-input profile (the paper's default setup).
        let single = ProfileDb::from_profiler(
            &profile_on(&*w, &module, InputSet::Train),
            &ClassifyConfig::default(),
        );
        // Two-input profile: train + test merged. Checks derived from it
        // have, by construction, seen the evaluation input's values.
        let mut merged_prof = profile_on(&*w, &module, InputSet::Train);
        merged_prof.merge(&profile_on(&*w, &module, InputSet::Test));
        let merged = ProfileDb::from_profiler(&merged_prof, &ClassifyConfig::default());

        let tc = TransformConfig::default();
        let (m_single, _) = transform(&module, &single, Technique::DupVal, &tc);
        let (m_merged, _) = transform(&module, &merged, Technique::DupVal, &tc);

        let fp_single = measure_false_positives(&*w, &m_single, InputSet::Test);
        let fp_merged = measure_false_positives(&*w, &m_merged, InputSet::Test);
        assert!(
            fp_merged.failures <= fp_single.failures + 3,
            "{name}: merged profile substantially raised false positives \
             ({} vs {})",
            fp_merged.failures,
            fp_single.failures
        );
        total_single += fp_single.failures;
        total_merged += fp_merged.failures;
    }
    assert!(
        total_merged <= total_single,
        "aggregate false positives rose after merging: {total_merged} vs {total_single}"
    );
}

#[test]
fn merged_profiles_keep_detection_working() {
    use softft_campaign::campaign::{run_campaign, CampaignConfig};
    let w = workload_by_name("kmeans").expect("known workload");
    let module = w.build_module();
    let mut merged_prof = profile_on(&*w, &module, InputSet::Train);
    merged_prof.merge(&profile_on(&*w, &module, InputSet::Test));
    let merged = ProfileDb::from_profiler(&merged_prof, &ClassifyConfig::default());
    let (m, stats) = transform(
        &module,
        &merged,
        Technique::DupVal,
        &TransformConfig::default(),
    );
    assert!(stats.value_checks() > 0, "merged profile lost all checks");
    let cfg = CampaignConfig {
        trials: 120,
        seed: 99,
        threads: 2,
        ..CampaignConfig::default()
    };
    let r = run_campaign(&*w, &m, &cfg);
    assert!(
        r.swdetect_frac() > 0.0,
        "no detections with merged-profile checks"
    );
}
