//! Property-based tests: for randomly generated kernels, every
//! transformation preserves fault-free semantics, the verifier holds,
//! timing never speeds programs up, and the fault injector is
//! deterministic.

use proptest::prelude::*;
use soft_ft_tests::random_module;
use softft::{transform, Technique, TransformConfig};
use softft_ir::verify::verify_module;
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::interp::{NoopObserver, Vm, VmConfig};
use softft_vm::timing::{CoreConfig, TimingModel};
use softft_vm::FaultPlan;

fn run_bits(m: &softft_ir::Module) -> Option<u64> {
    let main = m.function_by_name("main").expect("main exists");
    let r = Vm::new(m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
    assert!(r.completed(), "{:?}", r.end);
    r.return_bits()
}

fn profile_of(m: &softft_ir::Module) -> ProfileDb {
    let main = m.function_by_name("main").expect("main exists");
    let mut p = Profiler::default();
    Vm::new(m, VmConfig::default()).run(main, &[], &mut p, None);
    ProfileDb::from_profiler(&p, &ClassifyConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn transforms_preserve_semantics(seed in 0u64..10_000) {
        let m = random_module(seed);
        verify_module(&m).expect("generator produces valid IR");
        let golden = run_bits(&m);
        let profile = profile_of(&m);
        for t in Technique::ALL {
            let (tm, _) = transform(&m, &profile, t, &TransformConfig::default());
            verify_module(&tm).unwrap_or_else(|e| panic!("seed {seed}/{t}: {e}"));
            prop_assert_eq!(run_bits(&tm), golden, "seed {} technique {}", seed, t);
        }
    }

    #[test]
    fn transforms_never_speed_up(seed in 0u64..10_000) {
        let m = random_module(seed);
        let profile = profile_of(&m);
        let main = m.function_by_name("main").expect("main exists");
        let cycles = |module: &softft_ir::Module| {
            let mut t = TimingModel::new(CoreConfig::default());
            let r = Vm::new(module, VmConfig::default()).run(main, &[], &mut t, None);
            assert!(r.completed());
            t.cycles()
        };
        let base = cycles(&m);
        for t in [Technique::DupOnly, Technique::DupVal, Technique::FullDup] {
            let (tm, _) = transform(&m, &profile, t, &TransformConfig::default());
            prop_assert!(cycles(&tm) >= base, "seed {} technique {} got faster", seed, t);
        }
    }

    #[test]
    fn fault_injection_is_deterministic(seed in 0u64..10_000, at in 1u64..5_000, fseed in 0u64..1_000) {
        let m = random_module(seed % 50);
        let main = m.function_by_name("main").expect("main exists");
        let plan = Some(FaultPlan::register(at, fseed));
        let r1 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
        let r2 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn injected_faults_never_panic_the_vm(seed in 0u64..30, at in 1u64..20_000, fseed in 0u64..50) {
        // Any outcome is fine (masked / corrupt / trap); the VM itself
        // must stay healthy and report a structured result.
        let m = random_module(seed);
        let profile = profile_of(&m);
        let (tm, _) = transform(&m, &profile, Technique::DupVal, &TransformConfig::default());
        let main = tm.function_by_name("main").expect("main exists");
        let r = Vm::new(&tm, VmConfig::default()).run(
            main,
            &[],
            &mut NoopObserver,
            Some(FaultPlan::register(at, fseed)),
        );
        prop_assert!(r.dyn_insts > 0);
    }

    #[test]
    fn optimizer_preserves_semantics(seed in 0u64..10_000) {
        // DCE + constant folding + LICM must not change behaviour, and
        // protection applied after optimization must still be sound.
        let m = random_module(seed);
        let golden = run_bits(&m);
        let mut opt = m.clone();
        let stats = softft_ir::opt::optimize(&mut opt);
        verify_module(&opt).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(run_bits(&opt), golden, "seed {} ({:?})", seed, stats);
        prop_assert!(opt.static_inst_count() <= m.static_inst_count() ,
            "optimization grew the program");

        let profile = profile_of(&opt);
        let (protected, _) = transform(&opt, &profile, Technique::DupVal, &TransformConfig::default());
        verify_module(&protected).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(run_bits(&protected), golden, "seed {} protected-after-opt", seed);
    }

    #[test]
    fn cfc_signatures_preserve_semantics(seed in 0u64..10_000) {
        // The control-flow-signature pass must be a no-op on fault-free
        // behaviour for arbitrary programs.
        let m = random_module(seed);
        let golden = run_bits(&m);
        let mut signed = m.clone();
        let stats = softft::cfcss::insert_cfc_signatures(&mut signed);
        verify_module(&signed).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(stats.blocks_signed > 0);
        prop_assert_eq!(run_bits(&signed), golden, "seed {}", seed);
    }

    #[test]
    fn branch_faults_never_panic_signed_or_plain(seed in 0u64..30, at in 1u64..20_000, fseed in 0u64..50) {
        let m = random_module(seed);
        let mut signed = m.clone();
        softft::cfcss::insert_cfc_signatures(&mut signed);
        for module in [&m, &signed] {
            let main = module.function_by_name("main").expect("main exists");
            let r = Vm::new(module, VmConfig::default()).run(
                main,
                &[],
                &mut NoopObserver,
                Some(FaultPlan::branch_target(at, fseed)),
            );
            prop_assert!(r.dyn_insts > 0);
        }
    }

    #[test]
    fn static_stats_are_consistent(seed in 0u64..10_000) {
        let m = random_module(seed);
        let profile = profile_of(&m);
        for t in Technique::ALL {
            let (tm, s) = transform(&m, &profile, t, &TransformConfig::default());
            prop_assert_eq!(s.insts_before, m.static_inst_count());
            prop_assert_eq!(s.insts_after, tm.static_inst_count());
            prop_assert!(s.insts_after >= s.insts_before);
            if t == Technique::Original {
                prop_assert_eq!(s.insts_after, s.insts_before);
            }
        }
    }
}
