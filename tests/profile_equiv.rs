//! The profiling hard invariant, end to end: timing and counting stay
//! off the determinism path. With `VmConfig::profiling` on or off —
//! and with campaign phase attribution on or off — campaign results,
//! per-trial injection records, JSONL trial events, aggregated
//! metrics, and coverage maps are bitwise identical. Also locks the
//! satellite dedupe: the telemetry `TraceObserver` consumes the VM's
//! shared `OpCounts` bins, so its tallies equal the VM profiler's for
//! the same run.

use softft::Technique;
use softft_bench::orchestrate::run_exhibit;
use softft_bench::{Exhibit, ReproConfig};
use softft_campaign::campaign::{
    run_campaign, run_campaign_attributed, run_campaign_profiled, CampaignConfig,
};
use softft_campaign::coverage::build_coverage;
use softft_campaign::prep::prepare;
use softft_telemetry::TraceObserver;
use softft_vm::interp::{Engine, NoopObserver, Vm, VmConfig};
use softft_workloads::runner::{read_output, write_input};
use softft_workloads::{workload_by_name, InputSet};
use std::path::PathBuf;

fn small_cfg(profiling: bool) -> CampaignConfig {
    CampaignConfig {
        trials: 25,
        seed: 11,
        threads: 2,
        vm: VmConfig {
            profiling,
            ..VmConfig::default()
        },
        ..CampaignConfig::default()
    }
}

/// A scratch directory under the temp area, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("softft-profile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn golden_run_is_bitwise_identical_with_profiling_on_or_off() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let module = p.module(Technique::DupVal);
    let input = p.workload.input(InputSet::Test);
    let main = module.function_by_name("main").unwrap();

    let run = |profiling: bool, engine: Engine| {
        let mut vm = Vm::new(
            module,
            VmConfig {
                profiling,
                engine,
                ..VmConfig::default()
            },
        );
        write_input(&mut vm, module, &input);
        let r = vm.run(main, &[], &mut NoopObserver, None);
        let out = read_output(&vm, module);
        (r, out, vm.take_profiler())
    };

    let (r_on, out_on, prof) = run(true, Engine::Fused);
    let (r_off, out_off, no_prof) = run(false, Engine::Fused);
    assert_eq!(r_on, r_off, "profiling changed the run result");
    assert_eq!(out_on, out_off, "profiling changed the output bytes");
    assert!(no_prof.is_none(), "profiler allocated with profiling off");

    // The profiler saw every dispatch: one count per dynamic
    // instruction, and one digram per adjacent pair.
    let prof = prof.expect("profiler present with profiling on");
    assert_eq!(prof.counts().total(), r_on.dyn_insts);
    assert_eq!(prof.digrams().total(), r_on.dyn_insts - 1);
    let top = prof.hot_digrams(5);
    assert!(!top.is_empty());
    for w in top.windows(2) {
        assert!(w[0].count >= w[1].count, "hot digrams not sorted");
    }

    // Profiles are an engine-independent view of the dynamic stream:
    // the decoded tier tallies the identical opcode and digram
    // histograms. Only the fusion-hit stats are engine-specific — a
    // fused run retires pairs, a decoded run never does.
    let (r_dec, out_dec, dprof) = run(true, Engine::Decoded);
    assert_eq!(r_dec, r_on, "engines diverged under profiling");
    assert_eq!(out_dec, out_on, "output bytes diverged under profiling");
    let dprof = dprof.expect("profiler present with profiling on");
    assert_eq!(
        format!("{:?}", prof.counts()),
        format!("{:?}", dprof.counts()),
        "opcode histograms diverged across engines"
    );
    assert_eq!(
        prof.digrams().total(),
        dprof.digrams().total(),
        "digram totals diverged across engines"
    );
    assert!(
        prof.fused_pairs().total() > 0,
        "fused run retired no superinstruction pairs"
    );
    assert_eq!(
        dprof.fused_pairs().total(),
        0,
        "decoded run retired fused pairs"
    );
}

#[test]
fn campaign_outputs_are_bitwise_identical_with_profiling_on_or_off() {
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let t = Technique::DupVal;
    let module = p.module(t);

    let (res_off, tel_off) = run_campaign_attributed(
        &*p.workload,
        module,
        &small_cfg(false),
        Some(p.protection(t)),
    );
    let (res_on, tel_on) = run_campaign_attributed(
        &*p.workload,
        module,
        &small_cfg(true),
        Some(p.protection(t)),
    );

    // Campaign results, injection records, and trial events (the JSONL
    // payload — TrialEvent equality is field equality, which is what
    // serialization writes) are identical.
    assert_eq!(res_off, res_on, "profiling changed campaign results");
    assert_eq!(
        tel_off.records, tel_on.records,
        "injection records diverged"
    );
    assert_eq!(tel_off.events, tel_on.events, "trial events diverged");

    // Aggregated metrics serialize to identical bytes (to_json is
    // byte-stable by construction).
    assert_eq!(
        tel_off.metrics.to_json(),
        tel_on.metrics.to_json(),
        "metrics bytes diverged"
    );

    // Coverage maps built from the records agree structurally.
    let cov_off = build_coverage(
        "tiff2bw",
        t,
        module,
        p.protection(t),
        &res_off,
        &tel_off.records,
    );
    let cov_on = build_coverage(
        "tiff2bw",
        t,
        module,
        p.protection(t),
        &res_on,
        &tel_on.records,
    );
    assert_eq!(
        format!("{cov_off:?}"),
        format!("{cov_on:?}"),
        "coverage diverged"
    );
}

#[test]
fn phase_attribution_never_perturbs_results() {
    // run_campaign_profiled reads wall clocks around every phase; the
    // result must still be bitwise identical to the untimed loop, with
    // snapshots off and on.
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let module = p.module(Technique::DupVal);
    let plain = run_campaign(&*p.workload, module, &small_cfg(false));

    let (timed, prof, _) = run_campaign_profiled(&*p.workload, module, &small_cfg(false));
    assert_eq!(plain, timed);
    assert!(prof.exec_ns > 0);

    let mut snap_cfg = small_cfg(false);
    snap_cfg.snapshot_interval = 1000;
    let (timed_snap, prof_snap, _) = run_campaign_profiled(&*p.workload, module, &snap_cfg);
    assert_eq!(plain, timed_snap);
    assert!(prof_snap.checkpoint_record_ns > 0);
}

#[test]
fn trace_observer_and_vm_profiler_agree_on_opcode_counts() {
    // Satellite dedupe: both counters share the VM's OpClass bins, so a
    // traced golden run tallies exactly what the profiler tallies.
    let p = prepare(workload_by_name("tiff2bw").unwrap());
    let module = p.module(Technique::DupVal);
    let input = p.workload.input(InputSet::Test);
    let main = module.function_by_name("main").unwrap();

    let mut vm = Vm::new(
        module,
        VmConfig {
            profiling: true,
            ..VmConfig::default()
        },
    );
    write_input(&mut vm, module, &input);
    let mut obs = TraceObserver::new();
    let r = vm.run(main, &[], &mut obs, None);
    let prof = vm.take_profiler().expect("profiler present");

    assert_eq!(
        obs.opcodes,
        *prof.counts(),
        "TraceObserver and VmProfiler counted different opcode mixes"
    );
    assert_eq!(obs.opcodes.total(), r.dyn_insts);
}

#[test]
fn profile_exhibit_writes_artifacts_and_passes_equivalence() {
    let scratch = ScratchDir::new("exhibit");
    let bench_out = scratch.0.join("BENCH_profile.json");
    let cfg = ReproConfig {
        trials: 10,
        seed: 3,
        benchmarks: vec!["tiff2bw".into()],
        threads: 2,
        bench_out: Some(bench_out.clone()),
        ..ReproConfig::default()
    };
    let out = run_exhibit(Exhibit::Profile, &cfg);
    assert!(out.contains("hot digrams"), "{out}");
    assert!(out.contains("campaign phases"), "{out}");
    assert!(out.contains("watchdog spin"), "{out}");

    let json = std::fs::read_to_string(&bench_out).expect("BENCH_profile.json written");
    assert!(
        json.contains("\"schema\": \"softft.bench.profile.v1\""),
        "{json}"
    );
    assert!(json.contains("\"all_equivalent\": true"), "{json}");
    assert!(json.contains("\"hot_digrams\""), "{json}");
    assert!(json.contains("\"watchdog_spin_share\""), "{json}");

    let folded =
        std::fs::read_to_string(bench_out.with_extension("folded")).expect("folded stacks written");
    assert!(
        folded.lines().any(|l| l.starts_with("tiff2bw;vm;")),
        "{folded}"
    );
    assert!(
        folded.lines().any(|l| l.starts_with("tiff2bw;campaign;")),
        "{folded}"
    );
    // Folded-stack format: `stack;frames here COUNT` per line.
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(n.parse::<u64>().is_ok(), "{line}");
    }
}
