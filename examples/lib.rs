// Examples crate; each example is a [[bin]] target.
