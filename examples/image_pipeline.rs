//! Protecting a real decoder: the `jpegdec` benchmark end-to-end.
//!
//! Reproduces the story of the paper's Fig. 1 on our SoftJPEG decoder:
//! inject faults into the unprotected decoder and show outputs that are
//! (a) identical, (b) numerically different but visually acceptable
//! (PSNR above the 30 dB threshold), and (c) unacceptably corrupted —
//! then show that the protected decoder converts most of case (c) into
//! detections.
//!
//! ```text
//! cargo run --release -p soft-ft-examples --bin image_pipeline
//! ```

use softft::Technique;
use softft_campaign::campaign::{run_campaign, CampaignConfig};
use softft_campaign::outcome::Outcome;
use softft_campaign::prep::prepare;
use softft_vm::interp::{NoopObserver, VmConfig};
use softft_vm::FaultPlan;
use softft_workloads::runner::run_workload;
use softft_workloads::{workload_by_name, InputSet};

fn main() {
    let prepared = prepare(workload_by_name("jpegdec").expect("jpegdec registered"));
    let w = &*prepared.workload;
    let input = w.input(InputSet::Test);

    // Fault-free reference.
    let original = prepared.module(Technique::Original);
    let (golden_run, golden) = run_workload(
        original,
        &input,
        VmConfig::default(),
        &mut NoopObserver,
        None,
    );
    println!(
        "decoded {} pixels fault-free in {} dynamic instructions",
        golden.len(),
        golden_run.dyn_insts
    );

    // Scan for the three Fig. 1 scenarios on the unprotected decoder.
    let (mut masked, mut acceptable, mut unacceptable) = (None, None, None);
    for seed in 0..3000u64 {
        if masked.is_some() && acceptable.is_some() && unacceptable.is_some() {
            break;
        }
        let plan = FaultPlan::register(seed.wrapping_mul(0x9E37_79B9) % golden_run.dyn_insts, seed);
        let (r, out) = run_workload(
            original,
            &input,
            VmConfig::default(),
            &mut NoopObserver,
            Some(plan),
        );
        if !r.completed() {
            continue;
        }
        if out == golden {
            masked.get_or_insert(seed);
        } else {
            let psnr = w.fidelity(&golden, &out);
            if psnr >= 30.0 {
                acceptable.get_or_insert_with(|| {
                    println!("fig 1(b): seed {seed} -> PSNR {psnr:.1} dB (imperceptible)");
                    seed
                });
            } else {
                unacceptable.get_or_insert_with(|| {
                    println!("fig 1(c): seed {seed} -> PSNR {psnr:.1} dB (visible corruption)");
                    seed
                });
            }
        }
    }
    if let Some(seed) = masked {
        println!("fig 1(a): seed {seed} -> output identical (masked)");
    }

    // Campaigns: unprotected vs protected.
    let cfg = CampaignConfig {
        trials: 300,
        seed: 0xBEEF,
        ..CampaignConfig::default()
    };
    for t in [Technique::Original, Technique::DupVal] {
        let r = run_campaign(w, prepared.module(t), &cfg);
        println!(
            "{:<16} masked {:5.1}%  swdetect {:5.1}%  hwdetect {:4.1}%  failure {:4.1}%  USDC {:4.1}%",
            t.label(),
            r.masked_frac() * 100.0,
            r.swdetect_frac() * 100.0,
            r.hwdetect_frac() * 100.0,
            r.failure_frac() * 100.0,
            r.frac(Outcome::UnacceptableSdc) * 100.0,
        );
    }
}
