//! Machine-learning workloads under fault injection: a full campaign on
//! `kmeans` and `svm` across all four techniques, printing the
//! coverage / overhead trade-off the paper's conclusion highlights —
//! selective protection beats full duplication on *both* axes.
//!
//! ```text
//! cargo run --release -p soft-ft-examples --bin ml_campaign
//! ```

use softft::Technique;
use softft_campaign::campaign::{run_campaign, CampaignConfig};
use softft_campaign::perf::all_overheads;
use softft_campaign::prep::prepare;
use softft_workloads::{workload_by_name, InputSet};

fn main() {
    let cfg = CampaignConfig {
        trials: 250,
        seed: 0xA11CE,
        ..CampaignConfig::default()
    };
    for name in ["kmeans", "svm"] {
        let p = prepare(workload_by_name(name).expect("registered workload"));
        println!("== {name} ==");
        let overheads = all_overheads(&*p.workload, &p.modules, InputSet::Test);
        for t in Technique::ALL {
            let r = run_campaign(&*p.workload, p.module(t), &cfg);
            let ov = overheads
                .iter()
                .find(|(x, _)| *x == t)
                .map(|(_, v)| format!("{:5.1}%", v * 100.0))
                .unwrap_or_else(|| "  base".into());
            println!(
                "  {:<16} overhead {}  coverage {:5.1}%  USDC {:4.1}%",
                t.label(),
                ov,
                r.coverage() * 100.0,
                r.usdc_frac() * 100.0,
            );
        }
        println!();
    }
    println!(
        "the paper's headline: Dup + val chks reaches lower USDC than full \
         duplication at a fraction of its overhead"
    );
}
