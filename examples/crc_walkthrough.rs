//! Walkthrough of the paper's motivating example (Figs. 3–5): a CRC-style
//! loop whose loop-carried variables are state variables, shown before and
//! after each transformation stage, with the printed IR.
//!
//! ```text
//! cargo run --release -p soft-ft-examples --bin crc_walkthrough
//! ```

use softft::pipeline::{transform, Technique, TransformConfig};
use softft::state_vars::find_state_vars;
use softft_ir::dsl::FunctionDsl;
use softft_ir::printer::print_function;
use softft_ir::{FuncId, Module, Type};
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::interp::{Vm, VmConfig};

fn crc_module() -> Module {
    let mut m = Module::new("crc_walkthrough");
    // Mirrors the shape of the mp3dec CRC loop the paper opens with:
    // `crc` and `len` both depend on their previous-iteration values, and
    // the table value has a compact profiled range.
    let g = m.add_global_init(
        "crc_table",
        64 * 8,
        (0..64u64)
            .flat_map(|i| (i * 2654435761 % 251).to_le_bytes())
            .collect(),
    );
    let table = m.global(g).addr as i64;
    let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
        let crc = d.declare_var(Type::I64);
        let len = d.declare_var(Type::I64);
        let init = d.i64c(0xFFFF);
        let n = d.i64c(64 * 32);
        d.set(crc, init);
        d.set(len, n);
        let tab = d.i64c(table);
        d.while_(
            |d| {
                let l = d.get(len);
                let c32 = d.i64c(32);
                d.icmp(softft_ir::IntCC::Sge, l, c32)
            },
            |d| {
                let c = d.get(crc);
                let eight = d.i64c(8);
                let idx0 = d.lshr(c, eight);
                let m63 = d.i64c(63);
                let idx = d.and_(idx0, m63);
                let table_val = d.load_elem(Type::I64, tab, idx);
                let shifted = d.shl(c, eight);
                let x = d.xor(shifted, table_val);
                let mask = d.i64c(0xFFFF_FFFF);
                let nc = d.and_(x, mask);
                d.set(crc, nc);
                let l = d.get(len);
                let c32 = d.i64c(32);
                let nl = d.sub(l, c32);
                d.set(len, nl);
            },
        );
        let c = d.get(crc);
        d.ret(Some(c));
    });
    m.add_function(f);
    m
}

fn main() {
    let module = crc_module();
    let fid = module.function_by_name("main").expect("main exists");

    println!("== Fig. 3: the original loop (state variables underlined = phis) ==");
    println!("{}", print_function(module.function(fid)));
    let svs = find_state_vars(module.function(fid));
    println!(
        "state variables found: {} (crc, len, plus any DSL-introduced counters)\n",
        svs.len()
    );

    // Profile so tableVal gets a range check (Fig. 5's value check).
    let mut profiler = Profiler::default();
    Vm::new(&module, VmConfig::default()).run(fid, &[], &mut profiler, None);
    let profile = ProfileDb::from_profiler(&profiler, &ClassifyConfig::default());

    println!("== Fig. 4: after state-variable duplication (Dup only) ==");
    let (dup, s1) = transform(
        &module,
        &ProfileDb::default(),
        Technique::DupOnly,
        &TransformConfig::default(),
    );
    println!("{}", print_function(dup.function(FuncId::new(0))));
    println!(
        "cloned {} instructions, inserted {} duplication checks\n",
        s1.duplicated, s1.dup_checks
    );

    println!("== Fig. 5 + optimizations: duplication plus expected-value checks ==");
    let (dv, s2) = transform(
        &module,
        &profile,
        Technique::DupVal,
        &TransformConfig::default(),
    );
    println!("{}", print_function(dv.function(FuncId::new(0))));
    println!(
        "value checks: {} single / {} pair / {} range; opt1 suppressed {}, opt2 cuts {}",
        s2.checks_single, s2.checks_pair, s2.checks_range, s2.opt1_suppressed, s2.opt2_terminations
    );
}
