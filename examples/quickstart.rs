//! Quickstart: protect a small kernel end-to-end.
//!
//! Builds a CRC-like kernel with the DSL, profiles it, applies the
//! paper's `Dup + val chks` transformation, and shows one fault being
//! detected that the unprotected binary silently corrupts on.
//!
//! ```text
//! cargo run --release -p soft-ft-examples --bin quickstart
//! ```

use softft::pipeline::{transform, Technique, TransformConfig};
use softft_ir::dsl::FunctionDsl;
use softft_ir::{Module, Type};
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::interp::{NoopObserver, Vm, VmConfig};
use softft_vm::{FaultPlan, RunEnd, TrapKind};

fn build_kernel() -> Module {
    let mut m = Module::new("quickstart");
    let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
        // A checksum accumulator (state variable) over a masked stream
        // (the mask keeps values in a compact, checkable range).
        let crc = d.declare_var(Type::I64);
        let seed = d.i64c(0x1D0F);
        d.set(crc, seed);
        let (s, e) = (d.i64c(0), d.i64c(500));
        d.for_range(s, e, |d, i| {
            let m15 = d.i64c(15);
            let v = d.and_(i, m15);
            let c = d.get(crc);
            let one = d.i64c(1);
            let sh = d.shl(c, one);
            let x = d.xor(sh, v);
            let mask = d.i64c(0xFFFF);
            let nc = d.and_(x, mask);
            d.set(crc, nc);
        });
        let c = d.get(crc);
        d.ret(Some(c));
    });
    m.add_function(f);
    m
}

fn main() {
    let module = build_kernel();
    let main = module.function_by_name("main").expect("main exists");

    // 1. Profile (the paper's offline value-profiling pass).
    let mut profiler = Profiler::default();
    let golden = Vm::new(&module, VmConfig::default()).run(main, &[], &mut profiler, None);
    let profile = ProfileDb::from_profiler(&profiler, &ClassifyConfig::default());
    println!(
        "profiled {} check-amenable instructions; golden result = {:#x}",
        profile.num_amenable(),
        golden.return_bits().expect("fault-free run returns")
    );

    // 2. Transform.
    let (protected, stats) = transform(
        &module,
        &profile,
        Technique::DupVal,
        &TransformConfig::default(),
    );
    println!(
        "transformed: {} state vars, {} cloned insts, {} value checks ({} -> {} static insts)",
        stats.state_vars,
        stats.duplicated,
        stats.value_checks(),
        stats.insts_before,
        stats.insts_after
    );

    // 3. Inject the same faults into both binaries and compare outcomes.
    let mut silent = 0;
    let mut detected = 0;
    let mut trials = 0;
    let span = golden.dyn_insts as usize;
    for at in (10..span).step_by(span / 90) {
        let at = at as u64;
        for seed in 0..3 {
            trials += 1;
            let plan = Some(FaultPlan::register(at, seed));
            let orig =
                Vm::new(&module, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
            let prot =
                Vm::new(&protected, VmConfig::default()).run(main, &[], &mut NoopObserver, plan);
            if orig.completed() && orig.return_bits() != golden.return_bits() {
                silent += 1;
            }
            if matches!(
                prot.end,
                RunEnd::Trap {
                    kind: TrapKind::SwDetect(_),
                    ..
                }
            ) {
                detected += 1;
            }
        }
    }
    println!(
        "over {trials} identical fault injections: \
         unprotected produced {silent} silent corruptions; \
         protected raised {detected} software detections"
    );
}
