#![warn(missing_docs)]

//! # softft
//!
//! The primary contribution of *Harnessing Soft Computations for
//! Low-budget Fault Tolerance* (Khudia & Mahlke, MICRO 2014): a compiler
//! transformation that partitions computations into
//!
//! 1. **state variables** — loop-carried values (phi nodes in loop
//!    headers) whose corruption snowballs across iterations; their
//!    producer chains are *duplicated* and compared ([`duplicate`]),
//! 2. computations with profile-stable outputs, guarded by cheap
//!    **expected-value checks** ([`value_checks`]; single / two-value /
//!    range — Fig. 6), and
//! 3. everything else — left unprotected, because a corruption there is
//!    unlikely to produce a *user-perceptible* (unacceptable) output
//!    change.
//!
//! Two optimizations couple the mechanisms (Figs. 8 and 9): Opt 1 keeps
//! only the check deepest in a chain of amenable instructions; Opt 2
//! terminates producer-chain duplication at check-amenable instructions.
//! A SWIFT-style [`fulldup`] baseline reproduces the paper's
//! full-duplication comparator.
//!
//! Entry point: [`pipeline::transform`].
//!
//! ```
//! use softft::pipeline::{transform, Technique, TransformConfig};
//! use softft_ir::dsl::FunctionDsl;
//! use softft_ir::{Module, Type};
//! use softft_profile::ProfileDb;
//!
//! let mut m = Module::new("demo");
//! let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
//!     let acc = d.declare_var(Type::I64);
//!     let z = d.i64c(0);
//!     d.set(acc, z);
//!     let (s, e) = (d.i64c(0), d.i64c(16));
//!     d.for_range(s, e, |d, i| {
//!         let a = d.get(acc);
//!         let a2 = d.add(a, i);
//!         d.set(acc, a2);
//!     });
//!     let a = d.get(acc);
//!     d.ret(Some(a));
//! });
//! m.add_function(f);
//!
//! let profile = ProfileDb::default(); // no value profile: Dup-only
//! let (protected, stats) =
//!     transform(&m, &profile, Technique::DupOnly, &TransformConfig::default());
//! assert!(stats.state_vars > 0);
//! softft_ir::verify::verify_module(&protected).unwrap();
//! ```

pub mod cfcss;
pub mod duplicate;
pub mod fulldup;
pub mod pipeline;
pub mod protection;
pub mod state_vars;
pub mod value_checks;

pub use pipeline::{transform, transform_protected, StaticStats, Technique, TransformConfig};
pub use protection::{ProtClass, ProtectionMap};
