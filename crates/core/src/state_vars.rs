//! State-variable identification.
//!
//! Section IV-A of the paper: the IR is in SSA form, so *state variables*
//! — variables that depend on their own value from previous iterations —
//! are exactly the phi nodes in loop headers (one incoming definition from
//! outside the loop, one from the loop updates). Loop induction variables
//! are state variables too, and are found by the same rule.

use softft_ir::dom::DomTree;
use softft_ir::loops::LoopForest;
use softft_ir::{Function, InstId, ValueId};

/// One identified state variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateVar {
    /// The phi instruction in a loop header.
    pub phi: InstId,
    /// The phi's result value.
    pub value: ValueId,
}

/// Finds the state variables of `func`: all phis whose block is a natural
/// loop header. Returns them in instruction order (deterministic).
pub fn find_state_vars(func: &Function) -> Vec<StateVar> {
    let dom = DomTree::compute(func);
    let loops = LoopForest::compute(func, &dom);
    let mut out = Vec::new();
    for b in func.block_ids() {
        if !loops.is_header(b) {
            continue;
        }
        for &i in &func.block(b).insts {
            let inst = func.inst(i);
            if !inst.op.is_phi() {
                break; // phis form a prefix
            }
            if inst.dead {
                continue;
            }
            out.push(StateVar {
                phi: i,
                value: inst.result.expect("phi has a result"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::Type;

    #[test]
    fn loop_accumulator_and_index_are_state_vars() {
        let f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(8));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let sv = find_state_vars(&f);
        assert_eq!(sv.len(), 2, "accumulator + induction variable");
    }

    #[test]
    fn if_else_merge_phi_is_not_a_state_var() {
        let f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let x = d.declare_var(Type::I64);
            let p = d.param(0);
            let z = d.i64c(0);
            let c = d.icmp(softft_ir::IntCC::Sgt, p, z);
            let one = d.i64c(1);
            let two = d.i64c(2);
            d.if_else(c, |d| d.set(x, one), |d| d.set(x, two));
            let xv = d.get(x);
            d.ret(Some(xv));
        });
        assert!(find_state_vars(&f).is_empty());
    }

    #[test]
    fn nested_loops_contribute_separately() {
        let f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(4));
            d.for_range(s, e, |d, _i| {
                let (s2, e2) = (d.i64c(0), d.i64c(4));
                d.for_range(s2, e2, |d, j| {
                    let a = d.get(acc);
                    let a2 = d.add(a, j);
                    d.set(acc, a2);
                });
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        // Outer: i (+ acc, which lives across the outer loop too).
        // Inner: j, acc.
        let sv = find_state_vars(&f);
        assert!(sv.len() >= 3, "got {}", sv.len());
    }

    #[test]
    fn straightline_code_has_none() {
        let f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let q = d.mul(p, p);
            d.ret(Some(q));
        });
        assert!(find_state_vars(&f).is_empty());
    }
}
