//! Producer-chain duplication for state variables (Section III-B, Fig. 7)
//! and Optimization 2 (Fig. 9).

use crate::protection::{ProtClass, ProtectionMap};
use crate::state_vars::find_state_vars;
use crate::value_checks::insert_check_after;
use softft_ir::builder::InstBuilder;
use softft_ir::function::ValueKind;
use softft_ir::inst::{CheckKind, FloatCC, IntCC, Op};
use softft_ir::{FuncId, Function, InstId, Type, ValueId};
use softft_profile::{InstKey, ProfileDb};
use std::collections::{HashMap, HashSet};

/// Counters from the duplication pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DupStats {
    /// State variables found (phis in loop headers).
    pub state_vars: usize,
    /// Instructions cloned into shadow chains (including shadow phis).
    pub cloned: usize,
    /// Duplication-mismatch checks inserted (compare + check pairs).
    pub dup_checks: usize,
    /// Chains terminated early by Optimization 2 (a value check was
    /// inserted instead of continuing to duplicate).
    pub opt2_terminations: usize,
    /// Extra IR instructions added in total.
    pub added_insts: usize,
}

/// Duplicates the producer chains of all state variables of `func`.
///
/// For each loop-header phi a *shadow phi* is created; each incoming
/// value's producer chain is cloned (stopping at loads, parameters,
/// constants, calls, and non-state phis — and, with `opt2`, at
/// check-amenable instructions per `profile`, where the expected-value
/// check is inserted instead). On every loop edge whose original and
/// shadow values can diverge, an equality comparison feeding a
/// [`CheckKind::DupMismatch`] check is inserted before the edge's source
/// terminator.
///
/// `already_checked` records instructions that received an Opt-2 value
/// check so the later value-check pass does not insert a second one.
/// `protection` records the class of every site the pass guards:
/// [`ProtClass::Duplicated`] for cloned producers and state phis,
/// [`ProtClass::ValueChecked`] for Opt-2 substitutions.
pub fn duplicate_state_vars(
    func: &mut Function,
    fid: FuncId,
    profile: &ProfileDb,
    opt2: bool,
    already_checked: &mut HashSet<InstId>,
    protection: &mut ProtectionMap,
) -> DupStats {
    let mut stats = DupStats::default();
    let state_vars = find_state_vars(func);
    stats.state_vars = state_vars.len();
    if state_vars.is_empty() {
        return stats;
    }

    // Pre-create shadow phis so recursive shadowing of cyclic chains
    // terminates at them.
    let mut shadow: HashMap<ValueId, ValueId> = HashMap::new();
    let mut shadow_phis: Vec<(InstId, InstId)> = Vec::new(); // (orig phi, shadow phi)
    for sv in &state_vars {
        let header = func.inst(sv.phi).block;
        let ty = func.value_type(sv.value);
        let (sp_inst, sp_val) = {
            let mut b = InstBuilder::new(func, header);
            b.empty_phi(ty, header)
        };
        shadow.insert(sv.value, sp_val);
        shadow_phis.push((sv.phi, sp_inst));
        protection.record(fid, sv.phi, ProtClass::Duplicated);
        // The shadow phi itself is part of the duplicated sphere: a flip
        // in either copy trips the edge comparison.
        protection.record(fid, sp_inst, ProtClass::Duplicated);
        stats.cloned += 1;
        stats.added_insts += 1;
    }

    // Shadow each incoming value of each state phi.
    let mut edge_checks: Vec<(softft_ir::BlockId, ValueId, ValueId)> = Vec::new();
    for (orig_phi, shadow_phi) in &shadow_phis {
        let incomings = match &func.inst(*orig_phi).op {
            Op::Phi { incomings } => incomings.clone(),
            _ => unreachable!("state var is a phi"),
        };
        let mut shadow_incomings = Vec::with_capacity(incomings.len());
        for (pred, v) in incomings {
            let sv = shadow_value(
                func,
                fid,
                v,
                profile,
                opt2,
                already_checked,
                protection,
                &mut shadow,
                &mut stats,
            );
            shadow_incomings.push((pred, sv));
            if sv != v {
                edge_checks.push((pred, v, sv));
            }
        }
        if let Op::Phi { incomings } = &mut func.inst_mut(*shadow_phi).op {
            *incomings = shadow_incomings;
        }
    }

    // Insert the edge comparisons (original vs shadow) before each edge
    // source's terminator.
    edge_checks.sort_by_key(|(b, v, s)| (*b, *v, *s));
    edge_checks.dedup();
    for (block, orig, shad) in edge_checks {
        let ty = func.value_type(orig);
        let cmp_op = if ty.is_float() {
            Op::Fcmp {
                pred: FloatCC::Eq,
                lhs: orig,
                rhs: shad,
            }
        } else {
            Op::Icmp {
                pred: IntCC::Eq,
                lhs: orig,
                rhs: shad,
            }
        };
        let cmp = func.insert_inst_at_end(cmp_op, Some(Type::I1), block);
        let cond = func.inst(cmp).result.expect("cmp result");
        func.insert_inst_at_end(
            Op::Check {
                cond,
                kind: CheckKind::DupMismatch,
            },
            None,
            block,
        );
        stats.dup_checks += 1;
        stats.added_insts += 2;
    }
    stats
}

/// Number of instructions duplication would clone for `v`'s producer
/// chain (stopping at the same boundaries as [`shadow_value`]:
/// constants, parameters, non-duplicable instructions, and values that
/// already have shadows).
fn chain_size(
    func: &Function,
    v: ValueId,
    shadow: &HashMap<ValueId, ValueId>,
    visited: &mut HashSet<ValueId>,
    ops: &mut Vec<ValueId>,
) -> usize {
    if shadow.contains_key(&v) || !visited.insert(v) {
        return 0;
    }
    let def = match func.value(v).kind {
        ValueKind::Const(_) | ValueKind::Param(_) => return 0,
        ValueKind::Inst(i) => i,
    };
    let op = &func.inst(def).op;
    if !op.is_duplicable() {
        return 0;
    }
    // `ops` is one buffer shared by the whole recursion: each level
    // appends its operands, walks its own range, and truncates back.
    let mut size = 1;
    let start = ops.len();
    op.operands(ops);
    let end = ops.len();
    for idx in start..end {
        let o = ops[idx];
        size += chain_size(func, o, shadow, visited, ops);
    }
    ops.truncate(start);
    size
}

/// Returns the shadow of `v`, cloning producer instructions as needed.
#[allow(clippy::too_many_arguments)]
fn shadow_value(
    func: &mut Function,
    fid: FuncId,
    v: ValueId,
    profile: &ProfileDb,
    opt2: bool,
    already_checked: &mut HashSet<InstId>,
    protection: &mut ProtectionMap,
    shadow: &mut HashMap<ValueId, ValueId>,
    stats: &mut DupStats,
) -> ValueId {
    if let Some(&s) = shadow.get(&v) {
        return s;
    }
    let def = match func.value(v).kind {
        // Constants and parameters are their own shadow (immediates /
        // call-boundary values; the paper duplicates computation only).
        ValueKind::Const(_) | ValueKind::Param(_) => {
            shadow.insert(v, v);
            return v;
        }
        ValueKind::Inst(i) => i,
    };
    let op = func.inst(def).op.clone();

    // Chain terminators: loads (to save memory traffic; faulty addresses
    // surface as out-of-bounds symptoms), calls, checks, and phis that are
    // not state variables (merge phis).
    if !op.is_duplicable() {
        shadow.insert(v, v);
        return v;
    }

    // Optimization 2: a check-amenable instruction in a *long* producer
    // chain ends the chain; the expected-value check substitutes for
    // duplication (Fig. 9). The paper applies this "wherever beneficial
    // in terms of performance overhead", so the check is only inserted
    // when the chain it cuts off would cost more clones than the check
    // costs instructions — otherwise a 1-instruction clone would be
    // replaced by a 3–4 instruction check, the opposite of a saving.
    if opt2 {
        let key = InstKey {
            func: fid,
            inst: def,
        };
        if let Some(spec) = profile.check_for(key) {
            if already_checked.contains(&def) {
                stats.opt2_terminations += 1;
                shadow.insert(v, v);
                return v;
            }
            let remaining = chain_size(func, v, shadow, &mut HashSet::new(), &mut Vec::new());
            if remaining >= spec.static_cost() {
                let added = insert_check_after(func, def, spec);
                if added > 0 {
                    already_checked.insert(def);
                    protection.record(fid, def, ProtClass::ValueChecked);
                    stats.opt2_terminations += 1;
                    stats.added_insts += added;
                    shadow.insert(v, v);
                    return v;
                }
                // Vacuous check: fall through and duplicate instead.
            }
        }
    }

    // Clone the instruction with shadowed operands.
    let mut cloned_op = op.clone();
    let mut operand_shadows: HashMap<ValueId, ValueId> = HashMap::new();
    let mut ops = Vec::new();
    op.operands(&mut ops);
    for o in ops {
        let s = shadow_value(
            func,
            fid,
            o,
            profile,
            opt2,
            already_checked,
            protection,
            shadow,
            stats,
        );
        operand_shadows.insert(o, s);
    }
    cloned_op.for_each_operand_mut(|o| {
        if let Some(&s) = operand_shadows.get(o) {
            *o = s;
        }
    });
    let ty = func.value_type(v);
    let clone = func.insert_inst_after(cloned_op, Some(ty), def);
    let clone_val = func.inst(clone).result.expect("clone has result");
    shadow.insert(v, clone_val);
    protection.record(fid, def, ProtClass::Duplicated);
    // Record the clone too: faults can land in the shadow copy's slot,
    // and its defining instruction is the clone, not `def`.
    protection.record(fid, clone, ProtClass::Duplicated);
    stats.cloned += 1;
    stats.added_insts += 1;
    clone_val
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::verify::verify_function;
    use softft_ir::Module;
    use softft_profile::{ClassifyConfig, Profiler};
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_vm::outcome::{RunEnd, TrapKind};
    use softft_vm::FaultPlan;

    fn crc_like_module() -> Module {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let crc = d.declare_var(Type::I64);
            let seed = d.i64c(0x1D0F);
            d.set(crc, seed);
            let (s, e) = (d.i64c(0), d.i64c(200));
            d.for_range(s, e, |d, i| {
                let c = d.get(crc);
                let eight = d.i64c(8);
                let sh = d.shl(c, eight);
                let x = d.xor(sh, i);
                let mask = d.i64c(0xFFFF_FFFF);
                let nc = d.and_(x, mask);
                d.set(crc, nc);
            });
            let c = d.get(crc);
            d.ret(Some(c));
        });
        m.add_function(f);
        m
    }

    fn dup_transform(m: &mut Module, opt2: bool, profile: &ProfileDb) -> DupStats {
        let fid = m.function_by_name("main").unwrap();
        let mut already = HashSet::new();
        let mut prot = ProtectionMap::new();
        let stats = duplicate_state_vars(
            m.function_mut(fid),
            fid,
            profile,
            opt2,
            &mut already,
            &mut prot,
        );
        verify_function(m.function(fid)).unwrap();
        assert_eq!(
            prot.count(ProtClass::Duplicated) + prot.count(ProtClass::ValueChecked),
            prot.len(),
            "duplication records only duplicated/value-checked sites"
        );
        stats
    }

    #[test]
    fn duplication_preserves_semantics() {
        let golden = {
            let m = crc_like_module();
            let fid = m.function_by_name("main").unwrap();
            Vm::new(&m, VmConfig::default())
                .run(fid, &[], &mut NoopObserver, None)
                .return_bits()
        };
        let mut m = crc_like_module();
        let stats = dup_transform(&mut m, false, &ProfileDb::default());
        assert!(stats.state_vars >= 2); // crc + induction var
        assert!(stats.cloned > 0);
        assert!(stats.dup_checks > 0);
        let fid = m.function_by_name("main").unwrap();
        let got = Vm::new(&m, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        assert_eq!(got, golden);
    }

    #[test]
    fn corrupting_state_chain_is_detected() {
        let mut m = crc_like_module();
        dup_transform(&mut m, false, &ProfileDb::default());
        let fid = m.function_by_name("main").unwrap();
        let mut detections = 0;
        let mut trials = 0;
        for at in (10..800).step_by(13) {
            for seed in 0..3 {
                trials += 1;
                let r = Vm::new(&m, VmConfig::default()).run(
                    fid,
                    &[],
                    &mut NoopObserver,
                    Some(FaultPlan::register(at, seed)),
                );
                if matches!(
                    r.end,
                    RunEnd::Trap {
                        kind: TrapKind::SwDetect(CheckKind::DupMismatch),
                        ..
                    }
                ) {
                    detections += 1;
                }
            }
        }
        // Most flips hit dead register state and are masked (the paper's
        // Masked rate is ~60-70%); require a meaningful detection share.
        assert!(
            detections > trials / 20,
            "only {detections}/{trials} duplication detections"
        );
    }

    #[test]
    fn unprotected_module_misses_what_duplication_catches() {
        // Same fault plans on original vs duplicated: duplicated must not
        // be *worse*, and must convert some corruptions to detections.
        let m0 = crc_like_module();
        let fid0 = m0.function_by_name("main").unwrap();
        let golden = Vm::new(&m0, VmConfig::default())
            .run(fid0, &[], &mut NoopObserver, None)
            .return_bits();
        let mut corrupted_orig = 0;
        for at in (10..400).step_by(11) {
            let r = Vm::new(&m0, VmConfig::default()).run(
                fid0,
                &[],
                &mut NoopObserver,
                Some(FaultPlan::register(at, 1)),
            );
            if r.completed() && r.return_bits() != golden {
                corrupted_orig += 1;
            }
        }
        assert!(
            corrupted_orig > 0,
            "baseline never corrupts — test is vacuous"
        );
    }

    #[test]
    fn opt2_reduces_cloning_when_checks_available() {
        // Profile the module so the masked value is check-amenable, then
        // compare cloning with and without Opt 2.
        let mk = || {
            let mut m = Module::new("m");
            let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
                let acc = d.declare_var(Type::I64);
                let z = d.i64c(0);
                d.set(acc, z);
                let (s, e) = (d.i64c(0), d.i64c(64));
                d.for_range(s, e, |d, i| {
                    let m7 = d.i64c(7);
                    let v = d.and_(i, m7);
                    let three = d.i64c(3);
                    let v3 = d.mul(v, three);
                    let a = d.get(acc);
                    let a2 = d.add(a, v3);
                    d.set(acc, a2);
                });
                let a = d.get(acc);
                d.ret(Some(a));
            });
            m.add_function(f);
            m
        };
        let base = mk();
        let fid = base.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        Vm::new(&base, VmConfig::default()).run(fid, &[], &mut prof, None);
        let profile = ProfileDb::from_profiler(&prof, &ClassifyConfig::default());
        assert!(profile.num_amenable() > 0);

        let mut no_opt2 = mk();
        let s1 = dup_transform(&mut no_opt2, false, &profile);
        let mut with_opt2 = mk();
        let s2 = dup_transform(&mut with_opt2, true, &profile);
        assert!(
            s2.cloned < s1.cloned,
            "opt2 cloned {} !< plain {}",
            s2.cloned,
            s1.cloned
        );
        assert!(s2.opt2_terminations > 0);

        // Semantics unchanged either way.
        let golden = Vm::new(&base, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        for m in [&no_opt2, &with_opt2] {
            let got = Vm::new(m, VmConfig::default())
                .run(fid, &[], &mut NoopObserver, None)
                .return_bits();
            assert_eq!(got, golden);
        }
    }

    #[test]
    fn function_without_loops_is_untouched() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let q = d.mul(p, p);
            d.ret(Some(q));
        });
        m.add_function(f);
        let before = m
            .function_by_name("main")
            .map(|f_| m.function(f_).static_inst_count())
            .unwrap();
        let stats = dup_transform(&mut m, true, &ProfileDb::default());
        assert_eq!(stats.state_vars, 0);
        assert_eq!(stats.added_insts, 0);
        let fid = m.function_by_name("main").unwrap();
        assert_eq!(m.function(fid).static_inst_count(), before);
    }

    #[test]
    fn chains_terminate_at_loads() {
        // State update goes through a load: the load must not be cloned.
        let mut m = Module::new("m");
        let g = m.add_global("tab", 64);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let (s0, e0) = (d.i64c(0), d.i64c(8));
            d.for_range(s0, e0, |d, i| {
                let v = d.mul(i, i);
                d.store_elem(b, i, v);
            });
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            d.for_range(s0, e0, |d, i| {
                let t = d.load_elem(Type::I64, b, i);
                let a = d.get(acc);
                let a2 = d.add(a, t);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let fid = m.function_by_name("main").unwrap();
        let loads_before = m
            .function(fid)
            .live_inst_ids()
            .filter(|&i| matches!(m.function(fid).inst(i).op, Op::Load { .. }))
            .count();
        dup_transform(&mut m, false, &ProfileDb::default());
        let loads_after = m
            .function(fid)
            .live_inst_ids()
            .filter(|&i| matches!(m.function(fid).inst(i).op, Op::Load { .. }))
            .count();
        assert_eq!(loads_before, loads_after, "loads were duplicated");
        let r = Vm::new(&m, VmConfig::default()).run(fid, &[], &mut NoopObserver, None);
        assert_eq!(r.return_bits(), Some(140));
    }
}
