//! Expected-value check insertion (Fig. 6) and Optimization 1 (Fig. 8).

use crate::protection::{ProtClass, ProtectionMap};
use softft_ir::inst::{BinOp, CheckKind, FloatCC, IntCC, Op};
use softft_ir::{FuncId, Function, InstId, Type};
use softft_profile::{CheckSpec, InstKey, ProfileDb};
use std::collections::{HashMap, HashSet};

/// Counters from the value-check pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValueCheckStats {
    /// Single-value checks inserted (Fig. 6a).
    pub single: usize,
    /// Two-value checks inserted (Fig. 6b).
    pub pair: usize,
    /// Range checks inserted (Fig. 6c).
    pub range: usize,
    /// Amenable instructions suppressed by Optimization 1.
    pub opt1_suppressed: usize,
    /// Extra IR instructions added.
    pub added_insts: usize,
}

impl ValueCheckStats {
    /// Total check sites inserted.
    pub fn total_checks(&self) -> usize {
        self.single + self.pair + self.range
    }
}

fn type_bounds(ty: Type) -> (i64, i64) {
    match ty {
        Type::I1 => (0, 1),
        Type::I8 => (i8::MIN as i64, i8::MAX as i64),
        Type::I16 => (i16::MIN as i64, i16::MAX as i64),
        Type::I32 => (i32::MIN as i64, i32::MAX as i64),
        Type::I64 | Type::F64 => (i64::MIN, i64::MAX),
    }
}

/// Inserts the IR sequence for `spec` immediately after `anchor` (which
/// must produce `value`). Returns the number of instructions added; 0
/// when the check would be vacuous (e.g. a range covering the whole type
/// domain).
pub fn insert_check_after(func: &mut Function, anchor: InstId, spec: CheckSpec) -> usize {
    let value = func
        .inst(anchor)
        .result
        .expect("check anchor produces a value");
    let ty = func.value_type(value);
    match spec {
        CheckSpec::Single { bits } => {
            let (cmp_op, expected) = if ty.is_float() {
                let c = func.fconst(f64::from_bits(bits));
                (
                    Op::Fcmp {
                        pred: FloatCC::Eq,
                        lhs: value,
                        rhs: c,
                    },
                    c,
                )
            } else {
                let c = func.iconst(ty, bits as i64);
                (
                    Op::Icmp {
                        pred: IntCC::Eq,
                        lhs: value,
                        rhs: c,
                    },
                    c,
                )
            };
            let _ = expected;
            let cmp = func.insert_inst_after(cmp_op, Some(Type::I1), anchor);
            let cond = func.inst(cmp).result.expect("icmp result");
            func.insert_inst_after(
                Op::Check {
                    cond,
                    kind: CheckKind::ValueSingle,
                },
                None,
                cmp,
            );
            2
        }
        CheckSpec::Pair { a, b } => {
            let (ca, cb) = if ty.is_float() {
                (
                    func.fconst(f64::from_bits(a)),
                    func.fconst(f64::from_bits(b)),
                )
            } else {
                (func.iconst(ty, a as i64), func.iconst(ty, b as i64))
            };
            let mk = |lhs, rhs| {
                if ty.is_float() {
                    Op::Fcmp {
                        pred: FloatCC::Eq,
                        lhs,
                        rhs,
                    }
                } else {
                    Op::Icmp {
                        pred: IntCC::Eq,
                        lhs,
                        rhs,
                    }
                }
            };
            let c1 = func.insert_inst_after(mk(value, ca), Some(Type::I1), anchor);
            let c2 = func.insert_inst_after(mk(value, cb), Some(Type::I1), c1);
            let v1 = func.inst(c1).result.expect("cmp result");
            let v2 = func.inst(c2).result.expect("cmp result");
            let or = func.insert_inst_after(
                Op::Bin {
                    op: BinOp::Or,
                    lhs: v1,
                    rhs: v2,
                },
                Some(Type::I1),
                c2,
            );
            let cond = func.inst(or).result.expect("or result");
            func.insert_inst_after(
                Op::Check {
                    cond,
                    kind: CheckKind::ValuePair,
                },
                None,
                or,
            );
            4
        }
        CheckSpec::IntRange { lo, hi } => {
            let (tmin, tmax) = type_bounds(ty);
            let lo = lo.max(tmin);
            let hi = hi.min(tmax);
            if lo <= tmin && hi >= tmax {
                return 0; // vacuous: every representable value passes
            }
            // Classic two-in-one bounds test: `lo <= v <= hi` is
            // `(v - lo) unsigned<= (hi - lo)` — one subtract, one
            // unsigned compare, one check (the form a compiler would
            // emit for the paper's Fig. 6c range check).
            let clo = func.iconst(ty, lo);
            let cspan = func.iconst(ty, hi.wrapping_sub(lo));
            let sub = func.insert_inst_after(
                Op::Bin {
                    op: BinOp::Sub,
                    lhs: value,
                    rhs: clo,
                },
                Some(ty),
                anchor,
            );
            let biased = func.inst(sub).result.expect("sub result");
            let cmp = func.insert_inst_after(
                Op::Icmp {
                    pred: IntCC::Ule,
                    lhs: biased,
                    rhs: cspan,
                },
                Some(Type::I1),
                sub,
            );
            let cond = func.inst(cmp).result.expect("cmp result");
            func.insert_inst_after(
                Op::Check {
                    cond,
                    kind: CheckKind::ValueRange,
                },
                None,
                cmp,
            );
            3
        }
        CheckSpec::FloatRange { lo, hi } => {
            let clo = func.fconst(lo);
            let chi = func.fconst(hi);
            let c1 = func.insert_inst_after(
                Op::Fcmp {
                    pred: FloatCC::Ge,
                    lhs: value,
                    rhs: clo,
                },
                Some(Type::I1),
                anchor,
            );
            let c2 = func.insert_inst_after(
                Op::Fcmp {
                    pred: FloatCC::Le,
                    lhs: value,
                    rhs: chi,
                },
                Some(Type::I1),
                c1,
            );
            let v1 = func.inst(c1).result.expect("cmp result");
            let v2 = func.inst(c2).result.expect("cmp result");
            let and = func.insert_inst_after(
                Op::Bin {
                    op: BinOp::And,
                    lhs: v1,
                    rhs: v2,
                },
                Some(Type::I1),
                c2,
            );
            let cond = func.inst(and).result.expect("and result");
            func.insert_inst_after(
                Op::Check {
                    cond,
                    kind: CheckKind::ValueRange,
                },
                None,
                and,
            );
            4
        }
    }
}

/// The check kind `spec` will produce (for stats).
fn kind_of(spec: &CheckSpec) -> CheckKind {
    match spec {
        CheckSpec::Single { .. } => CheckKind::ValueSingle,
        CheckSpec::Pair { .. } => CheckKind::ValuePair,
        CheckSpec::IntRange { .. } | CheckSpec::FloatRange { .. } => CheckKind::ValueRange,
    }
}

/// Computes the Optimization-1 survivors among `amenable`: an amenable
/// instruction is dropped when another amenable instruction is *strictly
/// downstream* of it through dataflow (its value feeds, possibly
/// transitively, a deeper amenable instruction — Fig. 8 keeps only the
/// check "lower in the producer chain").
///
/// Reachability crosses phis, so a check on a loop-carried reduction is
/// pushed past the loop to the instruction consuming the final
/// accumulated value — executing once per loop instead of once per
/// iteration, which is where the optimization's overhead savings come
/// from. Instructions in the same dependence cycle (mutually reachable)
/// would otherwise suppress each other; the cycle keeps exactly one
/// representative (smallest id) unless a strictly-downstream amenable
/// instruction suppresses the whole cycle.
pub fn opt1_survivors(func: &Function, amenable: &HashSet<InstId>) -> HashSet<InstId> {
    // users[v] = instructions consuming v (phis included: reachability
    // flows through loop-carried dependences).
    let mut users: HashMap<softft_ir::ValueId, Vec<InstId>> = HashMap::new();
    let mut ops = Vec::new();
    for i in func.live_inst_ids() {
        ops.clear();
        func.inst(i).op.operands(&mut ops);
        for &v in &ops {
            users.entry(v).or_default().push(i);
        }
    }

    // Amenable instructions reachable (strictly forward) from each
    // amenable instruction.
    let reach_of = |s: InstId| -> HashSet<InstId> {
        let mut reached = HashSet::new();
        let mut visited: HashSet<InstId> = HashSet::new();
        let mut stack: Vec<InstId> = Vec::new();
        if let Some(r) = func.inst(s).result {
            if let Some(us) = users.get(&r) {
                stack.extend(us.iter().copied());
            }
        }
        while let Some(i) = stack.pop() {
            if !visited.insert(i) {
                continue;
            }
            if amenable.contains(&i) {
                reached.insert(i);
                // Keep walking: members beyond this one matter for cycle
                // detection only through their own reach sets, so we can
                // stop expanding here.
                continue;
            }
            if let Some(r) = func.inst(i).result {
                if let Some(us) = users.get(&r) {
                    stack.extend(us.iter().copied());
                }
            }
        }
        reached
    };

    let reach: HashMap<InstId, HashSet<InstId>> =
        amenable.iter().map(|&s| (s, reach_of(s))).collect();
    // Transitive closure over amenable members (reach sets above stop at
    // the first amenable hit, so compose them).
    let mut closed: HashMap<InstId, HashSet<InstId>> = reach.clone();
    let mut changed = true;
    while changed {
        changed = false;
        let keys: Vec<InstId> = closed.keys().copied().collect();
        for s in keys {
            let current: Vec<InstId> = closed[&s].iter().copied().collect();
            let mut additions: Vec<InstId> = Vec::new();
            for t in current {
                for &u in &reach[&t] {
                    if u != s && !closed[&s].contains(&u) {
                        additions.push(u);
                    }
                }
            }
            if !additions.is_empty() {
                closed.get_mut(&s).expect("present").extend(additions);
                changed = true;
            }
        }
    }

    let mut survivors = HashSet::new();
    for &s in amenable {
        let down = &closed[&s];
        // Strictly-downstream amenable member (reaches s's targets but s
        // is not reachable back from it)?
        let strictly_below = down.iter().any(|&t| t != s && !closed[&t].contains(&s));
        if strictly_below {
            continue; // a deeper check covers this chain
        }
        // Members of s's cycle (mutually reachable, including s when it
        // loops to itself).
        let cycle_min = down
            .iter()
            .copied()
            .filter(|&t| closed[&t].contains(&s) || t == s)
            .chain(std::iter::once(s))
            .min()
            .expect("at least s");
        if cycle_min == s {
            survivors.insert(s);
        }
    }
    survivors
}

/// Inserts expected-value checks for every amenable instruction of
/// `func` (per `profile`), applying Optimization 1 when `opt1` is set.
///
/// `already_checked` carries instructions whose check was inserted
/// earlier by Optimization 2 during duplication; they are skipped here
/// (but still participate in Opt 1 suppression, since their checks exist).
/// Every instruction that ends up guarded is recorded in `protection` as
/// [`ProtClass::ValueChecked`].
pub fn insert_value_checks(
    func: &mut Function,
    fid: FuncId,
    profile: &ProfileDb,
    opt1: bool,
    already_checked: &mut HashSet<InstId>,
    protection: &mut ProtectionMap,
) -> ValueCheckStats {
    let mut stats = ValueCheckStats::default();

    // Amenable set: original instructions with a profile-derived check.
    let amenable: HashSet<InstId> = func
        .live_inst_ids()
        .filter(|&i| {
            func.inst(i).result.is_some()
                && profile.check_for(InstKey { func: fid, inst: i }).is_some()
        })
        .collect();
    let survivors = if opt1 {
        let s = opt1_survivors(func, &amenable);
        stats.opt1_suppressed = amenable.len() - s.len();
        s
    } else {
        amenable.clone()
    };

    // Deterministic order.
    let mut targets: Vec<InstId> = survivors.into_iter().collect();
    targets.sort();
    for i in targets {
        if already_checked.contains(&i) {
            continue;
        }
        let spec = profile
            .check_for(InstKey { func: fid, inst: i })
            .expect("amenable instruction has a spec");
        let added = insert_check_after(func, i, spec);
        if added == 0 {
            continue; // vacuous
        }
        stats.added_insts += added;
        match kind_of(&spec) {
            CheckKind::ValueSingle => stats.single += 1,
            CheckKind::ValuePair => stats.pair += 1,
            CheckKind::ValueRange => stats.range += 1,
            _ => unreachable!("value checks only"),
        }
        already_checked.insert(i);
        protection.record(fid, i, ProtClass::ValueChecked);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::verify::verify_function;
    use softft_ir::Module;
    use softft_profile::{ClassifyConfig, Profiler};
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_vm::outcome::{RunEnd, TrapKind};

    /// Builds a module whose loop body computes `i & 7` (range-stable) and
    /// adds it to an accumulator.
    fn masked_sum_module() -> Module {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(64));
            d.for_range(s, e, |d, i| {
                let mask = d.i64c(7);
                let v = d.and_(i, mask);
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        m
    }

    fn profile_of(m: &Module) -> ProfileDb {
        let main = m.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        Vm::new(m, VmConfig::default()).run(main, &[], &mut prof, None);
        ProfileDb::from_profiler(&prof, &ClassifyConfig::default())
    }

    #[test]
    fn checks_inserted_and_function_still_verifies() {
        let mut m = masked_sum_module();
        let profile = profile_of(&m.clone());
        let fid = m.function_by_name("main").unwrap();
        let f = m.function_mut(fid);
        let mut already = HashSet::new();
        let mut prot = ProtectionMap::new();
        let stats = insert_value_checks(f, fid, &profile, true, &mut already, &mut prot);
        assert!(stats.total_checks() > 0, "{stats:?}");
        assert_eq!(
            prot.count(ProtClass::ValueChecked),
            stats.total_checks(),
            "each inserted check records its site"
        );
        verify_function(f).unwrap();
        // Fault-free semantics unchanged.
        let main = m.function_by_name("main").unwrap();
        let r = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
        assert_eq!(r.return_bits(), Some(64 / 8 * 28)); // 8 runs of 0..=7
    }

    #[test]
    fn opt1_suppresses_upstream_checks() {
        // Chain: a = x*3 (amenable), b = a+1 (amenable). Opt 1 keeps only b.
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(32));
            d.for_range(s, e, |d, i| {
                let m7 = d.i64c(7);
                let x = d.and_(i, m7);
                let three = d.i64c(3);
                let a = d.mul(x, three);
                let one = d.i64c(1);
                let b = d.add(a, one);
                let acc_v = d.get(acc);
                let acc2 = d.add(acc_v, b);
                d.set(acc, acc2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let profile = profile_of(&m.clone());
        let fid = m.function_by_name("main").unwrap();

        let mut no_opt = m.clone();
        let mut already = HashSet::new();
        let mut prot = ProtectionMap::new();
        let s_no = insert_value_checks(
            no_opt.function_mut(fid),
            fid,
            &profile,
            false,
            &mut already,
            &mut prot,
        );
        let mut with_opt = m.clone();
        let mut already2 = HashSet::new();
        let mut prot2 = ProtectionMap::new();
        let s_yes = insert_value_checks(
            with_opt.function_mut(fid),
            fid,
            &profile,
            true,
            &mut already2,
            &mut prot2,
        );
        assert!(
            s_yes.total_checks() < s_no.total_checks(),
            "opt1 {s_yes:?} vs plain {s_no:?}"
        );
        assert!(s_yes.opt1_suppressed > 0);
        verify_function(with_opt.function(fid)).unwrap();
    }

    #[test]
    fn corrupting_checked_value_is_detected() {
        // Build a module with a range-checked computation, then inject a
        // high-bit flip right after the mask and confirm SwDetect.
        let mut m = masked_sum_module();
        let profile = profile_of(&m.clone());
        let fid = m.function_by_name("main").unwrap();
        let mut already = HashSet::new();
        let mut prot = ProtectionMap::new();
        insert_value_checks(
            m.function_mut(fid),
            fid,
            &profile,
            true,
            &mut already,
            &mut prot,
        );
        verify_function(m.function(fid)).unwrap();

        let mut detected = 0;
        let mut trials = 0;
        for at in (5..200).step_by(7) {
            for seed in 0..4 {
                trials += 1;
                let r = Vm::new(&m, VmConfig::default()).run(
                    fid,
                    &[],
                    &mut NoopObserver,
                    Some(softft_vm::FaultPlan::register(at, seed)),
                );
                if matches!(
                    r.end,
                    RunEnd::Trap {
                        kind: TrapKind::SwDetect(k),
                        ..
                    } if k.is_value_check()
                ) {
                    detected += 1;
                }
            }
        }
        assert!(detected > 0, "no value-check detections in {trials} trials");
    }

    #[test]
    fn vacuous_range_is_skipped() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I8), |d| {
            let a = d.iconst(Type::I8, 3);
            let b = d.add(a, a);
            d.ret(Some(b));
        });
        m.add_function(f);
        let fid = m.function_by_name("main").unwrap();
        // A range wider than i8's domain.
        let anchor = m.function(fid).live_inst_ids().next().expect("the add");
        let added = insert_check_after(
            m.function_mut(fid),
            anchor,
            CheckSpec::IntRange {
                lo: i64::MIN,
                hi: i64::MAX,
            },
        );
        assert_eq!(added, 0);
        verify_function(m.function(fid)).unwrap();
    }

    #[test]
    fn pair_check_passes_for_both_values() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let two = d.i64c(2);
            let v = d.srem(p, two); // 0 or 1 for non-negative p
            d.ret(Some(v));
        });
        m.add_function(f);
        let fid = m.function_by_name("main").unwrap();
        let anchor = m.function(fid).live_inst_ids().next().unwrap();
        insert_check_after(m.function_mut(fid), anchor, CheckSpec::Pair { a: 0, b: 1 });
        verify_function(m.function(fid)).unwrap();
        for arg in [4u64, 7u64] {
            let r = Vm::new(&m, VmConfig::default()).run(fid, &[arg], &mut NoopObserver, None);
            assert!(r.completed(), "arg {arg}: {:?}", r.end);
        }
    }
}
