//! Full-duplication baseline (SWIFT-style).
//!
//! The paper's comparator: every pure computation instruction is
//! duplicated into a shadow chain (loads and stores are *not* duplicated,
//! matching the paper's "maximum amount of duplication possible without
//! duplicating loads/stores"), and the shadows are compared against the
//! originals at stores (operand + address) and at conditional branches.
//! Measured there at 57% average runtime overhead with 1.4% residual
//! USDCs — selective duplication plus value checks beats it on both axes.

use crate::protection::{ProtClass, ProtectionMap};
use softft_ir::builder::InstBuilder;
use softft_ir::dom::DomTree;
use softft_ir::inst::{CheckKind, FloatCC, IntCC, Op};
use softft_ir::{FuncId, Function, InstId, Type, ValueId};
use std::collections::HashMap;

/// Counters from the full-duplication pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FullDupStats {
    /// Instructions cloned (including shadow phis).
    pub cloned: usize,
    /// Store-operand guards inserted.
    pub store_guards: usize,
    /// Branch-condition guards inserted.
    pub branch_guards: usize,
    /// Extra IR instructions added in total.
    pub added_insts: usize,
}

/// Applies SWIFT-style full duplication to `func`.
///
/// `protection` records every duplicated site — both the original
/// instruction and its shadow clone, since an injected fault can land in
/// either copy's result slot.
pub fn full_duplicate(
    func: &mut Function,
    fid: FuncId,
    protection: &mut ProtectionMap,
) -> FullDupStats {
    let mut stats = FullDupStats::default();
    let dom = DomTree::compute(func);
    let rpo: Vec<_> = dom.reverse_postorder().to_vec();

    let mut shadow: HashMap<ValueId, ValueId> = HashMap::new();
    let sh = |shadow: &HashMap<ValueId, ValueId>, v: ValueId| -> ValueId {
        shadow.get(&v).copied().unwrap_or(v)
    };

    // Pass 1: shadow phis for every live phi (pre-created so backedge
    // operands resolve).
    let mut phi_pairs: Vec<(InstId, InstId)> = Vec::new();
    for &b in &rpo {
        let phis: Vec<InstId> = func
            .block(b)
            .insts
            .iter()
            .copied()
            .take_while(|&i| func.inst(i).op.is_phi())
            .filter(|&i| !func.inst(i).dead)
            .collect();
        for p in phis {
            let r = func.inst(p).result.expect("phi result");
            let ty = func.value_type(r);
            let (sp, spv) = {
                let mut bld = InstBuilder::new(func, b);
                bld.empty_phi(ty, b)
            };
            shadow.insert(r, spv);
            phi_pairs.push((p, sp));
            protection.record(fid, p, ProtClass::Duplicated);
            protection.record(fid, sp, ProtClass::Duplicated);
            stats.cloned += 1;
            stats.added_insts += 1;
        }
    }

    // Pass 2: clone duplicable instructions in dominance (RPO) order.
    // Per-block snapshots are taken before cloning into that block, so
    // the iteration never visits the clones themselves.
    for &b in &rpo {
        let insts: Vec<InstId> = func.block(b).insts.clone();
        for i in insts {
            let data = func.inst(i);
            if data.dead || !data.op.is_duplicable() {
                continue;
            }
            let r = data.result.expect("duplicable op has a result");
            debug_assert!(!shadow.contains_key(&r), "instruction visited twice");
            let mut op = data.op.clone();
            op.for_each_operand_mut(|o| *o = sh(&shadow, *o));
            let ty = func.value_type(r);
            let clone = func.insert_inst_after(op, Some(ty), i);
            let cv = func.inst(clone).result.expect("clone result");
            shadow.insert(r, cv);
            protection.record(fid, i, ProtClass::Duplicated);
            protection.record(fid, clone, ProtClass::Duplicated);
            stats.cloned += 1;
            stats.added_insts += 1;
        }
    }

    // Pass 3: fill shadow phi operands.
    for (orig, dup) in phi_pairs {
        let incomings = match &func.inst(orig).op {
            Op::Phi { incomings } => incomings.clone(),
            _ => unreachable!("phi pair"),
        };
        let shadowed: Vec<_> = incomings
            .iter()
            .map(|(p, v)| (*p, sh(&shadow, *v)))
            .collect();
        if let Op::Phi { incomings } = &mut func.inst_mut(dup).op {
            *incomings = shadowed;
        }
    }

    // Pass 4: guards. Compare store value/address and branch conditions
    // against their shadows where they can diverge.
    let guard = |func: &mut Function, before: InstId, orig: ValueId, dup: ValueId| {
        let ty = func.value_type(orig);
        let cmp_op = if ty.is_float() {
            Op::Fcmp {
                pred: FloatCC::Eq,
                lhs: orig,
                rhs: dup,
            }
        } else {
            Op::Icmp {
                pred: IntCC::Eq,
                lhs: orig,
                rhs: dup,
            }
        };
        let cmp = func.insert_inst_before(cmp_op, Some(Type::I1), before);
        let cond = func.inst(cmp).result.expect("cmp result");
        func.insert_inst_before(
            Op::Check {
                cond,
                kind: CheckKind::StoreGuard,
            },
            None,
            before,
        );
    };

    for b in func.block_ids() {
        let insts: Vec<InstId> = func.block(b).insts.clone();
        for i in insts {
            if func.inst(i).dead {
                continue;
            }
            if let Op::Store { addr, value } = func.inst(i).op {
                for v in [value, addr] {
                    let s = sh(&shadow, v);
                    if s != v {
                        guard(func, i, v, s);
                        stats.store_guards += 1;
                        stats.added_insts += 2;
                    }
                }
            }
        }
        // Branch-condition guard.
        let cond = func.block(b).term.as_ref().and_then(|t| t.cond());
        if let Some(c) = cond {
            let s = sh(&shadow, c);
            if s != c {
                let cmp = func.insert_inst_at_end(
                    Op::Icmp {
                        pred: IntCC::Eq,
                        lhs: c,
                        rhs: s,
                    },
                    Some(Type::I1),
                    b,
                );
                let cv = func.inst(cmp).result.expect("cmp result");
                func.insert_inst_at_end(
                    Op::Check {
                        cond: cv,
                        kind: CheckKind::BranchGuard,
                    },
                    None,
                    b,
                );
                stats.branch_guards += 1;
                stats.added_insts += 2;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::verify::verify_function;
    use softft_ir::Module;
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_vm::outcome::{RunEnd, TrapKind};
    use softft_vm::FaultPlan;

    fn work_module() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("out", 256);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(20));
            d.for_range(s, e, |d, i| {
                let sq = d.mul(i, i);
                let a = d.get(acc);
                let a2 = d.add(a, sq);
                d.set(acc, a2);
                d.store_elem(b, i, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        m
    }

    #[test]
    fn full_duplication_preserves_semantics() {
        let m0 = work_module();
        let fid = m0.function_by_name("main").unwrap();
        let golden = Vm::new(&m0, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();

        let mut m = work_module();
        let mut prot = ProtectionMap::new();
        let stats = full_duplicate(m.function_mut(fid), fid, &mut prot);
        verify_function(m.function(fid)).unwrap();
        assert!(stats.cloned > 0);
        assert!(stats.store_guards > 0);
        assert!(stats.branch_guards > 0);
        // Originals and their clones are both recorded as duplicated.
        assert_eq!(prot.len(), 2 * stats.cloned);
        assert_eq!(prot.count(ProtClass::Duplicated), prot.len());
        let got = Vm::new(&m, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        assert_eq!(got, golden);
    }

    #[test]
    fn full_duplication_detects_most_compute_faults() {
        let mut m = work_module();
        let fid = m.function_by_name("main").unwrap();
        full_duplicate(m.function_mut(fid), fid, &mut ProtectionMap::new());
        let mut detected = 0;
        let mut trials = 0;
        for at in (5..500).step_by(9) {
            for seed in 0..3 {
                trials += 1;
                let r = Vm::new(&m, VmConfig::default()).run(
                    fid,
                    &[],
                    &mut NoopObserver,
                    Some(FaultPlan::register(at, seed)),
                );
                if matches!(
                    r.end,
                    RunEnd::Trap {
                        kind: TrapKind::SwDetect(CheckKind::StoreGuard | CheckKind::BranchGuard),
                        ..
                    }
                ) {
                    detected += 1;
                }
            }
        }
        assert!(
            detected > trials / 8,
            "only {detected}/{trials} full-dup detections"
        );
    }

    #[test]
    fn duplication_roughly_doubles_compute() {
        let mut m = work_module();
        let fid = m.function_by_name("main").unwrap();
        let before = m.function(fid).static_inst_count();
        let stats = full_duplicate(m.function_mut(fid), fid, &mut ProtectionMap::new());
        let after = m.function(fid).static_inst_count();
        assert_eq!(after, before + stats.added_insts);
        // Most instructions in this kernel are duplicable.
        assert!(stats.cloned * 3 > before, "{stats:?} vs {before}");
    }

    #[test]
    fn loads_are_not_duplicated() {
        let mut m = Module::new("m");
        let g = m.add_global("t", 64);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let i0 = d.i64c(0);
            let v = d.load_elem(Type::I64, b, i0);
            let w = d.add(v, v);
            d.ret(Some(w));
        });
        m.add_function(f);
        let fid = m.function_by_name("main").unwrap();
        let count_loads = |f: &Function| {
            f.live_inst_ids()
                .filter(|&i| matches!(f.inst(i).op, Op::Load { .. }))
                .count()
        };
        let before = count_loads(m.function(fid));
        full_duplicate(m.function_mut(fid), fid, &mut ProtectionMap::new());
        assert_eq!(count_loads(m.function(fid)), before);
        verify_function(m.function(fid)).unwrap();
    }
}
