//! Protection-class metadata exported by the transformation passes.
//!
//! The paper's selective scheme leaves most static instructions
//! unprotected on purpose; the coverage subsystem (PR: softft-coverage)
//! needs to know, per static instruction, *which* mechanism — if any —
//! guards its result so residual unacceptable SDCs can be attributed to
//! genuinely unprotected sites rather than to protection that failed.
//! The passes in [`crate::duplicate`] and [`crate::value_checks`] record
//! into a [`ProtectionMap`] as they transform; full duplication derives
//! its map from the duplicability predicate alone.

use serde::{Deserialize, Serialize};
use softft_ir::{FuncId, InstId};
use std::collections::HashMap;

/// How the result of a static instruction is protected.
///
/// Ordered by strength: duplication subsumes a value check on the same
/// site (the shadow chain re-computes the value; the check only tests
/// membership in the profiled set), so [`ProtectionMap::record`] keeps
/// the strongest class seen.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ProtClass {
    /// No mechanism guards this instruction's result (the paper's
    /// "everything else" partition).
    #[default]
    Unprotected,
    /// An expected-value check (single / pair / range) guards the result.
    ValueChecked,
    /// The producer chain is duplicated and compared.
    Duplicated,
}

impl ProtClass {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ProtClass::Unprotected => "unprotected",
            ProtClass::ValueChecked => "value-checked",
            ProtClass::Duplicated => "duplicated",
        }
    }
}

/// Per-site protection classes for one transformed module.
///
/// Keys are `(function, static instruction)` of the *original* module —
/// instruction ids are stable across the transformation (arenas are
/// append-only), so the map joins directly against the VM's injection
/// records, which name the defining instruction of the victim slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtectionMap {
    by_site: HashMap<(FuncId, InstId), ProtClass>,
}

impl ProtectionMap {
    /// An empty map (every site unprotected) — the `Original` technique.
    pub fn new() -> Self {
        ProtectionMap::default()
    }

    /// Records `class` for a site, keeping the strongest class when the
    /// site was already recorded (duplication wins over a value check).
    pub fn record(&mut self, func: FuncId, inst: InstId, class: ProtClass) {
        let slot = self.by_site.entry((func, inst)).or_default();
        if class > *slot {
            *slot = class;
        }
    }

    /// The protection class of a site; unrecorded sites are unprotected.
    pub fn class_of(&self, func: FuncId, inst: InstId) -> ProtClass {
        self.by_site.get(&(func, inst)).copied().unwrap_or_default()
    }

    /// Number of sites with a non-default class recorded.
    pub fn len(&self) -> usize {
        self.by_site.len()
    }

    /// True when no site carries protection.
    pub fn is_empty(&self) -> bool {
        self.by_site.is_empty()
    }

    /// Number of sites recorded with exactly `class`.
    pub fn count(&self, class: ProtClass) -> usize {
        self.by_site.values().filter(|&&c| c == class).count()
    }

    /// All recorded sites, unsorted.
    pub fn sites(&self) -> impl Iterator<Item = ((FuncId, InstId), ProtClass)> + '_ {
        self.by_site.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongest_class_wins() {
        let mut m = ProtectionMap::new();
        let (f, i) = (FuncId::new(0), InstId::new(4));
        assert_eq!(m.class_of(f, i), ProtClass::Unprotected);
        m.record(f, i, ProtClass::ValueChecked);
        assert_eq!(m.class_of(f, i), ProtClass::ValueChecked);
        m.record(f, i, ProtClass::Duplicated);
        assert_eq!(m.class_of(f, i), ProtClass::Duplicated);
        // A weaker class cannot downgrade.
        m.record(f, i, ProtClass::ValueChecked);
        assert_eq!(m.class_of(f, i), ProtClass::Duplicated);
        assert_eq!(m.len(), 1);
        assert_eq!(m.count(ProtClass::Duplicated), 1);
        assert_eq!(m.count(ProtClass::ValueChecked), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProtClass::Unprotected.label(), "unprotected");
        assert_eq!(ProtClass::ValueChecked.label(), "value-checked");
        assert_eq!(ProtClass::Duplicated.label(), "duplicated");
    }
}
