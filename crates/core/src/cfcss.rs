//! Control-flow signature checking (CFCSS-style extension).
//!
//! The paper's scheme covers data faults — including faults that change
//! the *direction* of a data-dependent branch — but explicitly not faults
//! that corrupt a branch *target*, deferring those to "a previously
//! proposed signature-based low-cost solution [that] can be used in
//! conjunction with our proposed approach" (Section IV-C). This module
//! implements that companion: every basic block is assigned a unique
//! signature; each block stores its signature to a reserved memory word
//! before transferring control, and verifies on entry that the stored
//! signature belongs to one of its CFG predecessors. A branch that lands
//! on a block it has no edge to leaves a foreign signature behind and the
//! entry check fires with [`CheckKind::CfcSignature`].
//!
//! The classic CFCSS formulation keeps the running signature in a
//! dedicated register updated by XOR differences; our IR has no reserved
//! registers, so the signature lives in a module global — same detection
//! power for single-corruption faults, at one load + one store per block.

use softft_ir::inst::{CheckKind, IntCC, Op};
use softft_ir::{BlockId, FuncId, Module, Type};

/// Counters from signature insertion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CfcStats {
    /// Blocks instrumented (signature stores).
    pub blocks_signed: usize,
    /// Entry checks inserted.
    pub checks: usize,
    /// Extra IR instructions added.
    pub added_insts: usize,
}

/// Unique signature of a block: never zero, distinct across functions by
/// construction (functions are limited to 2²⁰ blocks, far beyond any
/// realistic kernel).
fn signature(func: FuncId, block: BlockId) -> i64 {
    const BLOCK_SPACE: i64 = 1 << 20;
    assert!((block.index() as i64) < BLOCK_SPACE, "function too large");
    (func.index() as i64) * BLOCK_SPACE + block.index() as i64 + 1
}

/// Instruments every function of `module` with control-flow signatures.
///
/// Adds one 8-byte global (`__cfc_sig`) holding the last-executed block's
/// signature. Each block appends `store sig(B)` before its terminator;
/// each block with predecessors prepends (after phis) a check that the
/// loaded signature equals one of its predecessors' signatures. Entry
/// blocks are seeded by storing their own signature at function start,
/// so signature state stays consistent across calls.
pub fn insert_cfc_signatures(module: &mut Module) -> CfcStats {
    let mut stats = CfcStats::default();
    let sig_global = module.add_global("__cfc_sig", 8);
    let sig_addr = module.global(sig_global).addr as i64;

    for fidx in 0..module.functions().len() {
        let fid = FuncId::new(fidx);
        let func = module.function_mut(fid);
        let preds = func.compute_preds();
        let blocks: Vec<BlockId> = func.block_ids().collect();

        for &b in &blocks {
            // Entry seeding / predecessor check, inserted after phis in
            // reverse order (each insert prepends at the same position).
            let addr = func.iconst(Type::I64, sig_addr);
            if b == func.entry() {
                let own = func.iconst(Type::I64, signature(fid, b));
                let store = func.insert_inst_after_phis(Op::Store { addr, value: own }, None, b);
                let _ = store;
                stats.added_insts += 1;
            } else if !preds[b.index()].is_empty() {
                // load sig; or-chain of (sig == s_p); check.
                let load = func.insert_inst_after_phis(Op::Load { addr }, Some(Type::I64), b);
                let loaded = func.inst(load).result.expect("load result");
                let mut cond = None;
                let mut anchor = load;
                for &p in &preds[b.index()] {
                    let expect = func.iconst(Type::I64, signature(fid, p));
                    let cmp = func.insert_inst_after(
                        Op::Icmp {
                            pred: IntCC::Eq,
                            lhs: loaded,
                            rhs: expect,
                        },
                        Some(Type::I1),
                        anchor,
                    );
                    let cv = func.inst(cmp).result.expect("cmp result");
                    anchor = cmp;
                    stats.added_insts += 1;
                    cond = Some(match cond {
                        None => cv,
                        Some(prev) => {
                            let or = func.insert_inst_after(
                                Op::Bin {
                                    op: softft_ir::BinOp::Or,
                                    lhs: prev,
                                    rhs: cv,
                                },
                                Some(Type::I1),
                                anchor,
                            );
                            anchor = or;
                            stats.added_insts += 1;
                            func.inst(or).result.expect("or result")
                        }
                    });
                }
                if let Some(cond) = cond {
                    func.insert_inst_after(
                        Op::Check {
                            cond,
                            kind: CheckKind::CfcSignature,
                        },
                        None,
                        anchor,
                    );
                    stats.checks += 1;
                    stats.added_insts += 2; // the load + the check
                }
            }
            // Signature store at block end (before the terminator).
            let addr2 = func.iconst(Type::I64, sig_addr);
            let own = func.iconst(Type::I64, signature(fid, b));
            func.insert_inst_at_end(
                Op::Store {
                    addr: addr2,
                    value: own,
                },
                None,
                b,
            );
            stats.blocks_signed += 1;
            stats.added_insts += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::verify::verify_module;
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_vm::{FaultPlan, RunEnd, TrapKind};

    fn looping_module() -> Module {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(64));
            d.for_range(s, e, |d, i| {
                let three = d.i64c(3);
                let v = d.mul(i, three);
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
                let zero = d.i64c(0);
                let c = d.icmp(softft_ir::IntCC::Sgt, a2, zero);
                d.if_(c, |d| {
                    let a = d.get(acc);
                    let one = d.i64c(1);
                    let a2 = d.add(a, one);
                    d.set(acc, a2);
                });
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        m
    }

    #[test]
    fn signatures_preserve_semantics() {
        let m0 = looping_module();
        let fid = m0.function_by_name("main").unwrap();
        let golden = Vm::new(&m0, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        let mut m = looping_module();
        let stats = insert_cfc_signatures(&mut m);
        verify_module(&m).unwrap();
        assert!(stats.checks > 0);
        assert!(stats.blocks_signed > 3);
        let got = Vm::new(&m, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        assert_eq!(got, golden);
    }

    #[test]
    fn branch_target_faults_detected_with_signatures() {
        let mut plain = looping_module();
        let fid = plain.function_by_name("main").unwrap();
        let mut signed = looping_module();
        insert_cfc_signatures(&mut signed);
        let _ = &mut plain;

        let (mut detected, mut silent_plain, mut trials) = (0, 0, 0);
        for at in (5..500).step_by(7) {
            for seed in 0..2 {
                trials += 1;
                let plan = Some(FaultPlan::branch_target(at, seed));
                let r_plain =
                    Vm::new(&plain, VmConfig::default()).run(fid, &[], &mut NoopObserver, plan);
                let r_signed =
                    Vm::new(&signed, VmConfig::default()).run(fid, &[], &mut NoopObserver, plan);
                if r_plain.completed() {
                    silent_plain += 1;
                }
                if matches!(
                    r_signed.end,
                    RunEnd::Trap {
                        kind: TrapKind::SwDetect(CheckKind::CfcSignature),
                        ..
                    }
                ) {
                    detected += 1;
                }
            }
        }
        assert!(
            silent_plain > 0,
            "unsigned binary never completed silently under branch faults"
        );
        assert!(
            detected > trials / 3,
            "signatures detected only {detected}/{trials} branch faults"
        );
    }

    #[test]
    fn register_faults_unaffected_by_signatures() {
        // Signature checks must not misfire on ordinary data faults in a
        // fault-free control flow (legal edges always match).
        let mut m = looping_module();
        insert_cfc_signatures(&mut m);
        let fid = m.function_by_name("main").unwrap();
        for seed in 0..40u64 {
            let r = Vm::new(&m, VmConfig::default()).run(
                fid,
                &[],
                &mut NoopObserver,
                Some(FaultPlan::register(seed * 17 % 400, seed)),
            );
            assert!(
                !matches!(
                    r.end,
                    RunEnd::Trap {
                        kind: TrapKind::SwDetect(CheckKind::CfcSignature),
                        ..
                    }
                ) || r.injection.is_some(),
                "spurious signature firing"
            );
        }
    }

    #[test]
    fn signatures_are_unique_per_block() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for f in 0..4 {
            for b in 0..16 {
                assert!(
                    seen.insert(signature(FuncId::new(f), BlockId::new(b))),
                    "collision at f{f} b{b}"
                );
            }
        }
    }
}
