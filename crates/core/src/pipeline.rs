//! The end-to-end transformation pipeline and its static statistics.

use crate::duplicate::{duplicate_state_vars, DupStats};
use crate::fulldup::{full_duplicate, FullDupStats};
use crate::protection::ProtectionMap;
use crate::value_checks::{insert_value_checks, ValueCheckStats};
use serde::{Deserialize, Serialize};
use softft_ir::{FuncId, Module};
use softft_profile::ProfileDb;
use std::collections::HashSet;
use std::fmt;

/// The protection technique applied to a module (the paper's evaluated
/// configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Unmodified application (baseline for fault coverage).
    Original,
    /// State-variable producer-chain duplication only.
    DupOnly,
    /// Duplication plus expected-value checks with both optimizations —
    /// the paper's headline configuration ("Dup + val chks").
    DupVal,
    /// SWIFT-style full duplication (the 57%-overhead comparator).
    FullDup,
}

impl Technique {
    /// All techniques, in the paper's presentation order.
    pub const ALL: [Technique; 4] = [
        Technique::Original,
        Technique::DupOnly,
        Technique::DupVal,
        Technique::FullDup,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Original => "Original",
            Technique::DupOnly => "Dup only",
            Technique::DupVal => "Dup + val chks",
            Technique::FullDup => "Full duplication",
        }
    }

    /// Stable lower-case file/manifest slug (round-trips through
    /// [`Technique::from_slug`]).
    pub fn slug(self) -> &'static str {
        match self {
            Technique::Original => "original",
            Technique::DupOnly => "dup-only",
            Technique::DupVal => "dup-val",
            Technique::FullDup => "full-dup",
        }
    }

    /// Parses a [`Technique::slug`].
    pub fn from_slug(s: &str) -> Option<Technique> {
        Technique::ALL.into_iter().find(|t| t.slug() == s)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Pipeline tunables.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TransformConfig {
    /// Optimization 1 (Fig. 8): only the deepest check in a chain of
    /// amenable instructions.
    pub opt1: bool,
    /// Optimization 2 (Fig. 9): terminate duplication at check-amenable
    /// instructions.
    pub opt2: bool,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            opt1: true,
            opt2: true,
        }
    }
}

/// Static transformation statistics (the quantities of Fig. 10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticStats {
    /// Live IR instructions before transformation (Fig. 10 denominator).
    pub insts_before: usize,
    /// Live IR instructions after transformation.
    pub insts_after: usize,
    /// State variables (phis in loop headers).
    pub state_vars: usize,
    /// Instructions cloned into shadow chains.
    pub duplicated: usize,
    /// Duplication-mismatch comparison sites.
    pub dup_checks: usize,
    /// Single-value checks inserted.
    pub checks_single: usize,
    /// Two-value checks inserted.
    pub checks_pair: usize,
    /// Range checks inserted.
    pub checks_range: usize,
    /// Amenable instructions suppressed by Optimization 1.
    pub opt1_suppressed: usize,
    /// Duplication chains terminated by Optimization 2.
    pub opt2_terminations: usize,
    /// Store guards (full duplication only).
    pub store_guards: usize,
    /// Branch guards (full duplication only).
    pub branch_guards: usize,
}

impl StaticStats {
    /// Total expected-value check sites.
    pub fn value_checks(&self) -> usize {
        self.checks_single + self.checks_pair + self.checks_range
    }

    /// Fraction of original static instructions that are state variables.
    pub fn state_var_frac(&self) -> f64 {
        self.state_vars as f64 / self.insts_before.max(1) as f64
    }

    /// Fraction of original static instructions duplicated (Fig. 10).
    pub fn duplicated_frac(&self) -> f64 {
        self.duplicated as f64 / self.insts_before.max(1) as f64
    }

    /// Fraction of original static instructions carrying a value check
    /// (Fig. 10).
    pub fn value_check_frac(&self) -> f64 {
        self.value_checks() as f64 / self.insts_before.max(1) as f64
    }

    fn absorb_dup(&mut self, d: DupStats) {
        self.state_vars += d.state_vars;
        self.duplicated += d.cloned;
        self.dup_checks += d.dup_checks;
        self.opt2_terminations += d.opt2_terminations;
    }

    fn absorb_checks(&mut self, c: ValueCheckStats) {
        self.checks_single += c.single;
        self.checks_pair += c.pair;
        self.checks_range += c.range;
        self.opt1_suppressed += c.opt1_suppressed;
    }

    fn absorb_fulldup(&mut self, f: FullDupStats) {
        self.duplicated += f.cloned;
        self.store_guards += f.store_guards;
        self.branch_guards += f.branch_guards;
    }
}

/// Applies `technique` to a copy of `module`, returning the transformed
/// module and its static statistics.
///
/// Instruction ids of original instructions are stable across the
/// transformation (arenas are append-only), so `profile` keys remain
/// valid — mirroring how the paper's LLVM passes consume value-profiling
/// metadata produced on the unmodified bitcode.
pub fn transform(
    module: &Module,
    profile: &ProfileDb,
    technique: Technique,
    config: &TransformConfig,
) -> (Module, StaticStats) {
    let (out, stats, _) = transform_protected(module, profile, technique, config);
    (out, stats)
}

/// Like [`transform`], but additionally returns the [`ProtectionMap`]
/// describing which static instructions of the *transformed* module each
/// pass guarded — the join key for per-fault-site coverage attribution.
/// Both copies of a duplicated computation are recorded (a fault can
/// land in the original's or the shadow clone's result slot). For
/// `Original` the map is empty.
pub fn transform_protected(
    module: &Module,
    profile: &ProfileDb,
    technique: Technique,
    config: &TransformConfig,
) -> (Module, StaticStats, ProtectionMap) {
    let mut out = module.clone();
    let mut stats = StaticStats {
        insts_before: module.static_inst_count(),
        ..StaticStats::default()
    };
    let mut protection = ProtectionMap::new();
    // State variables are a property of the program, not the technique;
    // report them for every configuration (Fig. 10 plots them even for
    // value-check-only analyses).
    if technique == Technique::Original || technique == Technique::FullDup {
        for f in module.functions() {
            stats.state_vars += crate::state_vars::find_state_vars(f).len();
        }
    }
    match technique {
        Technique::Original => {}
        Technique::DupOnly => {
            for idx in 0..out.functions().len() {
                let fid = FuncId::new(idx);
                let mut already = HashSet::new();
                let f = out.function_mut(fid);
                let d = duplicate_state_vars(f, fid, profile, false, &mut already, &mut protection);
                stats.absorb_dup(d);
            }
        }
        Technique::DupVal => {
            for idx in 0..out.functions().len() {
                let fid = FuncId::new(idx);
                let mut already = HashSet::new();
                let f = out.function_mut(fid);
                let d = duplicate_state_vars(
                    f,
                    fid,
                    profile,
                    config.opt2,
                    &mut already,
                    &mut protection,
                );
                stats.absorb_dup(d);
                // Opt-2 checks count toward the value-check census.
                let f = out.function_mut(fid);
                let c = insert_value_checks(
                    f,
                    fid,
                    profile,
                    config.opt1,
                    &mut already,
                    &mut protection,
                );
                stats.absorb_checks(c);
                // Checks inserted during duplication (Opt 2) are value
                // checks too; recount them from the instruction stream to
                // keep the census exact.
            }
            recount_value_checks(&out, &mut stats);
        }
        Technique::FullDup => {
            for idx in 0..out.functions().len() {
                let fid = FuncId::new(idx);
                let f = out.function_mut(fid);
                let d = full_duplicate(f, fid, &mut protection);
                stats.absorb_fulldup(d);
            }
        }
    }
    stats.insts_after = out.static_inst_count();
    (out, stats, protection)
}

/// Recounts value-check sites from the instruction stream (exact census
/// across the duplication and value-check passes).
fn recount_value_checks(module: &Module, stats: &mut StaticStats) {
    use softft_ir::inst::{CheckKind, Op};
    let (mut single, mut pair, mut range) = (0, 0, 0);
    for f in module.functions() {
        for i in f.live_inst_ids() {
            if let Op::Check { kind, .. } = f.inst(i).op {
                match kind {
                    CheckKind::ValueSingle => single += 1,
                    CheckKind::ValuePair => pair += 1,
                    CheckKind::ValueRange => range += 1,
                    _ => {}
                }
            }
        }
    }
    stats.checks_single = single;
    stats.checks_pair = pair;
    stats.checks_range = range;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::ProtClass;

    #[test]
    fn technique_slugs_round_trip_and_are_unique() {
        let mut slugs: Vec<&str> = Technique::ALL.iter().map(|t| t.slug()).collect();
        for t in Technique::ALL {
            assert_eq!(Technique::from_slug(t.slug()), Some(t));
        }
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Technique::ALL.len(), "duplicate slugs");
        assert_eq!(Technique::from_slug("bogus"), None);
    }
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::verify::verify_module;
    use softft_ir::Type;
    use softft_profile::{ClassifyConfig, Profiler};
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_vm::timing::{CoreConfig, TimingModel};

    fn bench_module() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("out", 1024);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let crc = d.declare_var(Type::I64);
            let seed = d.i64c(0xACE1);
            d.set(crc, seed);
            let (s, e) = (d.i64c(0), d.i64c(100));
            d.for_range(s, e, |d, i| {
                let m15 = d.i64c(15);
                let v = d.and_(i, m15);
                let c = d.get(crc);
                let one = d.i64c(1);
                let sh = d.shl(c, one);
                let x = d.xor(sh, v);
                let mask = d.i64c(0xFFFF);
                let nc = d.and_(x, mask);
                d.set(crc, nc);
                d.store_elem(b, i, nc);
            });
            let c = d.get(crc);
            d.ret(Some(c));
        });
        m.add_function(f);
        m
    }

    fn profile_of(m: &Module) -> ProfileDb {
        let fid = m.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        Vm::new(m, VmConfig::default()).run(fid, &[], &mut prof, None);
        ProfileDb::from_profiler(&prof, &ClassifyConfig::default())
    }

    #[test]
    fn all_techniques_verify_and_preserve_semantics() {
        let m = bench_module();
        let profile = profile_of(&m);
        let fid = m.function_by_name("main").unwrap();
        let golden = Vm::new(&m, VmConfig::default())
            .run(fid, &[], &mut NoopObserver, None)
            .return_bits();
        for t in Technique::ALL {
            let (tm, stats) = transform(&m, &profile, t, &TransformConfig::default());
            verify_module(&tm).unwrap();
            let got = Vm::new(&tm, VmConfig::default())
                .run(fid, &[], &mut NoopObserver, None)
                .return_bits();
            assert_eq!(got, golden, "{t} changed semantics ({stats:?})");
        }
    }

    #[test]
    fn static_stats_track_technique() {
        let m = bench_module();
        let profile = profile_of(&m);
        let cfg = TransformConfig::default();

        let (_, orig) = transform(&m, &profile, Technique::Original, &cfg);
        assert_eq!(orig.insts_before, orig.insts_after);
        assert!(orig.state_vars >= 2);

        let (_, dup) = transform(&m, &profile, Technique::DupOnly, &cfg);
        assert!(dup.duplicated > 0);
        assert!(dup.dup_checks > 0);
        assert_eq!(dup.value_checks(), 0);
        assert!(dup.insts_after > dup.insts_before);

        let (_, dv) = transform(&m, &profile, Technique::DupVal, &cfg);
        assert!(dv.value_checks() > 0, "{dv:?}");
        assert!(dv.insts_after > dup.insts_after);

        let (_, full) = transform(&m, &profile, Technique::FullDup, &cfg);
        assert!(full.duplicated > dup.duplicated);
        assert!(full.store_guards > 0);
        assert!(full.branch_guards > 0);
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // Timing overhead must order: Original < DupOnly <= DupVal < FullDup
        // (the shape of Fig. 12).
        let m = bench_module();
        let profile = profile_of(&m);
        let fid = m.function_by_name("main").unwrap();
        let cfg = TransformConfig::default();
        let cycles = |module: &Module| {
            let mut t = TimingModel::new(CoreConfig::default());
            let r = Vm::new(module, VmConfig::default()).run(fid, &[], &mut t, None);
            assert!(r.completed());
            t.cycles()
        };
        let base = cycles(&m);
        let (dup, _) = transform(&m, &profile, Technique::DupOnly, &cfg);
        let (dv, _) = transform(&m, &profile, Technique::DupVal, &cfg);
        let (full, _) = transform(&m, &profile, Technique::FullDup, &cfg);
        let (c_dup, c_dv, c_full) = (cycles(&dup), cycles(&dv), cycles(&full));
        assert!(c_dup >= base);
        assert!(c_full > c_dup, "full {c_full} !> dup {c_dup}");
        // In this micro-kernel every amenable instruction sits in the one
        // hot loop, so value checks weigh more than in a real benchmark;
        // require dup+val to stay in full duplication's neighbourhood
        // rather than strictly below it (the cross-benchmark mean
        // ordering is asserted by the campaign-level tests instead).
        assert!(
            (c_dv as f64) < c_full as f64 * 1.3,
            "dup+val {c_dv} far above full {c_full}"
        );
        let ov = |c: u64| (c as f64 - base as f64) / base as f64;
        // Selective duplication should be dramatically cheaper than full.
        assert!(
            ov(c_dup) < ov(c_full) * 0.8,
            "dup {} vs full {}",
            ov(c_dup),
            ov(c_full)
        );
    }

    #[test]
    fn protection_map_tracks_technique() {
        let m = bench_module();
        let profile = profile_of(&m);
        let cfg = TransformConfig::default();

        let (_, _, p_orig) = transform_protected(&m, &profile, Technique::Original, &cfg);
        assert!(p_orig.is_empty(), "Original protects nothing");

        let (_, _, p_dup) = transform_protected(&m, &profile, Technique::DupOnly, &cfg);
        assert!(p_dup.count(ProtClass::Duplicated) > 0);
        assert_eq!(
            p_dup.count(ProtClass::ValueChecked),
            0,
            "Dup-only inserts no value checks"
        );

        let (_, _, p_dv) = transform_protected(&m, &profile, Technique::DupVal, &cfg);
        assert!(p_dv.count(ProtClass::ValueChecked) > 0, "{p_dv:?}");
        assert!(p_dv.count(ProtClass::Duplicated) > 0);

        let (full_m, _, p_full) = transform_protected(&m, &profile, Technique::FullDup, &cfg);
        assert!(
            p_full.count(ProtClass::Duplicated) > p_dup.count(ProtClass::Duplicated),
            "full duplication covers strictly more sites"
        );
        // Sites name instructions of the transformed module — clones
        // included, so some ids lie beyond the original stream.
        let fid = m.function_by_name("main").unwrap();
        let orig_count = m.function(fid).static_inst_count();
        let full_count = full_m.function(fid).static_inst_count();
        let mut saw_clone = false;
        for ((f, i), _) in p_full.sites() {
            assert_eq!(f, fid);
            assert!(
                i.index() < full_count,
                "site {i:?} beyond transformed stream"
            );
            saw_clone |= i.index() >= orig_count;
        }
        assert!(saw_clone, "shadow clones must be recorded as protected");
    }

    #[test]
    fn technique_labels_are_stable() {
        assert_eq!(Technique::DupVal.label(), "Dup + val chks");
        assert_eq!(Technique::ALL.len(), 4);
        assert_eq!(format!("{}", Technique::FullDup), "Full duplication");
    }

    #[test]
    fn fig10_fractions_are_consistent() {
        let m = bench_module();
        let profile = profile_of(&m);
        let (_, s) = transform(&m, &profile, Technique::DupVal, &TransformConfig::default());
        assert!(s.state_var_frac() > 0.0 && s.state_var_frac() < 1.0);
        assert!(s.duplicated_frac() > 0.0);
        assert!(s.value_check_frac() >= 0.0);
        assert!(
            s.insts_after >= s.insts_before + s.duplicated,
            "clones must appear in the instruction count"
        );
    }
}
