//! `h264enc` / `h264dec`: intra-only 4×4 block video codec kernels (the
//! SoftH264 format of [`crate::host::h264_ref`]).
//!
//! The reconstructed-frame buffer feeds DC prediction of every later
//! block — a memory-carried state chain on top of the usual loop-carried
//! cursors — so corruption early in a frame visibly smears across it,
//! the video analogue of the paper's Fig. 1.

use crate::common::{
    build_kernel_scratch, clamp, input_base, load_u8, output_data_base, param, set_output_len,
    store_u8,
};
use crate::fidelity::psnr_u8;
use crate::host::h264_ref::{self, QSTEP};
use crate::inputs::gray_image;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type, ValueId};

const MAX_W: u64 = 32;
const MAX_H: u64 = 32;
const MAX_FRAMES: u64 = 2;
const MAX_STREAM: u64 = MAX_W * MAX_H * MAX_FRAMES * 3 + 64;

/// Emits the shared DC prediction: mean of available reconstructed
/// neighbours (top row / left column), 128 when neither exists.
fn emit_dc_predict(
    d: &mut FunctionDsl,
    recon: ValueId,
    w: ValueId,
    bx: ValueId,
    by: ValueId,
) -> ValueId {
    let sum = d.declare_var(Type::I64);
    let count = d.declare_var(Type::I64);
    let z = d.i64c(0);
    d.set(sum, z);
    d.set(count, z);
    let has_top = d.icmp(IntCC::Sgt, by, z);
    d.if_(has_top, |d| {
        let z2 = d.i64c(0);
        let four = d.i64c(4);
        d.for_range(z2, four, |d, x| {
            let one = d.i64c(1);
            let ym1 = d.sub(by, one);
            let row = d.mul(ym1, w);
            let col = d.add(bx, x);
            let pi = d.add(row, col);
            let v = load_u8(d, recon, pi);
            let s = d.get(sum);
            let s2 = d.add(s, v);
            d.set(sum, s2);
            let c = d.get(count);
            let c2 = d.add(c, one);
            d.set(count, c2);
        });
    });
    let has_left = d.icmp(IntCC::Sgt, bx, z);
    d.if_(has_left, |d| {
        let z2 = d.i64c(0);
        let four = d.i64c(4);
        d.for_range(z2, four, |d, y| {
            let one = d.i64c(1);
            let yy = d.add(by, y);
            let row = d.mul(yy, w);
            let xm1 = d.sub(bx, one);
            let pi = d.add(row, xm1);
            let v = load_u8(d, recon, pi);
            let s = d.get(sum);
            let s2 = d.add(s, v);
            d.set(sum, s2);
            let c = d.get(count);
            let c2 = d.add(c, one);
            d.set(count, c2);
        });
    });
    let c = d.get(count);
    let none = d.icmp(IntCC::Eq, c, z);
    let s = d.get(sum);
    let two = d.i64c(2);
    let halfc = d.sdiv(c, two);
    let num = d.add(s, halfc);
    let one = d.i64c(1);
    let denom = crate::common::imax(d, c, one);
    let mean = d.sdiv(num, denom);
    let c128 = d.i64c(128);
    d.select(none, c128, mean)
}

/// Emits one WHT butterfly over four loaded values, returning
/// `(a+b+c+d, a+b-c-d, a-b-c+d, a-b+c-d)`.
fn emit_wht_butterfly(
    d: &mut FunctionDsl,
    a: ValueId,
    b: ValueId,
    c: ValueId,
    e: ValueId,
) -> (ValueId, ValueId, ValueId, ValueId) {
    let ab = d.add(a, b);
    let ce = d.add(c, e);
    let amb = d.sub(a, b);
    let cme = d.sub(c, e);
    let t0 = d.add(ab, ce);
    let t1 = d.sub(ab, ce);
    let t2 = d.sub(amb, cme);
    let t3 = d.add(amb, cme);
    (t0, t1, t2, t3)
}

/// Emits the forward 4×4 WHT on `buf` (16 i64 words, via `tmp`) —
/// mirrors [`h264_ref::fwd4x4`] exactly.
fn emit_fwd4x4(d: &mut FunctionDsl, buf: ValueId, tmp: ValueId) {
    emit_wht_passes(d, buf, tmp, false);
}

/// Emits the inverse 4×4 WHT with the final `(v + 8) >> 4` — mirrors
/// [`h264_ref::inv4x4`] exactly.
fn emit_inv4x4(d: &mut FunctionDsl, buf: ValueId, tmp: ValueId) {
    emit_wht_passes(d, buf, tmp, true);
}

fn emit_wht_passes(d: &mut FunctionDsl, buf: ValueId, tmp: ValueId, normalize: bool) {
    let z = d.i64c(0);
    let four = d.i64c(4);
    // Rows into tmp.
    d.for_range(z, four, |d, r| {
        let four2 = d.i64c(4);
        let base = d.mul(r, four2);
        let one = d.i64c(1);
        let two = d.i64c(2);
        let three = d.i64c(3);
        let i0 = base;
        let i1 = d.add(base, one);
        let i2 = d.add(base, two);
        let i3 = d.add(base, three);
        let a = d.load_elem(Type::I64, buf, i0);
        let b = d.load_elem(Type::I64, buf, i1);
        let c = d.load_elem(Type::I64, buf, i2);
        let e = d.load_elem(Type::I64, buf, i3);
        let (t0, t1, t2, t3) = emit_wht_butterfly(d, a, b, c, e);
        d.store_elem(tmp, i0, t0);
        d.store_elem(tmp, i1, t1);
        d.store_elem(tmp, i2, t2);
        d.store_elem(tmp, i3, t3);
    });
    // Columns back into buf.
    d.for_range(z, four, |d, cidx| {
        let four2 = d.i64c(4);
        let eight = d.i64c(8);
        let twelve = d.i64c(12);
        let i0 = cidx;
        let i1 = d.add(cidx, four2);
        let i2 = d.add(cidx, eight);
        let i3 = d.add(cidx, twelve);
        let a = d.load_elem(Type::I64, tmp, i0);
        let b = d.load_elem(Type::I64, tmp, i1);
        let c = d.load_elem(Type::I64, tmp, i2);
        let e = d.load_elem(Type::I64, tmp, i3);
        let (t0, t1, t2, t3) = emit_wht_butterfly(d, a, b, c, e);
        for (idx, t) in [(i0, t0), (i1, t1), (i2, t2), (i3, t3)] {
            let v = if normalize {
                let c8 = d.i64c(8);
                let fourb = d.i64c(4);
                let rounded = d.add(t, c8);
                d.ashr(rounded, fourb)
            } else {
                t
            };
            d.store_elem(buf, idx, v);
        }
    });
}

/// Dequantize `q` in place, inverse-transform, add `pred`, clamp, and
/// write the 4×4 block into `recon` at `(bx, by)`.
#[allow(clippy::too_many_arguments)]
fn emit_reconstruct(
    d: &mut FunctionDsl,
    qbuf: ValueId,
    tmp: ValueId,
    recon: ValueId,
    w: ValueId,
    bx: ValueId,
    by: ValueId,
    pred: ValueId,
) {
    let z = d.i64c(0);
    let sixteen = d.i64c(16);
    let qstep = d.i64c(QSTEP as i64);
    d.for_range(z, sixteen, |d, i| {
        let q = d.load_elem(Type::I64, qbuf, i);
        let deq = d.mul(q, qstep);
        d.store_elem(qbuf, i, deq);
    });
    emit_inv4x4(d, qbuf, tmp);
    let four = d.i64c(4);
    d.for_range(z, four, |d, y| {
        let four2 = d.i64c(4);
        let z2 = d.i64c(0);
        d.for_range(z2, four2, |d, x| {
            let four3 = d.i64c(4);
            let bi = {
                let r = d.mul(y, four3);
                d.add(r, x)
            };
            let rv = d.load_elem(Type::I64, qbuf, bi);
            let vp = d.add(rv, pred);
            let v = clamp(d, vp, 0, 255);
            let yy = d.add(by, y);
            let xx = d.add(bx, x);
            let row = d.mul(yy, w);
            let pi = d.add(row, xx);
            store_u8(d, recon, pi, v);
        });
    });
}

/// The `h264enc` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct H264Enc;

impl Workload for H264Enc {
    fn name(&self) -> &'static str {
        "h264enc"
    }

    fn category(&self) -> Category {
        Category::Video
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // Scratch: recon frame | block i64[16] | tmp i64[16]
        let recon_sz = MAX_W * MAX_H;
        build_kernel_scratch(
            "h264enc",
            MAX_W * MAX_H * MAX_FRAMES,
            MAX_STREAM,
            recon_sz + 32 * 8,
            &[],
            |d, io, _| {
                let recon = d.i64c(io.scratch as i64);
                let block = d.i64c((io.scratch + recon_sz) as i64);
                let tmp = d.i64c((io.scratch + recon_sz + 16 * 8) as i64);
                let w = param(d, io, 0);
                let h = param(d, io, 1);
                let nf = param(d, io, 2);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let _one = d.i64c(1);
                let eight = d.i64c(8);
                let mask = d.i64c(0xFF);

                // Header: w, h, frames (u16 LE each).
                let cursor = d.declare_var(Type::I64);
                let pairs = [(w, 0i64), (h, 2), (nf, 4)];
                for (v, off) in pairs {
                    let lo = d.and_(v, mask);
                    let hi = d.lshr(v, eight);
                    let o0 = d.i64c(off);
                    let o1 = d.i64c(off + 1);
                    store_u8(d, out, o0, lo);
                    store_u8(d, out, o1, hi);
                }
                let six = d.i64c(6);
                d.set(cursor, six);

                let qstep = d.i64c(QSTEP as i64);
                d.for_range(z, nf, |d, f| {
                    // Zero the recon frame.
                    let z2 = d.i64c(0);
                    let npix = d.mul(w, h);
                    d.for_range(z2, npix, |d, i| {
                        let zz = d.i64c(0);
                        store_u8(d, recon, i, zz);
                    });
                    let frame_off = d.mul(f, npix);
                    let four = d.i64c(4);
                    let bh = d.sdiv(h, four);
                    let bw = d.sdiv(w, four);
                    d.for_range(z2, bh, |d, byi| {
                        let z3 = d.i64c(0);
                        d.for_range(z3, bw, |d, bxi| {
                            let four2 = d.i64c(4);
                            let by = d.mul(byi, four2);
                            let bx = d.mul(bxi, four2);
                            let pred = emit_dc_predict(d, recon, w, bx, by);
                            // Residual into block.
                            let z4 = d.i64c(0);
                            d.for_range(z4, four2, |d, y| {
                                let four3 = d.i64c(4);
                                let z5 = d.i64c(0);
                                d.for_range(z5, four3, |d, x| {
                                    let yy = d.add(by, y);
                                    let xx = d.add(bx, x);
                                    let row = d.mul(yy, w);
                                    let pi0 = d.add(row, xx);
                                    let pi = d.add(frame_off, pi0);
                                    let px = load_u8(d, inp, pi);
                                    let r = d.sub(px, pred);
                                    let four4 = d.i64c(4);
                                    let bi = {
                                        let rr = d.mul(y, four4);
                                        d.add(rr, x)
                                    };
                                    d.store_elem(block, bi, r);
                                });
                            });
                            emit_fwd4x4(d, block, tmp);
                            // Quantize (round-to-nearest, symmetric).
                            let sixteen = d.i64c(16);
                            d.for_range(z4, sixteen, |d, i| {
                                let c = d.load_elem(Type::I64, block, i);
                                let ac = crate::common::iabs(d, c);
                                let two = d.i64c(2);
                                let halfq = d.sdiv(qstep, two);
                                let num = d.add(ac, halfq);
                                let q0 = d.sdiv(num, qstep);
                                let zz = d.i64c(0);
                                let neg = d.icmp(IntCC::Slt, c, zz);
                                let nq = d.sub(zz, q0);
                                let q = d.select(neg, nq, q0);
                                d.store_elem(block, i, q);
                            });
                            // Run-level emit.
                            let run = d.declare_var(Type::I64);
                            let z6 = d.i64c(0);
                            d.set(run, z6);
                            d.for_range(z6, sixteen, |d, i| {
                                let v = d.load_elem(Type::I64, block, i);
                                let lvl = clamp(d, v, -127, 127);
                                let zz = d.i64c(0);
                                let is0 = d.icmp(IntCC::Eq, lvl, zz);
                                d.if_else(
                                    is0,
                                    |d| {
                                        let r = d.get(run);
                                        let one2 = d.i64c(1);
                                        let r2 = d.add(r, one2);
                                        d.set(run, r2);
                                    },
                                    |d| {
                                        let r = d.get(run);
                                        let cur = d.get(cursor);
                                        store_u8(d, out, cur, r);
                                        let one2 = d.i64c(1);
                                        let cur1 = d.add(cur, one2);
                                        store_u8(d, out, cur1, lvl);
                                        let cur2 = d.add(cur1, one2);
                                        d.set(cursor, cur2);
                                        let zz2 = d.i64c(0);
                                        d.set(run, zz2);
                                    },
                                );
                                // Clamp the stored level too (mirror host).
                                d.store_elem(block, i, lvl);
                            });
                            let cur = d.get(cursor);
                            let zz3 = d.i64c(0);
                            store_u8(d, out, cur, zz3);
                            let one5 = d.i64c(1);
                            let cur1 = d.add(cur, one5);
                            store_u8(d, out, cur1, zz3);
                            let cur2 = d.add(cur1, one5);
                            d.set(cursor, cur2);
                            // Reconstruct for later predictions.
                            emit_reconstruct(d, block, tmp, recon, w, bx, by, pred);
                        });
                    });
                });
                let len = d.get(cursor);
                set_output_len(d, io, len);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, nf, seed) = match set {
            InputSet::Train => (32usize, 32usize, 2usize, 1001u64),
            InputSet::Test => (24usize, 24usize, 2usize, 1002),
        };
        let mut data = Vec::new();
        for k in 0..nf {
            data.extend_from_slice(&gray_image(w, h, seed + k as u64).pixels);
        }
        WorkloadInput {
            params: vec![w as i64, h as i64, nf as i64],
            data,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        let (a, _, _) = h264_ref::decode(golden);
        let (b, _, _) = h264_ref::decode(candidate);
        let af: Vec<u8> = a.into_iter().flatten().collect();
        let bf: Vec<u8> = b.into_iter().flatten().collect();
        psnr_u8(&af, &bf)
    }
}

/// The `h264dec` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct H264Dec;

impl Workload for H264Dec {
    fn name(&self) -> &'static str {
        "h264dec"
    }

    fn category(&self) -> Category {
        Category::Video
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // The decoder reconstructs directly into the output region, one
        // frame after another; scratch holds the block + tmp buffers.
        build_kernel_scratch(
            "h264dec",
            MAX_STREAM,
            MAX_W * MAX_H * MAX_FRAMES,
            32 * 8,
            &[],
            |d, io, _| {
                let block = d.i64c(io.scratch as i64);
                let tmp = d.i64c((io.scratch + 16 * 8) as i64);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let _one = d.i64c(1);
                let eight = d.i64c(8);

                let rd16 = |d: &mut FunctionDsl, off: i64| {
                    let o0 = d.i64c(off);
                    let o1 = d.i64c(off + 1);
                    let lo = load_u8(d, inp, o0);
                    let hi = load_u8(d, inp, o1);
                    let hs = d.shl(hi, eight);
                    d.or_(lo, hs)
                };
                let w = rd16(d, 0);
                let h = rd16(d, 2);
                let nf = rd16(d, 4);
                let cursor = d.declare_var(Type::I64);
                let six = d.i64c(6);
                d.set(cursor, six);
                let npix = d.mul(w, h);

                d.for_range(z, nf, |d, f| {
                    let frame_off = d.mul(f, npix);
                    let recon = d.add(out, frame_off);
                    // Zero the frame.
                    let z2 = d.i64c(0);
                    d.for_range(z2, npix, |d, i| {
                        let zz = d.i64c(0);
                        store_u8(d, recon, i, zz);
                    });
                    let four = d.i64c(4);
                    let bh = d.sdiv(h, four);
                    let bw = d.sdiv(w, four);
                    d.for_range(z2, bh, |d, byi| {
                        let z3 = d.i64c(0);
                        d.for_range(z3, bw, |d, bxi| {
                            let four2 = d.i64c(4);
                            let by = d.mul(byi, four2);
                            let bx = d.mul(bxi, four2);
                            // Clear the block.
                            let sixteen = d.i64c(16);
                            let z4 = d.i64c(0);
                            d.for_range(z4, sixteen, |d, i| {
                                let zz = d.i64c(0);
                                d.store_elem(block, i, zz);
                            });
                            // Run-level parse.
                            let idx = d.declare_var(Type::I64);
                            d.set(idx, z4);
                            let done = d.declare_var(Type::I64);
                            d.set(done, z4);
                            d.while_(
                                |d| {
                                    let dn = d.get(done);
                                    let zz = d.i64c(0);
                                    d.icmp(IntCC::Eq, dn, zz)
                                },
                                |d| {
                                    let cur = d.get(cursor);
                                    let run = load_u8(d, inp, cur);
                                    let one2 = d.i64c(1);
                                    let cur1 = d.add(cur, one2);
                                    let lvl_u = load_u8(d, inp, cur1);
                                    let cur2 = d.add(cur1, one2);
                                    d.set(cursor, cur2);
                                    let lvl8 = d.trunc(lvl_u, Type::I8);
                                    let level = d.sext(lvl8, Type::I64);
                                    let zz = d.i64c(0);
                                    let r0 = d.icmp(IntCC::Eq, run, zz);
                                    let l0 = d.icmp(IntCC::Eq, level, zz);
                                    let eob = d.and_(r0, l0);
                                    d.if_else(
                                        eob,
                                        |d| {
                                            let one3 = d.i64c(1);
                                            d.set(done, one3);
                                        },
                                        |d| {
                                            let ix = d.get(idx);
                                            let nx = d.add(ix, run);
                                            let c16 = d.i64c(16);
                                            let ok = d.icmp(IntCC::Slt, nx, c16);
                                            d.if_else(
                                                ok,
                                                |d| {
                                                    let ix2 = d.get(idx);
                                                    let nx2 = d.add(ix2, run);
                                                    d.store_elem(block, nx2, level);
                                                    let one4 = d.i64c(1);
                                                    let nxt = d.add(nx2, one4);
                                                    d.set(idx, nxt);
                                                },
                                                |d| {
                                                    let one4 = d.i64c(1);
                                                    d.set(done, one4);
                                                },
                                            );
                                        },
                                    );
                                },
                            );
                            let pred = emit_dc_predict(d, recon, w, bx, by);
                            emit_reconstruct(d, block, tmp, recon, w, bx, by, pred);
                        });
                    });
                });
                let total = d.mul(nf, npix);
                set_output_len(d, io, total);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, nf, seed) = match set {
            InputSet::Train => (32usize, 32usize, 2usize, 1003u64),
            InputSet::Test => (24usize, 24usize, 2usize, 1004),
        };
        let frames: Vec<Vec<u8>> = (0..nf)
            .map(|k| gray_image(w, h, seed + k as u64).pixels)
            .collect();
        let stream = h264_ref::encode(&frames, w, h);
        WorkloadInput {
            params: vec![],
            data: stream,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        psnr_u8(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn kernel_decoder_matches_host_exactly() {
        let w = H264Dec;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let (host_frames, hw, hh) = h264_ref::decode(&input.data);
        assert_eq!((hw, hh), (24, 24));
        let host: Vec<u8> = host_frames.into_iter().flatten().collect();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out, host, "integer decoders must agree bit-for-bit");
    }

    #[test]
    fn kernel_encoder_matches_host_exactly() {
        let w = H264Enc;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let nf = 2;
        let frames: Vec<Vec<u8>> = (0..nf)
            .map(|k| input.data[k * 24 * 24..(k + 1) * 24 * 24].to_vec())
            .collect();
        let host = h264_ref::encode(&frames, 24, 24);
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out, host, "integer encoders must agree bit-for-bit");
    }

    #[test]
    fn decoded_video_resembles_source() {
        let w = H264Dec;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let src: Vec<u8> = (0..2)
            .flat_map(|k| gray_image(24, 24, 1004 + k).pixels)
            .collect();
        let p = psnr_u8(&src, &out);
        assert!(p > 26.0, "decode PSNR vs source {p}");
    }
}
