//! `jpegenc` / `jpegdec`: grayscale 8×8 block-transform image codec
//! kernels (the SoftJPEG format of [`crate::host::jpeg_ref`]).
//!
//! Both kernels carry the state the paper's motivation highlights: the
//! DC predictor chains across blocks, and the bitstream cursor chains
//! across every emitted/consumed byte — corrupting either corrupts all
//! subsequent blocks (Fig. 1's unacceptable-output case came from
//! exactly such a corruption in Huffman-coefficient decoding).

use crate::common::{
    build_kernel_scratch, clamp, input_base, load_u8, output_data_base, param, set_output_len,
    store_u8,
};
use crate::fidelity::psnr_u8;
use crate::host::jpeg_ref;
use crate::inputs::gray_image;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::{FloatCC, IntCC};
use softft_ir::{Module, Type, ValueId};

const MAX_PIXELS: u64 = 48 * 48;
const MAX_STREAM: u64 = MAX_PIXELS * 2 + 16;

/// 8×8 DCT-II basis entries as f64 bytes: `table[k*8 + n] = c(k, n)`.
fn dct_basis_bytes() -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * 8);
    for k in 0..8 {
        for n in 0..8 {
            let c = if k == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            let v = c * ((std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64) / 16.0).cos();
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn qtable_bytes() -> Vec<u8> {
    jpeg_ref::QTABLE
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

fn zigzag_bytes() -> Vec<u8> {
    jpeg_ref::ZIGZAG.iter().map(|&z| z as u8).collect()
}

/// Rounds an `F64` to the nearest `I64` (ties away from zero):
/// `round(v) = floor(v + 0.5)` for positives and `-floor(-v + 0.5)` for
/// negatives, matching Rust's `f64::round` used by the host encoder.
fn round_to_i64(d: &mut FunctionDsl, v: ValueId) -> ValueId {
    let half = d.fconst(0.5);
    let zero = d.fconst(0.0);
    let pos = d.fcmp(FloatCC::Ge, v, zero);
    let padj = d.fadd(v, half);
    let pfl = d.ffloor(padj);
    let pint = d.fptosi(pfl, Type::I64);
    let negv = d.fneg(v);
    let nadj = d.fadd(negv, half);
    let nfl = d.ffloor(nadj);
    let nint = d.fptosi(nfl, Type::I64);
    let zero_i = d.i64c(0);
    let nneg = d.sub(zero_i, nint);
    d.select(pos, pint, nneg)
}

/// The `jpegenc` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct JpegEnc;

impl Workload for JpegEnc {
    fn name(&self) -> &'static str {
        "jpegenc"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // Scratch: block f64[64] | tmp f64[64] | q i64[64]
        build_kernel_scratch(
            "jpegenc",
            MAX_PIXELS,
            MAX_STREAM,
            64 * 8 * 3,
            &[
                ("dct_basis", dct_basis_bytes()),
                ("qtable", qtable_bytes()),
                ("zigzag", zigzag_bytes()),
            ],
            |d, io, tabs| {
                let basis = d.i64c(tabs[0] as i64);
                let qtab = d.i64c(tabs[1] as i64);
                let zig = d.i64c(tabs[2] as i64);
                let blockf = d.i64c(io.scratch as i64);
                let tmpf = d.i64c((io.scratch + 64 * 8) as i64);
                let qbuf = d.i64c((io.scratch + 128 * 8) as i64);
                let w = param(d, io, 0);
                let h = param(d, io, 1);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let one = d.i64c(1);
                let eight = d.i64c(8);

                // Header: w u16, h u16 (LE).
                let cursor = d.declare_var(Type::I64);
                let mask = d.i64c(0xFF);
                let wl = d.and_(w, mask);
                let wh = d.lshr(w, eight);
                let hl = d.and_(h, mask);
                let hh = d.lshr(h, eight);
                store_u8(d, out, z, wl);
                store_u8(d, out, one, wh);
                let two = d.i64c(2);
                let three = d.i64c(3);
                store_u8(d, out, two, hl);
                store_u8(d, out, three, hh);
                let four = d.i64c(4);
                d.set(cursor, four);

                let prev_dc = d.declare_var(Type::I64);
                d.set(prev_dc, z);

                let bh = d.sdiv(h, eight);
                let bw = d.sdiv(w, eight);
                d.for_range(z, bh, |d, byi| {
                    let z = d.i64c(0);
                    d.for_range(z, bw, |d, bxi| {
                        let eight = d.i64c(8);
                        let by = d.mul(byi, eight);
                        let bx = d.mul(bxi, eight);
                        // Load centered block into blockf (f64).
                        let z2 = d.i64c(0);
                        d.for_range(z2, eight, |d, y| {
                            let eight = d.i64c(8);
                            let z3 = d.i64c(0);
                            d.for_range(z3, eight, |d, x| {
                                let yy = d.add(by, y);
                                let xx = d.add(bx, x);
                                let row = d.mul(yy, w);
                                let pi = d.add(row, xx);
                                let px = load_u8(d, inp, pi);
                                let c128 = d.i64c(128);
                                let cent = d.sub(px, c128);
                                let f = d.sitofp(cent);
                                let eight2 = d.i64c(8);
                                let bi = {
                                    let r = d.mul(y, eight2);
                                    d.add(r, x)
                                };
                                d.store_elem(blockf, bi, f);
                            });
                        });
                        // Separable DCT: tmp[u][x] = Σ_y basis[u][y] blk[y][x]
                        d.for_range(z2, eight, |d, u| {
                            let eight = d.i64c(8);
                            let z3 = d.i64c(0);
                            d.for_range(z3, eight, |d, x| {
                                let acc = d.declare_var(Type::F64);
                                let zf = d.fconst(0.0);
                                d.set(acc, zf);
                                let eight2 = d.i64c(8);
                                let z4 = d.i64c(0);
                                d.for_range(z4, eight2, |d, y| {
                                    let eight3 = d.i64c(8);
                                    let biu = {
                                        let r = d.mul(u, eight3);
                                        d.add(r, y)
                                    };
                                    let c = d.load_elem(Type::F64, basis, biu);
                                    let bi = {
                                        let r = d.mul(y, eight3);
                                        d.add(r, x)
                                    };
                                    let v = d.load_elem(Type::F64, blockf, bi);
                                    let p = d.fmul(c, v);
                                    let a = d.get(acc);
                                    let a2 = d.fadd(a, p);
                                    d.set(acc, a2);
                                });
                                let a = d.get(acc);
                                let eight3 = d.i64c(8);
                                let ti = {
                                    let r = d.mul(u, eight3);
                                    d.add(r, x)
                                };
                                d.store_elem(tmpf, ti, a);
                            });
                        });
                        // out[u][v] = Σ_x tmp[u][x] basis[v][x]; quantize.
                        d.for_range(z2, eight, |d, u| {
                            let eight = d.i64c(8);
                            let z3 = d.i64c(0);
                            d.for_range(z3, eight, |d, v| {
                                let acc = d.declare_var(Type::F64);
                                let zf = d.fconst(0.0);
                                d.set(acc, zf);
                                let z4 = d.i64c(0);
                                let eight2 = d.i64c(8);
                                d.for_range(z4, eight2, |d, x| {
                                    let eight3 = d.i64c(8);
                                    let ti = {
                                        let r = d.mul(u, eight3);
                                        d.add(r, x)
                                    };
                                    let t = d.load_elem(Type::F64, tmpf, ti);
                                    let bi = {
                                        let r = d.mul(v, eight3);
                                        d.add(r, x)
                                    };
                                    let c = d.load_elem(Type::F64, basis, bi);
                                    let p = d.fmul(t, c);
                                    let a = d.get(acc);
                                    let a2 = d.fadd(a, p);
                                    d.set(acc, a2);
                                });
                                let coef = d.get(acc);
                                let eight3 = d.i64c(8);
                                let ci = {
                                    let r = d.mul(u, eight3);
                                    d.add(r, v)
                                };
                                let qv = {
                                    let q32 = d.load_elem(Type::I32, qtab, ci);
                                    d.sext(q32, Type::I64)
                                };
                                let qf = d.sitofp(qv);
                                let scaled = d.fdiv(coef, qf);
                                let qi = round_to_i64(d, scaled);
                                d.store_elem(qbuf, ci, qi);
                            });
                        });
                        // DC delta (clamped to i16).
                        let dc = {
                            let z4 = d.i64c(0);
                            let v = d.load_elem(Type::I64, qbuf, z4);
                            clamp(d, v, -32768, 32767)
                        };
                        let pd = d.get(prev_dc);
                        let delta0 = d.sub(dc, pd);
                        let delta = clamp(d, delta0, -32768, 32767);
                        d.set(prev_dc, dc);
                        let cur = d.get(cursor);
                        let m8 = d.i64c(0xFF);
                        let dl = d.and_(delta, m8);
                        store_u8(d, out, cur, dl);
                        let one2 = d.i64c(1);
                        let cur1 = d.add(cur, one2);
                        let eight4 = d.i64c(8);
                        let dh0 = d.ashr(delta, eight4);
                        let dh = d.and_(dh0, m8);
                        store_u8(d, out, cur1, dh);
                        let cur2 = d.add(cur1, one2);
                        d.set(cursor, cur2);

                        // AC run-level in zigzag order.
                        let run = d.declare_var(Type::I64);
                        let z5 = d.i64c(0);
                        d.set(run, z5);
                        let one3 = d.i64c(1);
                        let c64 = d.i64c(64);
                        d.for_range(one3, c64, |d, zi入| {
                            let zi = zi入;
                            let pos = load_u8(d, zig, zi);
                            let qv = d.load_elem(Type::I64, qbuf, pos);
                            let level = clamp(d, qv, -127, 127);
                            let zz = d.i64c(0);
                            let is_zero = d.icmp(IntCC::Eq, level, zz);
                            d.if_else(
                                is_zero,
                                |d| {
                                    let r = d.get(run);
                                    let one4 = d.i64c(1);
                                    let r2 = d.add(r, one4);
                                    d.set(run, r2);
                                },
                                |d| {
                                    let r = d.get(run);
                                    let cur = d.get(cursor);
                                    store_u8(d, out, cur, r);
                                    let one4 = d.i64c(1);
                                    let cur1 = d.add(cur, one4);
                                    store_u8(d, out, cur1, level);
                                    let cur2 = d.add(cur1, one4);
                                    d.set(cursor, cur2);
                                    let zz2 = d.i64c(0);
                                    d.set(run, zz2);
                                },
                            );
                        });
                        // EOB.
                        let cur = d.get(cursor);
                        let zz3 = d.i64c(0);
                        store_u8(d, out, cur, zz3);
                        let one5 = d.i64c(1);
                        let cur1 = d.add(cur, one5);
                        store_u8(d, out, cur1, zz3);
                        let cur2 = d.add(cur1, one5);
                        d.set(cursor, cur2);
                    });
                });
                let len = d.get(cursor);
                set_output_len(d, io, len);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, seed) = match set {
            InputSet::Train => (48usize, 48usize, 801),
            InputSet::Test => (32usize, 32usize, 802),
        };
        let img = gray_image(w, h, seed);
        WorkloadInput {
            params: vec![w as i64, h as i64],
            data: img.pixels,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        let (a, _, _) = jpeg_ref::decode(golden);
        let (b, _, _) = jpeg_ref::decode(candidate);
        psnr_u8(&a, &b)
    }
}

/// The `jpegdec` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct JpegDec;

impl Workload for JpegDec {
    fn name(&self) -> &'static str {
        "jpegdec"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // Scratch: q i64[64] | coef f64[64] | tmp f64[64]
        build_kernel_scratch(
            "jpegdec",
            MAX_STREAM,
            MAX_PIXELS,
            64 * 8 * 3,
            &[
                ("dct_basis", dct_basis_bytes()),
                ("qtable", qtable_bytes()),
                ("zigzag", zigzag_bytes()),
            ],
            |d, io, tabs| {
                let basis = d.i64c(tabs[0] as i64);
                let qtab = d.i64c(tabs[1] as i64);
                let zig = d.i64c(tabs[2] as i64);
                let qbuf = d.i64c(io.scratch as i64);
                let coeff = d.i64c((io.scratch + 64 * 8) as i64);
                let tmpf = d.i64c((io.scratch + 128 * 8) as i64);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let one = d.i64c(1);
                let eight = d.i64c(8);

                // Header.
                let b0 = load_u8(d, inp, z);
                let b1 = load_u8(d, inp, one);
                let two = d.i64c(2);
                let three = d.i64c(3);
                let b2 = load_u8(d, inp, two);
                let b3 = load_u8(d, inp, three);
                let w = {
                    let hi = d.shl(b1, eight);
                    d.or_(b0, hi)
                };
                let h = {
                    let hi = d.shl(b3, eight);
                    d.or_(b2, hi)
                };
                let cursor = d.declare_var(Type::I64);
                let four = d.i64c(4);
                d.set(cursor, four);
                let prev_dc = d.declare_var(Type::I64);
                d.set(prev_dc, z);

                let bh = d.sdiv(h, eight);
                let bw = d.sdiv(w, eight);
                d.for_range(z, bh, |d, byi| {
                    let z = d.i64c(0);
                    d.for_range(z, bw, |d, bxi| {
                        let eight = d.i64c(8);
                        let by = d.mul(byi, eight);
                        let bx = d.mul(bxi, eight);
                        // Clear q.
                        let z2 = d.i64c(0);
                        let c64 = d.i64c(64);
                        d.for_range(z2, c64, |d, i| {
                            let zz = d.i64c(0);
                            d.store_elem(qbuf, i, zz);
                        });
                        // DC delta.
                        let cur = d.get(cursor);
                        let lo = load_u8(d, inp, cur);
                        let one2 = d.i64c(1);
                        let cur1 = d.add(cur, one2);
                        let hi = load_u8(d, inp, cur1);
                        let cur2 = d.add(cur1, one2);
                        d.set(cursor, cur2);
                        let eight2 = d.i64c(8);
                        let hi_sh = d.shl(hi, eight2);
                        let raw = d.or_(lo, hi_sh);
                        // Sign-extend 16 bits.
                        let raw16 = d.trunc(raw, Type::I16);
                        let delta = d.sext(raw16, Type::I64);
                        let pd = d.get(prev_dc);
                        let dc = d.add(pd, delta);
                        d.set(prev_dc, dc);
                        let z3 = d.i64c(0);
                        d.store_elem(qbuf, z3, dc);

                        // AC run-level until EOB.
                        let zi = d.declare_var(Type::I64);
                        let one3 = d.i64c(1);
                        d.set(zi, one3);
                        let done = d.declare_var(Type::I64);
                        d.set(done, z3);
                        d.while_(
                            |d| {
                                let dn = d.get(done);
                                let zz = d.i64c(0);
                                d.icmp(IntCC::Eq, dn, zz)
                            },
                            |d| {
                                let cur = d.get(cursor);
                                let run = load_u8(d, inp, cur);
                                let one4 = d.i64c(1);
                                let cur1 = d.add(cur, one4);
                                let lvl_u = load_u8(d, inp, cur1);
                                let cur2 = d.add(cur1, one4);
                                d.set(cursor, cur2);
                                let lvl8 = d.trunc(lvl_u, Type::I8);
                                let level = d.sext(lvl8, Type::I64);
                                let zz = d.i64c(0);
                                let r_is0 = d.icmp(IntCC::Eq, run, zz);
                                let l_is0 = d.icmp(IntCC::Eq, level, zz);
                                let eob = d.and_(r_is0, l_is0);
                                d.if_else(
                                    eob,
                                    |d| {
                                        let one5 = d.i64c(1);
                                        d.set(done, one5);
                                    },
                                    |d| {
                                        let z4 = d.get(zi);
                                        let nz = d.add(z4, run);
                                        let c64 = d.i64c(64);
                                        let ok = d.icmp(IntCC::Slt, nz, c64);
                                        d.if_else(
                                            ok,
                                            |d| {
                                                let nz2 = d.get(zi);
                                                let nz3 = d.add(nz2, run);
                                                let pos = load_u8(d, zig, nz3);
                                                d.store_elem(qbuf, pos, level);
                                                let one6 = d.i64c(1);
                                                let nxt = d.add(nz3, one6);
                                                d.set(zi, nxt);
                                                let c64b = d.i64c(64);
                                                let past = d.icmp(IntCC::Sge, nxt, c64b);
                                                let one7 = d.i64c(1);
                                                let z5 = d.i64c(0);
                                                let df = d.select(past, one7, z5);
                                                let cd = d.get(done);
                                                let nd = d.or_(cd, df);
                                                d.set(done, nd);
                                            },
                                            |d| {
                                                // Corrupt run: stop block.
                                                let one6 = d.i64c(1);
                                                d.set(done, one6);
                                            },
                                        );
                                    },
                                );
                            },
                        );

                        // Dequantize into coeff (f64), clamped like host.
                        d.for_range(z2, c64, |d, i| {
                            let q = d.load_elem(Type::I64, qbuf, i);
                            let qc = clamp(d, q, -20000, 20000);
                            let qt = {
                                let q32 = d.load_elem(Type::I32, qtab, i);
                                d.sext(q32, Type::I64)
                            };
                            let v = d.mul(qc, qt);
                            let f = d.sitofp(v);
                            d.store_elem(coeff, i, f);
                        });
                        // Separable IDCT: tmp[y][v] = Σ_u basis[u][y] coef[u][v]
                        let eight3 = d.i64c(8);
                        d.for_range(z2, eight3, |d, y| {
                            let eight = d.i64c(8);
                            let z4 = d.i64c(0);
                            d.for_range(z4, eight, |d, v| {
                                let acc = d.declare_var(Type::F64);
                                let zf = d.fconst(0.0);
                                d.set(acc, zf);
                                let z5 = d.i64c(0);
                                let eight2 = d.i64c(8);
                                d.for_range(z5, eight2, |d, u| {
                                    let eight4 = d.i64c(8);
                                    let biu = {
                                        let r = d.mul(u, eight4);
                                        d.add(r, y)
                                    };
                                    let c = d.load_elem(Type::F64, basis, biu);
                                    let ci = {
                                        let r = d.mul(u, eight4);
                                        d.add(r, v)
                                    };
                                    let cf = d.load_elem(Type::F64, coeff, ci);
                                    let p = d.fmul(c, cf);
                                    let a = d.get(acc);
                                    let a2 = d.fadd(a, p);
                                    d.set(acc, a2);
                                });
                                let a = d.get(acc);
                                let eight4 = d.i64c(8);
                                let ti = {
                                    let r = d.mul(y, eight4);
                                    d.add(r, v)
                                };
                                d.store_elem(tmpf, ti, a);
                            });
                        });
                        // px[y][x] = Σ_v tmp[y][v] basis[v][x] + 128
                        d.for_range(z2, eight3, |d, y| {
                            let eight = d.i64c(8);
                            let z4 = d.i64c(0);
                            d.for_range(z4, eight, |d, x| {
                                let acc = d.declare_var(Type::F64);
                                let zf = d.fconst(0.0);
                                d.set(acc, zf);
                                let z5 = d.i64c(0);
                                let eight2 = d.i64c(8);
                                d.for_range(z5, eight2, |d, v| {
                                    let eight4 = d.i64c(8);
                                    let ti = {
                                        let r = d.mul(y, eight4);
                                        d.add(r, v)
                                    };
                                    let t = d.load_elem(Type::F64, tmpf, ti);
                                    let bi = {
                                        let r = d.mul(v, eight4);
                                        d.add(r, x)
                                    };
                                    let c = d.load_elem(Type::F64, basis, bi);
                                    let p = d.fmul(t, c);
                                    let a = d.get(acc);
                                    let a2 = d.fadd(a, p);
                                    d.set(acc, a2);
                                });
                                let a = d.get(acc);
                                let c128 = d.fconst(128.0);
                                let shifted = d.fadd(a, c128);
                                let r = round_to_i64(d, shifted);
                                let px = clamp(d, r, 0, 255);
                                let yy = d.add(by, y);
                                let xx = d.add(bx, x);
                                let row = d.mul(yy, w);
                                let oi = d.add(row, xx);
                                store_u8(d, out, oi, px);
                            });
                        });
                    });
                });
                let n = d.mul(w, h);
                set_output_len(d, io, n);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, seed) = match set {
            InputSet::Train => (48usize, 48usize, 803),
            InputSet::Test => (32usize, 32usize, 804),
        };
        let img = gray_image(w, h, seed);
        let stream = jpeg_ref::encode(&img.pixels, w, h);
        WorkloadInput {
            params: vec![],
            data: stream,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        psnr_u8(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn decoder_matches_host_decoder_closely() {
        let w = JpegDec;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let (host_px, hw, hh) = jpeg_ref::decode(&input.data);
        assert_eq!((hw, hh), (32, 32));
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), host_px.len());
        let p = psnr_u8(&host_px, &out);
        assert!(p > 45.0, "kernel vs host decode PSNR {p}");
    }

    #[test]
    fn decoded_image_resembles_source() {
        let w = JpegDec;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let src = gray_image(32, 32, 804).pixels;
        let p = psnr_u8(&src, &out);
        assert!(p > 28.0, "decode vs source PSNR {p}");
    }

    #[test]
    fn encoder_stream_decodes_well() {
        let w = JpegEnc;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let stream = golden_output(&w, &m, InputSet::Test);
        let (px, dw, dh) = jpeg_ref::decode(&stream);
        assert_eq!((dw, dh), (32, 32));
        let src = gray_image(32, 32, 802).pixels;
        let p = psnr_u8(&src, &px);
        assert!(p > 28.0, "encode→host-decode PSNR {p}");
    }

    #[test]
    fn encoder_compresses() {
        let w = JpegEnc;
        let m = w.build_module();
        let stream = golden_output(&w, &m, InputSet::Train);
        assert!(stream.len() < 48 * 48, "no compression: {}", stream.len());
    }

    #[test]
    fn enc_fidelity_uses_host_decode() {
        let w = JpegEnc;
        let m = w.build_module();
        let stream = golden_output(&w, &m, InputSet::Test);
        assert_eq!(w.fidelity(&stream, &stream), f64::INFINITY);
        // A corrupted stream must degrade.
        let mut bad = stream.clone();
        for i in (6..bad.len()).step_by(9) {
            bad[i] ^= 0x41;
        }
        let f = w.fidelity(&stream, &bad);
        assert!(f < 40.0, "{f}");
    }
}
