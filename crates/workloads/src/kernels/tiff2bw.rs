//! `tiff2bw`: RGB → grayscale conversion with contrast stretch.
//!
//! Pass 1 converts each pixel with integer channel weights while tracking
//! the running minimum and maximum — two loop-carried state variables.
//! Pass 2 stretches the gray values to the full 8-bit range, so a
//! corrupted min/max corrupts *every* output pixel (the snowball effect
//! the paper protects against).

use crate::common::{
    build_kernel, clamp, imax, imin, input_base, load_u8, output_data_base, param, set_output_len,
    store_u8,
};
use crate::fidelity::psnr_u8;
use crate::inputs::rgb_image;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::Module;

const MAX_PIXELS: u64 = 64 * 64;

/// The `tiff2bw` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tiff2Bw;

impl Workload for Tiff2Bw {
    fn name(&self) -> &'static str {
        "tiff2bw"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        build_kernel("tiff2bw", MAX_PIXELS * 3, MAX_PIXELS, &[], |d, io, _| {
            let w = param(d, io, 0);
            let h = param(d, io, 1);
            let n = d.mul(w, h);
            let inp = input_base(d, io);
            let out = output_data_base(d, io);

            // Pass 1: weighted gray + min/max reduction.
            let minv = d.declare_var(softft_ir::Type::I64);
            let maxv = d.declare_var(softft_ir::Type::I64);
            let init_min = d.i64c(255);
            let init_max = d.i64c(0);
            d.set(minv, init_min);
            d.set(maxv, init_max);
            let z = d.i64c(0);
            d.for_range(z, n, |d, i| {
                let three = d.i64c(3);
                let base3 = d.mul(i, three);
                let r = load_u8(d, inp, base3);
                let one = d.i64c(1);
                let gi = d.add(base3, one);
                let g = load_u8(d, inp, gi);
                let two = d.i64c(2);
                let bi = d.add(base3, two);
                let b = load_u8(d, inp, bi);
                // gray = (77 r + 151 g + 28 b) >> 8
                let wr = d.i64c(77);
                let wg = d.i64c(151);
                let wb = d.i64c(28);
                let tr = d.mul(r, wr);
                let tg = d.mul(g, wg);
                let tb = d.mul(b, wb);
                let s1 = d.add(tr, tg);
                let s2 = d.add(s1, tb);
                let eight = d.i64c(8);
                let gray = d.ashr(s2, eight);
                store_u8(d, out, i, gray);
                let cur_min = d.get(minv);
                let nm = imin(d, cur_min, gray);
                d.set(minv, nm);
                let cur_max = d.get(maxv);
                let nx = imax(d, cur_max, gray);
                d.set(maxv, nx);
            });

            // Pass 2: contrast stretch using the reduction results.
            let lo = d.get(minv);
            let hi = d.get(maxv);
            let span = d.sub(hi, lo);
            let one = d.i64c(1);
            let span = imax(d, span, one);
            d.for_range(z, n, |d, i| {
                let g = load_u8(d, out, i);
                let shifted = d.sub(g, lo);
                let c255 = d.i64c(255);
                let num = d.mul(shifted, c255);
                let v = d.sdiv(num, span);
                let v = clamp(d, v, 0, 255);
                store_u8(d, out, i, v);
            });
            set_output_len(d, io, n);
            let r = d.i64c(0);
            d.ret(Some(r));
        })
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, seed) = match set {
            InputSet::Train => (64, 64, 101),
            InputSet::Test => (48, 48, 202),
        };
        let img = rgb_image(w, h, seed);
        WorkloadInput {
            params: vec![w as i64, h as i64],
            data: img.pixels,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        psnr_u8(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{golden_output, run_workload};
    use softft_vm::interp::NoopObserver;
    use softft_vm::VmConfig;

    #[test]
    fn converts_and_stretches() {
        let w = Tiff2Bw;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), 48 * 48);
        // Contrast stretch should reach both ends of the range.
        assert_eq!(*out.iter().min().unwrap(), 0);
        assert_eq!(*out.iter().max().unwrap(), 255);
    }

    #[test]
    fn train_and_test_differ() {
        let w = Tiff2Bw;
        assert_ne!(w.input(InputSet::Train), w.input(InputSet::Test));
    }

    #[test]
    fn self_fidelity_is_perfect() {
        let w = Tiff2Bw;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(w.fidelity(&out, &out), f64::INFINITY);
        assert!(w.acceptable(&out, &out));
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Tiff2Bw;
        let m = w.build_module();
        let input = w.input(InputSet::Train);
        let (r1, o1) = run_workload(&m, &input, VmConfig::default(), &mut NoopObserver, None);
        let (r2, o2) = run_workload(&m, &input, VmConfig::default(), &mut NoopObserver, None);
        assert_eq!(r1, r2);
        assert_eq!(o1, o2);
    }
}
