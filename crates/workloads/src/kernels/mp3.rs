//! `mp3enc` / `mp3dec`: frame-based transform audio codec kernels (the
//! SoftMP3 format of [`crate::host::subband_ref`]).
//!
//! Per-frame state abounds: the frame loop's running maximum, the
//! exponent search counter, and the output cursor are all loop-carried.
//! All arithmetic is integer-exact with the host reference, so the
//! kernel encoder's stream decodes bit-for-bit on the host.

use crate::common::{
    build_kernel_scratch, clamp, i16s_to_bytes, imax, input_base, load_i16, output_data_base,
    param, set_output_len, store_i16, store_u8,
};
use crate::fidelity::psnr_i16;
use crate::host::subband_ref::{self, FRAME};
use crate::inputs::waveform;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type};

const MAX_SAMPLES: u64 = 2048;
const MAX_STREAM: u64 = (MAX_SAMPLES / FRAME as u64) * (FRAME as u64 + 1) + 64;

fn dct_table_bytes() -> Vec<u8> {
    subband_ref::dct_table_q14()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

/// The `mp3enc` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mp3Enc;

impl Workload for Mp3Enc {
    fn name(&self) -> &'static str {
        "mp3enc"
    }

    fn category(&self) -> Category {
        Category::Audio
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // Scratch: coefficient buffer, FRAME i64 words.
        build_kernel_scratch(
            "mp3enc",
            MAX_SAMPLES * 2,
            MAX_STREAM,
            FRAME as u64 * 8,
            &[("dct_q14", dct_table_bytes())],
            |d, io, tabs| {
                let table = d.i64c(tabs[0] as i64);
                let coefs = d.i64c(io.scratch as i64);
                let n = param(d, io, 0);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let frame_c = d.i64c(FRAME as i64);
                let frames = d.sdiv(n, frame_c);

                d.for_range(z, frames, |d, f| {
                    let frame_c = d.i64c(FRAME as i64);
                    let base = d.mul(f, frame_c);
                    // DCT-II: coef[k] = (Σ_n x[n] * T[k][n]) >> 14
                    let z2 = d.i64c(0);
                    d.for_range(z2, frame_c, |d, k| {
                        let acc = d.declare_var(Type::I64);
                        let zz = d.i64c(0);
                        d.set(acc, zz);
                        let frame_c2 = d.i64c(FRAME as i64);
                        d.for_range(zz, frame_c2, |d, nn| {
                            let si = d.add(base, nn);
                            let x = load_i16(d, inp, si);
                            let frame_c3 = d.i64c(FRAME as i64);
                            let ti = {
                                let r = d.mul(k, frame_c3);
                                d.add(r, nn)
                            };
                            let c = load_i16(d, table, ti);
                            let p = d.mul(x, c);
                            let a = d.get(acc);
                            let a2 = d.add(a, p);
                            d.set(acc, a2);
                        });
                        let a = d.get(acc);
                        let c14 = d.i64c(14);
                        let v = d.ashr(a, c14);
                        d.store_elem(coefs, k, v);
                    });
                    // Frame maximum magnitude (loop-carried max).
                    let maxmag = d.declare_var(Type::I64);
                    let one_c = d.i64c(1);
                    d.set(maxmag, one_c);
                    d.for_range(z2, frame_c, |d, k| {
                        let v = d.load_elem(Type::I64, coefs, k);
                        let av = crate::common::iabs(d, v);
                        let m = d.get(maxmag);
                        let nm = imax(d, m, av);
                        d.set(maxmag, nm);
                    });
                    // Exponent search: smallest exp with 2^exp >= maxmag.
                    let exp = d.declare_var(Type::I64);
                    let zz2 = d.i64c(0);
                    d.set(exp, zz2);
                    d.while_(
                        |d| {
                            let e = d.get(exp);
                            let one = d.i64c(1);
                            let p2 = d.shl(one, e);
                            let m = d.get(maxmag);
                            let below = d.icmp(IntCC::Slt, p2, m);
                            let c62 = d.i64c(62);
                            let small = d.icmp(IntCC::Slt, e, c62);
                            d.and_(below, small)
                        },
                        |d| {
                            let e = d.get(exp);
                            let one = d.i64c(1);
                            let e2 = d.add(e, one);
                            d.set(exp, e2);
                        },
                    );
                    // Emit frame: exp byte + quantized coefficients.
                    let frame_sz = d.i64c(FRAME as i64 + 1);
                    let fbase = d.mul(f, frame_sz);
                    let e = d.get(exp);
                    store_u8(d, out, fbase, e);
                    let one2 = d.i64c(1);
                    let scale = d.shl(one2, e);
                    d.for_range(z2, frame_c, |d, k| {
                        let v = d.load_elem(Type::I64, coefs, k);
                        let c127 = d.i64c(127);
                        let num = d.mul(v, c127);
                        let q0 = d.sdiv(num, scale);
                        let q = clamp(d, q0, -127, 127);
                        let one3 = d.i64c(1);
                        let oi0 = d.add(fbase, one3);
                        let oi = d.add(oi0, k);
                        store_u8(d, out, oi, q);
                    });
                });
                let frame_sz = d.i64c(FRAME as i64 + 1);
                let total = d.mul(frames, frame_sz);
                set_output_len(d, io, total);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (n, seed) = match set {
            InputSet::Train => (2048usize, 901),
            InputSet::Test => (1024usize, 902),
        };
        let samples = waveform(n, seed);
        WorkloadInput {
            params: vec![n as i64],
            data: i16s_to_bytes(&samples),
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        // Decode both streams on the host, PSNR on waveforms.
        let n = (golden.len() / (FRAME + 1)) * FRAME;
        let a = subband_ref::decode(golden, n);
        let b = subband_ref::decode(candidate, n);
        psnr_i16(&i16s_to_bytes(&a), &i16s_to_bytes(&b))
    }
}

/// The `mp3dec` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mp3Dec;

impl Workload for Mp3Dec {
    fn name(&self) -> &'static str {
        "mp3dec"
    }

    fn category(&self) -> Category {
        Category::Audio
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Psnr { threshold_db: 30.0 }
    }

    fn build_module(&self) -> Module {
        // Scratch: dequantized coefficients, FRAME i64 words.
        build_kernel_scratch(
            "mp3dec",
            MAX_STREAM,
            MAX_SAMPLES * 2,
            FRAME as u64 * 8,
            &[("dct_q14", dct_table_bytes())],
            |d, io, tabs| {
                let table = d.i64c(tabs[0] as i64);
                let coefs = d.i64c(io.scratch as i64);
                let n = param(d, io, 0); // sample count
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let z = d.i64c(0);
                let frame_c = d.i64c(FRAME as i64);
                let frames = d.sdiv(n, frame_c);

                d.for_range(z, frames, |d, f| {
                    let frame_sz = d.i64c(FRAME as i64 + 1);
                    let fbase = d.mul(f, frame_sz);
                    let exp0 = crate::common::load_u8(d, inp, fbase);
                    let exp = clamp(d, exp0, 0, 62);
                    let one = d.i64c(1);
                    let scale = d.shl(one, exp);
                    let frame_c2 = d.i64c(FRAME as i64);
                    let z2 = d.i64c(0);
                    d.for_range(z2, frame_c2, |d, k| {
                        let one2 = d.i64c(1);
                        let qi0 = d.add(fbase, one2);
                        let qi = d.add(qi0, k);
                        let q_u = crate::common::load_u8(d, inp, qi);
                        let q8 = d.trunc(q_u, Type::I8);
                        let q = d.sext(q8, Type::I64);
                        let num = d.mul(q, scale);
                        let c127 = d.i64c(127);
                        let c = d.sdiv(num, c127);
                        d.store_elem(coefs, k, c);
                    });
                    // IDCT (DCT-III): out[n] = ((c0*16384)>>1 + Σ_{k≥1} c_k T[k][n]) >> 14, *2/32
                    let frame_c3 = d.i64c(FRAME as i64);
                    d.for_range(z2, frame_c3, |d, nn| {
                        let z3 = d.i64c(0);
                        let c0 = d.load_elem(Type::I64, coefs, z3);
                        let c16384 = d.i64c(16384);
                        let dc0 = d.mul(c0, c16384);
                        let one3 = d.i64c(1);
                        let acc0 = d.ashr(dc0, one3);
                        let acc = d.declare_var(Type::I64);
                        d.set(acc, acc0);
                        let one4 = d.i64c(1);
                        let frame_c4 = d.i64c(FRAME as i64);
                        d.for_range(one4, frame_c4, |d, k| {
                            let ck = d.load_elem(Type::I64, coefs, k);
                            let frame_c5 = d.i64c(FRAME as i64);
                            let ti = {
                                let r = d.mul(k, frame_c5);
                                d.add(r, nn)
                            };
                            let t = load_i16(d, table, ti);
                            let p = d.mul(ck, t);
                            let a = d.get(acc);
                            let a2 = d.add(a, p);
                            d.set(acc, a2);
                        });
                        let a = d.get(acc);
                        let c14 = d.i64c(14);
                        let sh = d.ashr(a, c14);
                        let two = d.i64c(2);
                        let x2 = d.mul(sh, two);
                        let c32 = d.i64c(FRAME as i64);
                        let v0 = d.sdiv(x2, c32);
                        let v = clamp(d, v0, i16::MIN as i64, i16::MAX as i64);
                        let frame_c6 = d.i64c(FRAME as i64);
                        let oi = {
                            let r = d.mul(f, frame_c6);
                            d.add(r, nn)
                        };
                        store_i16(d, out, oi, v);
                    });
                });
                let two = d.i64c(2);
                let bytes = d.mul(n, two);
                set_output_len(d, io, bytes);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (n, seed) = match set {
            InputSet::Train => (2048usize, 903),
            InputSet::Test => (1024usize, 904),
        };
        let samples = waveform(n, seed);
        let stream = subband_ref::encode(&samples);
        WorkloadInput {
            params: vec![n as i64],
            data: stream,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        psnr_i16(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::bytes_to_i16s;
    use crate::runner::golden_output;

    #[test]
    fn kernel_decoder_matches_host() {
        let w = Mp3Dec;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let host = subband_ref::decode(&input.data, 1024);
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(bytes_to_i16s(&out), host, "kernel/host decoder divergence");
    }

    #[test]
    fn kernel_encoder_matches_host() {
        let w = Mp3Enc;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let samples = bytes_to_i16s(&input.data);
        let host = subband_ref::encode(&samples);
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out, host, "kernel/host encoder divergence");
    }

    #[test]
    fn decoded_audio_close_to_source() {
        let w = Mp3Dec;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let src = waveform(1024, 904);
        let p = psnr_i16(&i16s_to_bytes(&src), &out);
        assert!(p > 30.0, "decode PSNR vs source {p}");
    }

    #[test]
    fn enc_fidelity_degrades_with_corruption() {
        let w = Mp3Enc;
        let m = w.build_module();
        let stream = golden_output(&w, &m, InputSet::Test);
        assert_eq!(w.fidelity(&stream, &stream), f64::INFINITY);
        let mut bad = stream.clone();
        // Corrupt a frame exponent: large value change.
        bad[0] = bad[0].wrapping_add(20);
        let f = w.fidelity(&stream, &bad);
        assert!(f < 60.0, "{f}");
    }
}
