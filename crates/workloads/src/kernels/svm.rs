//! `svm`: linear support vector machine (Pegasos-style SGD training plus
//! inference).
//!
//! The weight vector lives in scratch memory and is updated across every
//! training example and epoch — the training loop's epoch counter, the
//! learning-rate schedule, and the running weight scale are loop-carried
//! state. Output is the predicted label per test example; fidelity is the
//! fraction of predictions that differ from the fault-free run.

use crate::common::{
    build_kernel_scratch, i32s_to_bytes, input_base, load_i32, output_data_base, param,
    set_output_len, store_u8,
};
use crate::fidelity::class_error;
use crate::inputs::svm_dataset;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::inst::{FloatCC, IntCC};
use softft_ir::{Module, Type};

const MAX_TRAIN: u64 = 256;
const MAX_TEST: u64 = 256;
const MAX_D: u64 = 16;

/// The `svm` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct Svm;

impl Workload for Svm {
    fn name(&self) -> &'static str {
        "svm"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::ClassError {
            threshold_frac: 0.10,
        }
    }

    fn build_module(&self) -> Module {
        // Input layout: train feats (n*d i32) | train labels (n bytes,
        // 0/1) | test feats (nt*d i32).
        // Scratch: weight vector (MAX_D f64 words).
        build_kernel_scratch(
            "svm",
            (MAX_TRAIN * MAX_D * 4) + MAX_TRAIN + (MAX_TEST * MAX_D * 4),
            MAX_TEST,
            MAX_D * 8,
            &[],
            |d, io, _| {
                let n = param(d, io, 0);
                let dim = param(d, io, 1);
                let epochs = param(d, io, 2);
                let nt = param(d, io, 3);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let wbase = d.i64c(io.scratch as i64);
                let z = d.i64c(0);

                // Offsets into the input blob.
                let four = d.i64c(4);
                let nd = d.mul(n, dim);
                let train_bytes = d.mul(nd, four);
                let labels_off = train_bytes;
                let test_off = d.add(labels_off, n);

                // Zero the weights.
                d.for_range(z, dim, |d, j| {
                    let zf = d.fconst(0.0);
                    d.store_elem(wbase, j, zf);
                });

                // Pegasos-ish SGD: for t-th update, eta = 1/(lambda * t).
                let step = d.declare_var(Type::I64); // global update counter
                let one = d.i64c(1);
                d.set(step, one);
                d.for_range(z, epochs, |d, _e| {
                    let z = d.i64c(0);
                    d.for_range(z, n, |d, i| {
                        // margin = y * (w . x); y in {-1, +1}
                        let acc = d.declare_var(Type::F64);
                        let zf = d.fconst(0.0);
                        d.set(acc, zf);
                        let z2 = d.i64c(0);
                        d.for_range(z2, dim, |d, j| {
                            let ii = d.mul(i, dim);
                            let iij = d.add(ii, j);
                            let xi = load_i32(d, inp, iij);
                            let xf0 = d.sitofp(xi);
                            let scale = d.fconst(1.0 / 1000.0);
                            let xf = d.fmul(xf0, scale);
                            let wj = d.load_elem(Type::F64, wbase, j);
                            let prod = d.fmul(wj, xf);
                            let a = d.get(acc);
                            let a2 = d.fadd(a, prod);
                            d.set(acc, a2);
                        });
                        // Label: byte 0/1 -> -1.0 / +1.0
                        let laddr = d.add(labels_off, i);
                        let lb = crate::common::load_u8(d, inp, laddr);
                        let z3 = d.i64c(0);
                        let is_pos = d.icmp(IntCC::Ne, lb, z3);
                        let pos = d.fconst(1.0);
                        let neg = d.fconst(-1.0);
                        let y = d.select(is_pos, pos, neg);
                        let dot = d.get(acc);
                        let margin = d.fmul(y, dot);

                        // eta = 1 / (lambda * t), lambda = 0.01
                        let t = d.get(step);
                        let tf = d.sitofp(t);
                        let lambda = d.fconst(0.01);
                        let lt = d.fmul(lambda, tf);
                        let onef = d.fconst(1.0);
                        let eta = d.fdiv(onef, lt);
                        // decay = 1 - eta*lambda
                        let el = d.fmul(eta, lambda);
                        let decay = d.fsub(onef, el);

                        let hinge = d.fcmp(FloatCC::Lt, margin, onef);
                        d.if_else(
                            hinge,
                            |d| {
                                // w = decay*w + eta*y*x
                                let z4 = d.i64c(0);
                                d.for_range(z4, dim, |d, j| {
                                    let wj = d.load_elem(Type::F64, wbase, j);
                                    let wd = d.fmul(wj, decay);
                                    let ii = d.mul(i, dim);
                                    let iij = d.add(ii, j);
                                    let xi = load_i32(d, inp, iij);
                                    let xf0 = d.sitofp(xi);
                                    let scale = d.fconst(1.0 / 1000.0);
                                    let xf = d.fmul(xf0, scale);
                                    let ey = d.fmul(eta, y);
                                    let upd = d.fmul(ey, xf);
                                    let nw = d.fadd(wd, upd);
                                    d.store_elem(wbase, j, nw);
                                });
                            },
                            |d| {
                                // w = decay*w
                                let z4 = d.i64c(0);
                                d.for_range(z4, dim, |d, j| {
                                    let wj = d.load_elem(Type::F64, wbase, j);
                                    let wd = d.fmul(wj, decay);
                                    d.store_elem(wbase, j, wd);
                                });
                            },
                        );
                        let t = d.get(step);
                        let one = d.i64c(1);
                        let t2 = d.add(t, one);
                        d.set(step, t2);
                    });
                });

                // Inference over the test set.
                d.for_range(z, nt, |d, i| {
                    let acc = d.declare_var(Type::F64);
                    let zf = d.fconst(0.0);
                    d.set(acc, zf);
                    let z2 = d.i64c(0);
                    d.for_range(z2, dim, |d, j| {
                        let ii = d.mul(i, dim);
                        let iij = d.add(ii, j);
                        let fourb = d.i64c(4);
                        let off4 = d.mul(iij, fourb);
                        let addr_idx = d.add(test_off, off4);
                        // test features are i32s starting at test_off bytes
                        let a = d.add(inp, addr_idx);
                        let xi0 = d.load(Type::I32, a);
                        let xi = d.sext(xi0, Type::I64);
                        let xf0 = d.sitofp(xi);
                        let scale = d.fconst(1.0 / 1000.0);
                        let xf = d.fmul(xf0, scale);
                        let wj = d.load_elem(Type::F64, wbase, j);
                        let prod = d.fmul(wj, xf);
                        let acu = d.get(acc);
                        let a2 = d.fadd(acu, prod);
                        d.set(acc, a2);
                    });
                    let dot = d.get(acc);
                    let zf2 = d.fconst(0.0);
                    let pos = d.fcmp(FloatCC::Gt, dot, zf2);
                    let one = d.i64c(1);
                    let z3 = d.i64c(0);
                    let label = d.select(pos, one, z3);
                    store_u8(d, out, i, label);
                });
                set_output_len(d, io, nt);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        // One dataset per input set, split into train and test halves so
        // both halves share the same underlying separator.
        let (n, nt, dim, epochs, seed) = match set {
            InputSet::Train => (200usize, 200usize, 16usize, 6i64, 501),
            InputSet::Test => (160usize, 160usize, 16usize, 6i64, 502),
        };
        let (x, y) = svm_dataset(n + nt, dim, seed);
        let train_x = &x[..n * dim];
        let train_y = &y[..n];
        let test_x = &x[n * dim..];
        let mut data = i32s_to_bytes(train_x);
        data.extend_from_slice(train_y);
        data.extend_from_slice(&i32s_to_bytes(test_x));
        WorkloadInput {
            params: vec![n as i64, dim as i64, epochs, nt as i64],
            data,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        class_error(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn trains_a_sensible_classifier() {
        let w = Svm;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), 160);
        // The test set comes from a different generator seed, but the
        // classifier should at least produce both classes.
        let pos = out.iter().filter(|&&l| l == 1).count();
        assert!(pos > 10 && pos < 150, "degenerate predictions: {pos}/160");
    }

    #[test]
    fn accuracy_against_true_separator() {
        // The test half shares the training half's separator, so the
        // trained model must beat chance solidly on the generator labels.
        let w = Svm;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Train);
        let (_, labels) = svm_dataset(400, 16, 501);
        let test_labels = &labels[200..];
        let agree = out
            .iter()
            .zip(test_labels.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree * 10 >= test_labels.len() * 8,
            "accuracy {agree}/{}",
            test_labels.len()
        );
    }

    #[test]
    fn deterministic() {
        let w = Svm;
        let m = w.build_module();
        let a = golden_output(&w, &m, InputSet::Test);
        let b = golden_output(&w, &m, InputSet::Test);
        assert_eq!(a, b);
    }
}
