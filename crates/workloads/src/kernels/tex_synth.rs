//! `tex_synth`: non-parametric texture synthesis (Efros–Leung-style
//! causal neighbourhood matching).
//!
//! Each output pixel is chosen by scanning the sample image for the
//! position whose causal neighbourhood (left, up, up-left, up-right)
//! best matches what has already been synthesized. The best-so-far
//! distance and position are loop-carried state across the whole search;
//! corrupting them derails every subsequent pixel.

use crate::common::{
    build_kernel, input_base, load_u8, output_data_base, param, set_output_len, store_u8,
};
use crate::fidelity::mismatch_frac;
use crate::inputs::gray_image;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type, ValueId};

const MAX_SAMPLE: u64 = 16 * 16;
const MAX_OUT: u64 = 20 * 20;

/// Squared difference of two `I64` pixel values.
fn sqdiff(d: &mut FunctionDsl, a: ValueId, b: ValueId) -> ValueId {
    let diff = d.sub(a, b);
    d.mul(diff, diff)
}

/// The `tex_synth` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct TexSynth;

impl Workload for TexSynth {
    fn name(&self) -> &'static str {
        "tex_synth"
    }

    fn category(&self) -> Category {
        Category::Vision
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Mismatch {
            threshold_frac: 0.10,
        }
    }

    fn build_module(&self) -> Module {
        build_kernel("tex_synth", MAX_SAMPLE, MAX_OUT, &[], |d, io, _| {
            let sw = param(d, io, 0);
            let sh = param(d, io, 1);
            let ow = param(d, io, 2);
            let oh = param(d, io, 3);
            let inp = input_base(d, io);
            let out = output_data_base(d, io);
            let z = d.i64c(0);
            let one = d.i64c(1);

            // Seed row 0 and column 0 by tiling the sample.
            d.for_range(z, ow, |d, x| {
                let xm = d.srem(x, sw);
                let v = load_u8(d, inp, xm);
                store_u8(d, out, x, v);
            });
            d.for_range(z, oh, |d, y| {
                let ym = d.srem(y, sh);
                let si = d.mul(ym, sw);
                let v = load_u8(d, inp, si);
                let oi = d.mul(y, ow);
                store_u8(d, out, oi, v);
            });

            // Synthesize the interior in raster order.
            d.for_range(one, oh, |d, y| {
                let one = d.i64c(1);
                d.for_range(one, ow, |d, x| {
                    let oi = {
                        let r = d.mul(y, ow);
                        d.add(r, x)
                    };
                    // Causal neighbourhood of the output pixel.
                    let one = d.i64c(1);
                    let left_i = d.sub(oi, one);
                    let up_i = d.sub(oi, ow);
                    let upl_i = d.sub(up_i, one);
                    let n_left = load_u8(d, out, left_i);
                    let n_up = load_u8(d, out, up_i);
                    let n_upl = load_u8(d, out, upl_i);

                    let best_pos = d.declare_var(Type::I64);
                    let best_dist = d.declare_var(Type::I64);
                    let zz = d.i64c(0);
                    d.set(best_pos, zz);
                    let big = d.i64c(1 << 40);
                    d.set(best_dist, big);
                    // Search sample positions with full causal context.
                    d.for_range(one, sh, |d, sy| {
                        let one = d.i64c(1);
                        d.for_range(one, sw, |d, sx| {
                            let si = {
                                let r = d.mul(sy, sw);
                                d.add(r, sx)
                            };
                            let one = d.i64c(1);
                            let s_left = {
                                let i = d.sub(si, one);
                                load_u8(d, inp, i)
                            };
                            let s_up = {
                                let i = d.sub(si, sw);
                                load_u8(d, inp, i)
                            };
                            let s_upl = {
                                let i0 = d.sub(si, sw);
                                let i = d.sub(i0, one);
                                load_u8(d, inp, i)
                            };
                            let d1 = sqdiff(d, n_left, s_left);
                            let d2 = sqdiff(d, n_up, s_up);
                            let d3 = sqdiff(d, n_upl, s_upl);
                            let s12 = d.add(d1, d2);
                            let dist = d.add(s12, d3);
                            let bd = d.get(best_dist);
                            let better = d.icmp(IntCC::Slt, dist, bd);
                            let bp = d.get(best_pos);
                            let np = d.select(better, si, bp);
                            let ndist = d.select(better, dist, bd);
                            d.set(best_pos, np);
                            d.set(best_dist, ndist);
                        });
                    });
                    let bp = d.get(best_pos);
                    let v = load_u8(d, inp, bp);
                    store_u8(d, out, oi, v);
                });
            });
            let n = d.mul(ow, oh);
            set_output_len(d, io, n);
            let r = d.i64c(0);
            d.ret(Some(r));
        })
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (sw, sh, ow, oh, seed) = match set {
            InputSet::Train => (14usize, 14usize, 18usize, 18usize, 701),
            InputSet::Test => (12usize, 12usize, 16usize, 16usize, 702),
        };
        let img = gray_image(sw, sh, seed);
        WorkloadInput {
            params: vec![sw as i64, sh as i64, ow as i64, oh as i64],
            data: img.pixels,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        mismatch_frac(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn synthesizes_from_sample_palette() {
        let w = TexSynth;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), 16 * 16);
        // Every synthesized pixel must come from the sample image.
        let sample = gray_image(12, 12, 702).pixels;
        for (i, px) in out.iter().enumerate() {
            assert!(sample.contains(px), "pixel {i} value {px} not from sample");
        }
    }

    #[test]
    fn output_is_not_constant() {
        let w = TexSynth;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let mut vals = out.clone();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() > 8, "texture collapsed to {} values", vals.len());
    }

    #[test]
    fn deterministic() {
        let w = TexSynth;
        let m = w.build_module();
        assert_eq!(
            golden_output(&w, &m, InputSet::Train),
            golden_output(&w, &m, InputSet::Train)
        );
    }
}
