//! `g721enc` / `g721dec`: ADPCM audio codec kernels.
//!
//! Direct IR translations of the host reference ([`crate::host::adpcm_ref`]):
//! every sample updates two loop-carried state variables (`valpred` and
//! the step-table `index`) — the canonical "state variable" shape from
//! the paper's motivation. Integer-exact with the host, so encoder output
//! decodes bit-for-bit.

use crate::common::{
    build_kernel, i16s_to_bytes, imax, imin, input_base, load_i16, output_data_base, param,
    set_output_len, store_i16, store_u8,
};
use crate::fidelity::segmental_snr_i16;
use crate::host::adpcm_ref;
use crate::inputs::waveform;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::dsl::{FunctionDsl, Var};
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type, ValueId};

const MAX_SAMPLES: u64 = 4096;

fn step_table_bytes() -> Vec<u8> {
    adpcm_ref::STEP_TABLE
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

fn index_table_bytes() -> Vec<u8> {
    adpcm_ref::INDEX_TABLE
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

/// Shared decode-step: given a 4-bit `code`, update `valpred`/`index`
/// vars using the step/index tables, returning the reconstructed sample.
fn emit_decode_step(
    d: &mut FunctionDsl,
    step_tab: ValueId,
    index_tab: ValueId,
    valpred: Var,
    index: Var,
    code: ValueId,
) -> ValueId {
    let idx = d.get(index);
    let step = {
        let v = d.load_elem(Type::I32, step_tab, idx);
        d.sext(v, Type::I64)
    };
    // diffq = step>>3 (+step if bit2) (+step>>1 if bit1) (+step>>2 if bit0)
    let three = d.i64c(3);
    let diffq0 = d.ashr(step, three);
    let b4 = d.i64c(4);
    let has4 = {
        let a = d.and_(code, b4);
        let z = d.i64c(0);
        d.icmp(IntCC::Ne, a, z)
    };
    let with4 = d.add(diffq0, step);
    let diffq1 = d.select(has4, with4, diffq0);
    let b2 = d.i64c(2);
    let has2 = {
        let a = d.and_(code, b2);
        let z = d.i64c(0);
        d.icmp(IntCC::Ne, a, z)
    };
    let one = d.i64c(1);
    let half = d.ashr(step, one);
    let with2 = d.add(diffq1, half);
    let diffq2 = d.select(has2, with2, diffq1);
    let b1 = d.i64c(1);
    let has1 = {
        let a = d.and_(code, b1);
        let z = d.i64c(0);
        d.icmp(IntCC::Ne, a, z)
    };
    let two = d.i64c(2);
    let quarter = d.ashr(step, two);
    let with1 = d.add(diffq2, quarter);
    let diffq = d.select(has1, with1, diffq2);

    // Sign bit: subtract or add.
    let b8 = d.i64c(8);
    let neg = {
        let a = d.and_(code, b8);
        let z = d.i64c(0);
        d.icmp(IntCC::Ne, a, z)
    };
    let vp = d.get(valpred);
    let sub = d.sub(vp, diffq);
    let add = d.add(vp, diffq);
    let nv = d.select(neg, sub, add);
    // Clamp to i16.
    let lo = d.i64c(-32768);
    let hi = d.i64c(32767);
    let nv = imax(d, nv, lo);
    let nv = imin(d, nv, hi);
    d.set(valpred, nv);

    // index += INDEX_TABLE[code], clamped to [0, 88].
    let adj = {
        let v = d.load_elem(Type::I32, index_tab, code);
        d.sext(v, Type::I64)
    };
    let idx = d.get(index);
    let ni = d.add(idx, adj);
    let z = d.i64c(0);
    let c88 = d.i64c(88);
    let ni = imax(d, ni, z);
    let ni = imin(d, ni, c88);
    d.set(index, ni);
    d.get(valpred)
}

/// Encodes one sample (updates state vars), returning the 4-bit code.
fn emit_encode_sample(
    d: &mut FunctionDsl,
    step_tab: ValueId,
    index_tab: ValueId,
    valpred: Var,
    index: Var,
    sample: ValueId,
) -> ValueId {
    let idx = d.get(index);
    let step = {
        let v = d.load_elem(Type::I32, step_tab, idx);
        d.sext(v, Type::I64)
    };
    let vp = d.get(valpred);
    let diff = d.sub(sample, vp);
    let z = d.i64c(0);
    let is_neg = d.icmp(IntCC::Slt, diff, z);
    let eight = d.i64c(8);
    let sign = d.select(is_neg, eight, z);
    let neg_diff = d.sub(z, diff);
    let adiff = d.select(is_neg, neg_diff, diff);

    // Successive approximation against step, step/2, step/4.
    let ge1 = d.icmp(IntCC::Sge, adiff, step);
    let four = d.i64c(4);
    let c0 = d.select(ge1, four, z);
    let sub1 = d.sub(adiff, step);
    let rem1 = d.select(ge1, sub1, adiff);
    let one = d.i64c(1);
    let half = d.ashr(step, one);
    let ge2 = d.icmp(IntCC::Sge, rem1, half);
    let two = d.i64c(2);
    let c1 = d.select(ge2, two, z);
    let sub2 = d.sub(rem1, half);
    let rem2 = d.select(ge2, sub2, rem1);
    let quarter = d.ashr(step, two);
    let ge3 = d.icmp(IntCC::Sge, rem2, quarter);
    let c2 = d.select(ge3, one, z);

    let code01 = d.or_(c0, c1);
    let code012 = d.or_(code01, c2);
    let code = d.or_(code012, sign);
    // Mirror the decoder's reconstruction to keep states in sync.
    emit_decode_step(d, step_tab, index_tab, valpred, index, code);
    code
}

/// The `g721enc` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct G721Enc;

impl Workload for G721Enc {
    fn name(&self) -> &'static str {
        "g721enc"
    }

    fn category(&self) -> Category {
        Category::Audio
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::SegmentalSnr { threshold_db: 80.0 }
    }

    fn build_module(&self) -> Module {
        build_kernel(
            "g721enc",
            MAX_SAMPLES * 2,
            MAX_SAMPLES / 2,
            &[
                ("step_table", step_table_bytes()),
                ("index_table", index_table_bytes()),
            ],
            |d, io, tabs| {
                let (step_tab_a, index_tab_a) = (tabs[0], tabs[1]);
                let step_tab = d.i64c(step_tab_a as i64);
                let index_tab = d.i64c(index_tab_a as i64);
                let n = param(d, io, 0); // sample count (even)
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let valpred = d.declare_var(Type::I64);
                let index = d.declare_var(Type::I64);
                let z = d.i64c(0);
                d.set(valpred, z);
                d.set(index, z);
                let two = d.i64c(2);
                let pairs = d.sdiv(n, two);
                d.for_range(z, pairs, |d, p| {
                    let two = d.i64c(2);
                    let i0 = d.mul(p, two);
                    let s0 = load_i16(d, inp, i0);
                    let lo = emit_encode_sample(d, step_tab, index_tab, valpred, index, s0);
                    let one = d.i64c(1);
                    let i1 = d.add(i0, one);
                    let s1 = load_i16(d, inp, i1);
                    let hi = emit_encode_sample(d, step_tab, index_tab, valpred, index, s1);
                    let four = d.i64c(4);
                    let hi_shifted = d.shl(hi, four);
                    let byte = d.or_(lo, hi_shifted);
                    store_u8(d, out, p, byte);
                });
                set_output_len(d, io, pairs);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (n, seed) = match set {
            InputSet::Train => (4096usize, 301),
            InputSet::Test => (2048usize, 302),
        };
        let samples = waveform(n, seed);
        WorkloadInput {
            params: vec![n as i64],
            data: i16s_to_bytes(&samples),
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        // Decode both streams with the host decoder, then segmental SNR.
        let n = golden.len() * 2;
        let a = adpcm_ref::decode(golden, n);
        let b = adpcm_ref::decode(candidate, n);
        segmental_snr_i16(&i16s_to_bytes(&a), &i16s_to_bytes(&b))
    }
}

/// The `g721dec` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct G721Dec;

impl Workload for G721Dec {
    fn name(&self) -> &'static str {
        "g721dec"
    }

    fn category(&self) -> Category {
        Category::Audio
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::SegmentalSnr { threshold_db: 80.0 }
    }

    fn build_module(&self) -> Module {
        build_kernel(
            "g721dec",
            MAX_SAMPLES / 2,
            MAX_SAMPLES * 2,
            &[
                ("step_table", step_table_bytes()),
                ("index_table", index_table_bytes()),
            ],
            |d, io, tabs| {
                let (step_tab_a, index_tab_a) = (tabs[0], tabs[1]);
                let step_tab = d.i64c(step_tab_a as i64);
                let index_tab = d.i64c(index_tab_a as i64);
                let n = param(d, io, 0); // sample count
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let valpred = d.declare_var(Type::I64);
                let index = d.declare_var(Type::I64);
                let z = d.i64c(0);
                d.set(valpred, z);
                d.set(index, z);
                d.for_range(z, n, |d, i| {
                    let one = d.i64c(1);
                    let byte_idx = d.ashr(i, one);
                    let byte = crate::common::load_u8(d, inp, byte_idx);
                    let is_odd = d.and_(i, one);
                    let z2 = d.i64c(0);
                    let odd = d.icmp(IntCC::Ne, is_odd, z2);
                    let four = d.i64c(4);
                    let hi = d.lshr(byte, four);
                    let fifteen = d.i64c(15);
                    let lo = d.and_(byte, fifteen);
                    let code = d.select(odd, hi, lo);
                    let sample = emit_decode_step(d, step_tab, index_tab, valpred, index, code);
                    store_i16(d, out, i, sample);
                });
                let two = d.i64c(2);
                let bytes = d.mul(n, two);
                set_output_len(d, io, bytes);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (n, seed) = match set {
            InputSet::Train => (4096usize, 303),
            InputSet::Test => (2048usize, 304),
        };
        let samples = waveform(n, seed);
        let codes = adpcm_ref::encode(&samples);
        WorkloadInput {
            params: vec![n as i64],
            data: codes,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        segmental_snr_i16(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::bytes_to_i16s;
    use crate::runner::golden_output;

    #[test]
    fn kernel_encoder_matches_host_encoder() {
        let w = G721Enc;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let samples = bytes_to_i16s(&input.data);
        let host = adpcm_ref::encode(&samples);
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out, host, "kernel and host ADPCM encoders diverge");
    }

    #[test]
    fn kernel_decoder_matches_host_decoder() {
        let w = G721Dec;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let input = w.input(InputSet::Test);
        let host = adpcm_ref::decode(&input.data, 2048);
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(bytes_to_i16s(&out), host);
    }

    #[test]
    fn decoded_audio_is_close_to_source() {
        let w = G721Dec;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let orig = waveform(2048, 304);
        let snr = segmental_snr_i16(&i16s_to_bytes(&orig), &out);
        assert!(snr > 15.0, "segSNR {snr}");
    }

    #[test]
    fn enc_fidelity_scores_identical_streams_at_cap() {
        let w = G721Enc;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(w.fidelity(&out, &out), 100.0);
        assert!(w.acceptable(&out, &out));
    }
}
