//! `kmeans`: Lloyd's clustering on fixed-point feature vectors.
//!
//! Each iteration carries centroid coordinates, per-cluster accumulators,
//! and counts across the whole dataset — accumulator state variables in
//! abundance. Output is the per-point label vector; fidelity is the
//! fraction of points assigned differently from the fault-free run.

use crate::common::{
    build_kernel_scratch, input_base, load_i32, output_data_base, param, set_output_len, store_u8,
};
use crate::fidelity::class_error;
use crate::inputs::clustered_points;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type};

const MAX_N: u64 = 160;
const MAX_D: u64 = 18;
const MAX_K: u64 = 8;

/// The `kmeans` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct KMeans;

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::ClassError {
            threshold_frac: 0.10,
        }
    }

    fn build_module(&self) -> Module {
        // Scratch layout (i64 words):
        //   centroids: MAX_K * MAX_D
        //   sums:      MAX_K * MAX_D
        //   counts:    MAX_K
        let cent_words = MAX_K * MAX_D;
        let scratch_words = cent_words * 2 + MAX_K;
        build_kernel_scratch(
            "kmeans",
            MAX_N * MAX_D * 4,
            MAX_N,
            scratch_words * 8,
            &[],
            |d, io, _| {
                let n = param(d, io, 0);
                let dim = param(d, io, 1);
                let k = param(d, io, 2);
                let iters = param(d, io, 3);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let cent = d.i64c(io.scratch as i64);
                let sums = d.i64c((io.scratch + cent_words * 8) as i64);
                let counts = d.i64c((io.scratch + cent_words * 16) as i64);
                let z = d.i64c(0);

                // Initialize centroids from the first k points.
                d.for_range(z, k, |d, c| {
                    d.for_range(z, dim, |d, j| {
                        let pi = d.mul(c, dim);
                        let pij = d.add(pi, j);
                        let v = load_i32(d, inp, pij);
                        let ci = d.mul(c, dim);
                        let cij = d.add(ci, j);
                        d.store_elem(cent, cij, v);
                    });
                });

                d.for_range(z, iters, |d, _it| {
                    // Clear accumulators.
                    let z = d.i64c(0);
                    d.for_range(z, k, |d, c| {
                        d.for_range(z, dim, |d, j| {
                            let ci = d.mul(c, dim);
                            let cij = d.add(ci, j);
                            let zz = d.i64c(0);
                            d.store_elem(sums, cij, zz);
                        });
                        let zz = d.i64c(0);
                        d.store_elem(counts, c, zz);
                    });

                    // Assign + accumulate.
                    d.for_range(z, n, |d, p| {
                        let best = d.declare_var(Type::I64);
                        let bestdist = d.declare_var(Type::I64);
                        let zz = d.i64c(0);
                        d.set(best, zz);
                        let big = d.i64c(i64::MAX / 2);
                        d.set(bestdist, big);
                        d.for_range(zz, k, |d, c| {
                            let acc = d.declare_var(Type::I64);
                            let z3 = d.i64c(0);
                            d.set(acc, z3);
                            d.for_range(z3, dim, |d, j| {
                                let pi = d.mul(p, dim);
                                let pij = d.add(pi, j);
                                let x = load_i32(d, inp, pij);
                                let ci = d.mul(c, dim);
                                let cij = d.add(ci, j);
                                let cv = d.load_elem(Type::I64, cent, cij);
                                let diff = d.sub(x, cv);
                                // Scale down before squaring to avoid
                                // overflow on fixed-point features.
                                let four = d.i64c(4);
                                let sdiff = d.ashr(diff, four);
                                let sq = d.mul(sdiff, sdiff);
                                let a = d.get(acc);
                                let a2 = d.add(a, sq);
                                d.set(acc, a2);
                            });
                            let dist = d.get(acc);
                            let bd = d.get(bestdist);
                            let better = d.icmp(IntCC::Slt, dist, bd);
                            let cur_best = d.get(best);
                            let nb = d.select(better, c, cur_best);
                            let nd = d.select(better, dist, bd);
                            d.set(best, nb);
                            d.set(bestdist, nd);
                        });
                        let b = d.get(best);
                        store_u8(d, out, p, b);
                        // Accumulate into sums/counts.
                        d.for_range(zz, dim, |d, j| {
                            let pi = d.mul(p, dim);
                            let pij = d.add(pi, j);
                            let x = load_i32(d, inp, pij);
                            let bi = d.mul(b, dim);
                            let bij = d.add(bi, j);
                            let cur = d.load_elem(Type::I64, sums, bij);
                            let ns = d.add(cur, x);
                            d.store_elem(sums, bij, ns);
                        });
                        let cc = d.load_elem(Type::I64, counts, b);
                        let one = d.i64c(1);
                        let nc = d.add(cc, one);
                        d.store_elem(counts, b, nc);
                    });

                    // Recompute centroids (guarding empty clusters).
                    d.for_range(z, k, |d, c| {
                        let cc = d.load_elem(Type::I64, counts, c);
                        let zz = d.i64c(0);
                        let nonempty = d.icmp(IntCC::Sgt, cc, zz);
                        d.if_(nonempty, |d| {
                            let zz = d.i64c(0);
                            d.for_range(zz, dim, |d, j| {
                                let ci = d.mul(c, dim);
                                let cij = d.add(ci, j);
                                let s = d.load_elem(Type::I64, sums, cij);
                                let cnt = d.load_elem(Type::I64, counts, c);
                                let mean = d.sdiv(s, cnt);
                                d.store_elem(cent, cij, mean);
                            });
                        });
                    });
                });
                set_output_len(d, io, n);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        // As in Table I, the profiling (train) input is the larger one so
        // accumulator magnitudes seen in training bound the test run.
        let (n, dim, k, iters, seed) = match set {
            InputSet::Train => (140usize, 9usize, 4usize, 10i64, 401),
            InputSet::Test => (100usize, 9usize, 4usize, 10i64, 402),
        };
        let (feats, _) = clustered_points(n, dim, k, seed);
        WorkloadInput {
            params: vec![n as i64, dim as i64, k as i64, iters],
            data: crate::common::i32s_to_bytes(&feats),
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        class_error(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn clusters_match_generator_structure() {
        let w = KMeans;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), 100);
        // Points were generated round-robin from 4 clusters; k-means with
        // first-k init should group same-generator points together: check
        // that most points sharing a generator share a label.
        let mut agree = 0;
        let mut total = 0;
        for i in 0..100 {
            for j in (i + 4..100).step_by(4) {
                // same generator cluster (i % 4 == j % 4)
                if i % 4 == j % 4 {
                    total += 1;
                    if out[i] == out[j] {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree * 10 >= total * 8,
            "cluster coherence too low: {agree}/{total}"
        );
    }

    #[test]
    fn labels_use_k_values() {
        let w = KMeans;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Train);
        assert!(out.iter().all(|&l| l < 4));
        let mut distinct: Vec<u8> = out.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() >= 3, "degenerate clustering: {distinct:?}");
    }

    #[test]
    fn fidelity_is_label_mismatch() {
        let w = KMeans;
        let a = vec![0u8, 1, 2, 3];
        let mut b = a.clone();
        b[0] = 3;
        assert_eq!(w.fidelity(&a, &b), 0.25);
        assert!(!w.acceptable(&a, &b));
        assert!(w.acceptable(&a, &a));
    }
}
