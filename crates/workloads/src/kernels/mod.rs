//! The thirteen benchmark kernels, written in the soft-ft IR DSL.
//!
//! Each module defines one or two [`crate::Workload`] implementations.
//! The kernels carry the same computational skeletons as the paper's
//! benchmarks: transform codecs with loop-carried predictors and
//! bit-cursors, iterative clustering with accumulator state, and
//! neighbourhood-search synthesis — the structures whose corruption
//! causes unacceptable output changes.

pub mod g721;
pub mod h264;
pub mod jpeg;
pub mod kmeans;
pub mod mp3;
pub mod segm;
pub mod svm;
pub mod tex_synth;
pub mod tiff2bw;
