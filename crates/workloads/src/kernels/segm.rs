//! `segm`: image segmentation by intensity k-means plus label smoothing.
//!
//! Mirrors the SD-VBS image-segmentation skeleton: an iterative
//! clustering loop over pixel intensities (centroid accumulators are
//! loop-carried state) followed by a spatial smoothing pass over the
//! label matrix. Fidelity is the segment-matrix mismatch fraction.

use crate::common::{
    build_kernel_scratch, input_base, load_u8, output_data_base, param, set_output_len, store_u8,
};
use crate::fidelity::mismatch_frac;
use crate::inputs::gray_image;
use crate::{Category, FidelityMetric, InputSet, Workload, WorkloadInput};
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type};

const MAX_PIXELS: u64 = 40 * 40;
const MAX_K: u64 = 8;

/// The `segm` workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct Segm;

impl Workload for Segm {
    fn name(&self) -> &'static str {
        "segm"
    }

    fn category(&self) -> Category {
        Category::Vision
    }

    fn metric(&self) -> FidelityMetric {
        FidelityMetric::Mismatch {
            threshold_frac: 0.10,
        }
    }

    fn build_module(&self) -> Module {
        // Scratch (i64 words): centroids MAX_K | sums MAX_K | counts MAX_K,
        // then a raw label buffer of MAX_PIXELS bytes.
        let words = MAX_K * 3;
        build_kernel_scratch(
            "segm",
            MAX_PIXELS,
            MAX_PIXELS,
            words * 8 + MAX_PIXELS,
            &[],
            |d, io, _| {
                let w = param(d, io, 0);
                let h = param(d, io, 1);
                let k = param(d, io, 2);
                let iters = param(d, io, 3);
                let n = d.mul(w, h);
                let inp = input_base(d, io);
                let out = output_data_base(d, io);
                let cent = d.i64c(io.scratch as i64);
                let sums = d.i64c((io.scratch + MAX_K * 8) as i64);
                let counts = d.i64c((io.scratch + MAX_K * 16) as i64);
                let labels = d.i64c((io.scratch + words * 8) as i64);
                let z = d.i64c(0);

                // Spread initial centroids over the intensity range.
                d.for_range(z, k, |d, c| {
                    let c255 = d.i64c(255);
                    let num = d.mul(c, c255);
                    let km1 = {
                        let one = d.i64c(1);
                        let km1 = d.sub(k, one);
                        crate::common::imax(d, km1, one)
                    };
                    let v = d.sdiv(num, km1);
                    d.store_elem(cent, c, v);
                });

                d.for_range(z, iters, |d, _| {
                    let z = d.i64c(0);
                    d.for_range(z, k, |d, c| {
                        let zz = d.i64c(0);
                        d.store_elem(sums, c, zz);
                        d.store_elem(counts, c, zz);
                    });
                    // Assignment.
                    d.for_range(z, n, |d, p| {
                        let px = load_u8(d, inp, p);
                        let best = d.declare_var(Type::I64);
                        let bestdist = d.declare_var(Type::I64);
                        let zz = d.i64c(0);
                        d.set(best, zz);
                        let big = d.i64c(1 << 40);
                        d.set(bestdist, big);
                        d.for_range(zz, k, |d, c| {
                            let cv = d.load_elem(Type::I64, cent, c);
                            let diff = d.sub(px, cv);
                            let dist = d.mul(diff, diff);
                            let bd = d.get(bestdist);
                            let better = d.icmp(IntCC::Slt, dist, bd);
                            let cur_best = d.get(best);
                            let nb = d.select(better, c, cur_best);
                            let nd = d.select(better, dist, bd);
                            d.set(best, nb);
                            d.set(bestdist, nd);
                        });
                        let b = d.get(best);
                        store_u8(d, labels, p, b);
                        let s = d.load_elem(Type::I64, sums, b);
                        let ns = d.add(s, px);
                        d.store_elem(sums, b, ns);
                        let cc = d.load_elem(Type::I64, counts, b);
                        let one = d.i64c(1);
                        let nc = d.add(cc, one);
                        d.store_elem(counts, b, nc);
                    });
                    // Update.
                    d.for_range(z, k, |d, c| {
                        let cc = d.load_elem(Type::I64, counts, c);
                        let zz = d.i64c(0);
                        let nonempty = d.icmp(IntCC::Sgt, cc, zz);
                        d.if_(nonempty, |d| {
                            let s = d.load_elem(Type::I64, sums, c);
                            let cc = d.load_elem(Type::I64, counts, c);
                            let mean = d.sdiv(s, cc);
                            d.store_elem(cent, c, mean);
                        });
                    });
                });

                // Smoothing: horizontal 3-tap majority (median of labels).
                // `w - 1` is loop-invariant and hoisted, as -O2 LICM would
                // do; recomputing it per pixel would hand the profiler an
                // input-dependent "constant" and make its single-value
                // check a guaranteed false positive on other inputs.
                let one_h = d.i64c(1);
                let wm1 = d.sub(w, one_h);
                d.for_range(z, n, |d, p| {
                    let one = d.i64c(1);
                    let wv = w;
                    let x = d.srem(p, wv);
                    let l = load_u8(d, labels, p);
                    let xm = d.sub(x, one);
                    let zz = d.i64c(0);
                    let has_left = d.icmp(IntCC::Sgt, x, zz);
                    let has_right = d.icmp(IntCC::Slt, x, wm1);
                    let pm = d.sub(p, one);
                    let pp = d.add(p, one);
                    let _ = xm;
                    let lv = d.declare_var(Type::I64);
                    d.set(lv, l);
                    let both = d.and_(has_left, has_right);
                    d.if_(both, |d| {
                        let ll = load_u8(d, labels, pm);
                        let lr = load_u8(d, labels, pp);
                        // If neighbours agree with each other, adopt them.
                        let agree = d.icmp(IntCC::Eq, ll, lr);
                        let cur = d.get(lv);
                        let nv = d.select(agree, ll, cur);
                        d.set(lv, nv);
                    });
                    let v = d.get(lv);
                    store_u8(d, out, p, v);
                });
                set_output_len(d, io, n);
                let r = d.i64c(0);
                d.ret(Some(r));
            },
        )
    }

    fn input(&self, set: InputSet) -> WorkloadInput {
        let (w, h, seed) = match set {
            InputSet::Train => (36usize, 36usize, 601),
            InputSet::Test => (28usize, 28usize, 602),
        };
        let img = gray_image(w, h, seed);
        WorkloadInput {
            params: vec![w as i64, h as i64, 4, 8],
            data: img.pixels,
        }
    }

    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64 {
        mismatch_frac(golden, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::golden_output;

    #[test]
    fn segments_cover_multiple_labels() {
        let w = Segm;
        let m = w.build_module();
        softft_ir::verify::verify_module(&m).unwrap();
        let out = golden_output(&w, &m, InputSet::Test);
        assert_eq!(out.len(), 28 * 28);
        let mut labels: Vec<u8> = out.clone();
        labels.sort_unstable();
        labels.dedup();
        assert!(labels.len() >= 3, "labels {labels:?}");
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn dark_disc_and_bright_rect_separate() {
        // The test card has a dark disc and a bright rectangle; their
        // pixels should land in different segments.
        let w = Segm;
        let m = w.build_module();
        let out = golden_output(&w, &m, InputSet::Test);
        let img = gray_image(28, 28, 602);
        // Find a very dark and a very bright pixel.
        let dark = img.pixels.iter().position(|&p| p < 30).unwrap();
        let bright = img.pixels.iter().position(|&p| p > 210).unwrap();
        assert_ne!(out[dark], out[bright]);
    }

    #[test]
    fn fidelity_mismatch() {
        let w = Segm;
        let a = vec![0u8; 100];
        let mut b = a.clone();
        for x in b.iter_mut().take(5) {
            *x = 1;
        }
        assert!((w.fidelity(&a, &b) - 0.05).abs() < 1e-12);
        assert!(w.acceptable(&a, &b));
    }
}
