//! Conventions for driving kernel modules: input loading and output
//! extraction.

use crate::{InputSet, Workload, WorkloadInput};
use softft_ir::Module;
use softft_vm::interp::{Observer, SuffixObserver, Vm, VmConfig};
use softft_vm::{
    ConvergeOutcome, DecodedModule, FaultPlan, Memory, Resolution, RunResult, Snapshot,
};
use std::sync::Arc;

/// Writes a [`WorkloadInput`] into a memory image (the `params` and
/// `input` globals).
///
/// # Panics
///
/// Panics if the module lacks the conventional globals or the payload
/// exceeds their size.
pub fn write_input_mem(mem: &mut Memory, module: &Module, input: &WorkloadInput) {
    let params = module
        .global_by_name("params")
        .expect("kernel module has a `params` global");
    assert!(
        input.params.len() as u64 * 8 <= params.size,
        "too many parameter words"
    );
    let mut bytes = Vec::with_capacity(input.params.len() * 8);
    for p in &input.params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    mem.write_bytes(params.addr, &bytes);
    let inp = module
        .global_by_name("input")
        .expect("kernel module has an `input` global");
    assert!(
        input.data.len() as u64 <= inp.size,
        "input payload larger than the input global"
    );
    mem.write_bytes(inp.addr, &input.data);
}

/// Writes a [`WorkloadInput`] into a VM's memory.
///
/// # Panics
///
/// Panics if the module lacks the conventional globals or the payload
/// exceeds their size.
pub fn write_input(vm: &mut Vm<'_>, module: &Module, input: &WorkloadInput) {
    write_input_mem(&mut vm.mem, module, input);
}

/// Reads the `output` global from a memory image: a length word followed
/// by payload bytes. The length is clamped to the region size, so even a
/// corrupted length word yields a well-defined (if garbage) result.
pub fn read_output_mem(mem: &Memory, module: &Module) -> Vec<u8> {
    let out = module
        .global_by_name("output")
        .expect("kernel module has an `output` global");
    let len_bytes = mem.read_bytes(out.addr, 8);
    let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
    let cap = out.size.saturating_sub(8);
    let len = len.min(cap) as usize;
    mem.read_bytes(out.addr + 8, len).to_vec()
}

/// Reads the `output` global from a VM's memory.
pub fn read_output(vm: &Vm<'_>, module: &Module) -> Vec<u8> {
    read_output_mem(&vm.mem, module)
}

/// A prepared workload execution image: the module's pristine memory with
/// the input already written, built once and cloned per run.
///
/// Campaigns run thousands of trials against the same module+input pair;
/// rebuilding the memory image (global-initializer copying plus input
/// setup) inside every trial is pure overhead. `WorkloadImage` hoists that
/// work out of the trial loop, and is also the anchor for the
/// snapshot/resume fast path ([`WorkloadImage::run_recording`] /
/// [`WorkloadImage::resume`]).
pub struct WorkloadImage<'m> {
    module: &'m Module,
    main: softft_ir::FuncId,
    config: VmConfig,
    mem: Memory,
    /// The module's flat bytecode, decoded once per image and shared by
    /// every VM constructed from it (all campaign workers and trials).
    decoded: Arc<DecodedModule>,
}

impl<'m> WorkloadImage<'m> {
    /// Builds the pristine globals+input image for `module`, decoding the
    /// module to flat bytecode once.
    ///
    /// # Panics
    ///
    /// Panics if the module lacks a `main` function or the conventional
    /// I/O globals.
    pub fn new(module: &'m Module, input: &WorkloadInput, config: VmConfig) -> Self {
        let main = module
            .function_by_name("main")
            .expect("kernel module has a `main` function");
        let mut mem = Memory::for_module(module, config.mem_slack);
        write_input_mem(&mut mem, module, input);
        WorkloadImage {
            module,
            main,
            config,
            mem,
            decoded: Arc::new(DecodedModule::decode(module)),
        }
    }

    /// The module this image was built for.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Runs one trial from instruction 0 on a clone of the pristine
    /// image; returns the run result and the output bytes.
    pub fn run<O: Observer>(&self, obs: &mut O, fault: Option<FaultPlan>) -> (RunResult, Vec<u8>) {
        let mut vm = self.vm(self.mem.clone());
        let result = vm.run(self.main, &[], obs, fault);
        let out = read_output(&vm, self.module);
        (result, out)
    }

    /// Runs fault-free from instruction 0, capturing a checkpoint every
    /// `interval` dynamic instructions (see [`Vm::run_recording`]).
    pub fn run_recording<O: Observer>(
        &self,
        obs: &mut O,
        interval: u64,
        on_checkpoint: impl FnMut(Snapshot, &O),
    ) -> (RunResult, Vec<u8>) {
        let mut vm = self.vm(self.mem.clone());
        let result = vm.run_recording(self.main, &[], obs, interval, on_checkpoint);
        let out = read_output(&vm, self.module);
        (result, out)
    }

    /// Like [`WorkloadImage::run_recording`], but also resolves each
    /// register fault plan in `triggers` (sorted by trigger) against the
    /// live golden state, returning one [`Resolution`] per plan (see
    /// [`Vm::run_recording_resolving`]). `interval == 0` skips snapshot
    /// capture and only resolves.
    pub fn run_recording_resolving<O: Observer>(
        &self,
        obs: &mut O,
        interval: u64,
        triggers: &[FaultPlan],
        on_checkpoint: impl FnMut(Snapshot, &O),
    ) -> (RunResult, Vec<u8>, Vec<Resolution>) {
        let mut vm = self.vm(self.mem.clone());
        let (result, resolutions) =
            vm.run_recording_resolving(self.main, &[], obs, interval, triggers, on_checkpoint);
        let out = read_output(&vm, self.module);
        (result, out, resolutions)
    }

    /// Resumes one trial from `snap` instead of re-running the prefix
    /// (see [`Vm::resume_from`]); returns the run result and the output
    /// bytes.
    pub fn resume<O: Observer>(
        &self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> (RunResult, Vec<u8>) {
        let mut vm = self.vm(Memory::empty());
        let result = vm.resume_from(snap, obs, fault);
        let out = read_output(&vm, self.module);
        (result, out)
    }

    /// A reusable trial executor over this image: one per worker thread.
    pub fn trial_vm(&self) -> TrialVm<'_, 'm> {
        TrialVm {
            image: self,
            vm: self.vm(Memory::empty()),
        }
    }

    /// A VM over `mem` sharing this image's decoded bytecode.
    fn vm(&self, mem: Memory) -> Vm<'m> {
        Vm::with_decoded(self.module, self.config, mem, Arc::clone(&self.decoded))
    }
}

/// Runs trials on one [`Vm`] whose memory allocation is recycled between
/// runs. [`WorkloadImage::run`] / [`WorkloadImage::resume`] allocate (and
/// page-fault) a fresh ~1 MiB image per trial; at campaign scale that
/// fixed cost rivals the trials' own execution time, so workers hold one
/// `TrialVm` for their whole trial stream. Results are bitwise identical
/// to the one-shot paths: each trial starts by overwriting the full
/// memory image from the pristine copy or the snapshot.
pub struct TrialVm<'a, 'm> {
    image: &'a WorkloadImage<'m>,
    vm: Vm<'m>,
}

impl TrialVm<'_, '_> {
    /// Runs one trial from instruction 0 (see [`WorkloadImage::run`]).
    pub fn run<O: Observer>(
        &mut self,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> (RunResult, Vec<u8>) {
        self.vm.mem.clone_from(&self.image.mem);
        let result = self.vm.run(self.image.main, &[], obs, fault);
        let out = read_output(&self.vm, self.image.module);
        (result, out)
    }

    /// Resumes one trial from `snap` (see [`WorkloadImage::resume`]).
    pub fn resume<O: Observer>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> (RunResult, Vec<u8>) {
        let result = self.vm.resume_from(snap, obs, fault);
        let out = read_output(&self.vm, self.image.module);
        (result, out)
    }

    /// Runs one trial from instruction 0 with convergence early-exit
    /// against the golden checkpoints (see [`Vm::run_converging`]).
    /// `spin_grid > 0` arms the spin proof on that boundary grid.
    pub fn run_converging<O: SuffixObserver>(
        &mut self,
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        self.vm.mem.clone_from(&self.image.mem);
        self.vm
            .run_converging(self.image.main, &[], obs, fault, candidates, spin_grid)
    }

    /// Resumes one trial from `snap` with convergence early-exit (see
    /// [`Vm::resume_converging`]). `spin_grid > 0` arms the spin proof on
    /// that boundary grid.
    pub fn resume_converging<O: SuffixObserver>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        self.vm
            .resume_converging(snap, obs, fault, candidates, spin_grid)
    }

    /// The `output` global of the last run — only meaningful after a
    /// [`ConvergeOutcome::Done`] run (converged runs take the golden
    /// output instead).
    pub fn output(&self) -> Vec<u8> {
        read_output(&self.vm, self.image.module)
    }
}

/// Runs `module` (which must contain `main`) on the given input with an
/// observer and optional fault; returns the run result and the output
/// bytes (empty for trapped runs that never wrote a length).
pub fn run_workload<O: Observer>(
    module: &Module,
    input: &WorkloadInput,
    config: VmConfig,
    obs: &mut O,
    fault: Option<FaultPlan>,
) -> (RunResult, Vec<u8>) {
    WorkloadImage::new(module, input, config).run(obs, fault)
}

/// Convenience: build, load the given input set, run fault-free, and
/// return the output (the golden reference for fidelity scoring).
///
/// # Panics
///
/// Panics if the fault-free run does not complete — a workload bug.
pub fn golden_output(w: &dyn Workload, module: &Module, set: InputSet) -> Vec<u8> {
    let input = w.input(set);
    let (r, out) = run_workload(
        module,
        &input,
        VmConfig::default(),
        &mut softft_vm::interp::NoopObserver,
        None,
    );
    assert!(
        r.completed(),
        "fault-free run of {} must complete, got {:?}",
        w.name(),
        r.end
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{
        build_kernel, input_base, load_u8, output_data_base, set_output_len, store_u8,
    };

    fn echo_module() -> Module {
        // Copies `params[0]` input bytes to the output.
        build_kernel("echo", 256, 256, &[], |d, io, _| {
            let n = crate::common::param(d, io, 0);
            let inp = input_base(d, io);
            let out = output_data_base(d, io);
            let z = d.i64c(0);
            d.for_range(z, n, |d, i| {
                let b = load_u8(d, inp, i);
                store_u8(d, out, i, b);
            });
            set_output_len(d, io, n);
            let r = d.i64c(0);
            d.ret(Some(r));
        })
    }

    #[test]
    fn io_roundtrip() {
        let m = echo_module();
        let input = WorkloadInput {
            params: vec![5],
            data: vec![9, 8, 7, 6, 5],
        };
        let (r, out) = run_workload(
            &m,
            &input,
            VmConfig::default(),
            &mut softft_vm::interp::NoopObserver,
            None,
        );
        assert!(r.completed());
        assert_eq!(out, vec![9, 8, 7, 6, 5]);
    }

    #[test]
    fn corrupt_length_is_clamped() {
        let m = echo_module();
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(&m, VmConfig::default());
        let input = WorkloadInput {
            params: vec![1],
            data: vec![42],
        };
        write_input(&mut vm, &m, &input);
        vm.run(main, &[], &mut softft_vm::interp::NoopObserver, None);
        // Sabotage the length word.
        let out_g = m.global_by_name("output").unwrap().addr;
        vm.mem.write_bytes(out_g, &u64::MAX.to_le_bytes());
        let out = read_output(&vm, &m);
        assert_eq!(
            out.len() as u64,
            m.global_by_name("output").unwrap().size - 8
        );
    }

    #[test]
    #[should_panic(expected = "input payload larger")]
    fn oversized_input_panics() {
        let m = echo_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let input = WorkloadInput {
            params: vec![0],
            data: vec![0; 10_000],
        };
        write_input(&mut vm, &m, &input);
    }

    #[test]
    fn image_runs_are_isolated_and_resumable() {
        let m = echo_module();
        let input = WorkloadInput {
            params: vec![3],
            data: vec![1, 2, 3],
        };
        let image = WorkloadImage::new(&m, &input, VmConfig::default());
        let mut obs = softft_vm::interp::NoopObserver;

        // Two runs on the same image must not contaminate each other.
        let (r1, out1) = image.run(&mut obs, None);
        let (r2, out2) = image.run(&mut obs, None);
        assert!(r1.completed());
        assert_eq!((&r1, &out1), (&r2, &out2));
        assert_eq!(out1, vec![1, 2, 3]);

        // Recording + resuming reproduces the direct run bit-for-bit.
        let mut snaps = Vec::new();
        let (rec, rec_out) = image.run_recording(&mut obs, 7, |s, _| snaps.push(s));
        assert_eq!((&rec, &rec_out), (&r1, &out1));
        assert!(!snaps.is_empty());
        for s in &snaps {
            let (res, res_out) = image.resume(s, &mut obs, None);
            assert_eq!((&res, &res_out), (&r1, &out1), "at {}", s.dyn_count());
        }
    }
}
