//! Conventions for driving kernel modules: input loading and output
//! extraction.

use crate::{InputSet, Workload, WorkloadInput};
use softft_ir::Module;
use softft_vm::interp::{Observer, Vm, VmConfig};
use softft_vm::{FaultPlan, RunResult};

/// Writes a [`WorkloadInput`] into a VM's memory (the `params` and
/// `input` globals).
///
/// # Panics
///
/// Panics if the module lacks the conventional globals or the payload
/// exceeds their size.
pub fn write_input(vm: &mut Vm<'_>, module: &Module, input: &WorkloadInput) {
    let params = module
        .global_by_name("params")
        .expect("kernel module has a `params` global");
    assert!(
        input.params.len() as u64 * 8 <= params.size,
        "too many parameter words"
    );
    let mut bytes = Vec::with_capacity(input.params.len() * 8);
    for p in &input.params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    vm.mem.write_bytes(params.addr, &bytes);
    let inp = module
        .global_by_name("input")
        .expect("kernel module has an `input` global");
    assert!(
        input.data.len() as u64 <= inp.size,
        "input payload larger than the input global"
    );
    vm.mem.write_bytes(inp.addr, &input.data);
}

/// Reads the `output` global: a length word followed by payload bytes.
/// The length is clamped to the region size, so even a corrupted length
/// word yields a well-defined (if garbage) result.
pub fn read_output(vm: &Vm<'_>, module: &Module) -> Vec<u8> {
    let out = module
        .global_by_name("output")
        .expect("kernel module has an `output` global");
    let len_bytes = vm.mem.read_bytes(out.addr, 8);
    let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
    let cap = out.size.saturating_sub(8);
    let len = len.min(cap) as usize;
    vm.mem.read_bytes(out.addr + 8, len).to_vec()
}

/// Runs `module` (which must contain `main`) on the given input with an
/// observer and optional fault; returns the run result and the output
/// bytes (empty for trapped runs that never wrote a length).
pub fn run_workload<O: Observer>(
    module: &Module,
    input: &WorkloadInput,
    config: VmConfig,
    obs: &mut O,
    fault: Option<FaultPlan>,
) -> (RunResult, Vec<u8>) {
    let main = module
        .function_by_name("main")
        .expect("kernel module has a `main` function");
    let mut vm = Vm::new(module, config);
    write_input(&mut vm, module, input);
    let result = vm.run(main, &[], obs, fault);
    let out = read_output(&vm, module);
    (result, out)
}

/// Convenience: build, load the given input set, run fault-free, and
/// return the output (the golden reference for fidelity scoring).
///
/// # Panics
///
/// Panics if the fault-free run does not complete — a workload bug.
pub fn golden_output(w: &dyn Workload, module: &Module, set: InputSet) -> Vec<u8> {
    let input = w.input(set);
    let (r, out) = run_workload(
        module,
        &input,
        VmConfig::default(),
        &mut softft_vm::interp::NoopObserver,
        None,
    );
    assert!(
        r.completed(),
        "fault-free run of {} must complete, got {:?}",
        w.name(),
        r.end
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{
        build_kernel, input_base, load_u8, output_data_base, set_output_len, store_u8,
    };

    fn echo_module() -> Module {
        // Copies `params[0]` input bytes to the output.
        build_kernel("echo", 256, 256, &[], |d, io, _| {
            let n = crate::common::param(d, io, 0);
            let inp = input_base(d, io);
            let out = output_data_base(d, io);
            let z = d.i64c(0);
            d.for_range(z, n, |d, i| {
                let b = load_u8(d, inp, i);
                store_u8(d, out, i, b);
            });
            set_output_len(d, io, n);
            let r = d.i64c(0);
            d.ret(Some(r));
        })
    }

    #[test]
    fn io_roundtrip() {
        let m = echo_module();
        let input = WorkloadInput {
            params: vec![5],
            data: vec![9, 8, 7, 6, 5],
        };
        let (r, out) = run_workload(
            &m,
            &input,
            VmConfig::default(),
            &mut softft_vm::interp::NoopObserver,
            None,
        );
        assert!(r.completed());
        assert_eq!(out, vec![9, 8, 7, 6, 5]);
    }

    #[test]
    fn corrupt_length_is_clamped() {
        let m = echo_module();
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(&m, VmConfig::default());
        let input = WorkloadInput {
            params: vec![1],
            data: vec![42],
        };
        write_input(&mut vm, &m, &input);
        vm.run(main, &[], &mut softft_vm::interp::NoopObserver, None);
        // Sabotage the length word.
        let out_g = m.global_by_name("output").unwrap().addr;
        vm.mem.write_bytes(out_g, &u64::MAX.to_le_bytes());
        let out = read_output(&vm, &m);
        assert_eq!(
            out.len() as u64,
            m.global_by_name("output").unwrap().size - 8
        );
    }

    #[test]
    #[should_panic(expected = "input payload larger")]
    fn oversized_input_panics() {
        let m = echo_module();
        let mut vm = Vm::new(&m, VmConfig::default());
        let input = WorkloadInput {
            params: vec![0],
            data: vec![0; 10_000],
        };
        write_input(&mut vm, &m, &input);
    }
}
