//! Fidelity metrics (Table I, column 4).

/// PSNR in dB between two equal-length byte images (8-bit samples).
///
/// Returns positive infinity for identical inputs. Length mismatches —
/// which can happen when a fault corrupts an encoder's emitted length —
/// are scored over the shorter prefix with the missing tail counted as
/// maximal error, so truncated outputs rate poorly instead of panicking.
pub fn psnr_u8(a: &[u8], b: &[u8]) -> f64 {
    let n = a.len().max(b.len());
    if n == 0 {
        return f64::INFINITY;
    }
    let mut se = 0.0f64;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0) as f64;
        let y = b.get(i).copied().unwrap_or(255) as f64;
        // Missing samples are counted as maximal error (|0-255|) by the
        // asymmetric defaults above.
        let d = x - y;
        se += d * d;
    }
    let mse = se / n as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

fn as_i16s(bytes: &[u8]) -> Vec<i16> {
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect()
}

/// PSNR in dB between two 16-bit little-endian waveforms (the paper
/// scores mp3 with PSNR).
pub fn psnr_i16(a: &[u8], b: &[u8]) -> f64 {
    let xa = as_i16s(a);
    let xb = as_i16s(b);
    let n = xa.len().max(xb.len());
    if n == 0 {
        return f64::INFINITY;
    }
    let mut se = 0.0f64;
    for i in 0..n {
        let x = xa.get(i).copied().unwrap_or(0) as f64;
        let y = xb.get(i).copied().unwrap_or(i16::MAX) as f64;
        let d = x - y;
        se += d * d;
    }
    let mse = se / n as f64;
    let peak = 65535.0f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / mse).log10()
    }
}

/// Segmental SNR in dB over 16-bit little-endian waveforms: the mean of
/// per-frame SNRs (frame = 256 samples), each clamped to `[0, 100]` dB
/// (identical frames contribute the 100 dB cap, so the paper's 80 dB
/// acceptability threshold demands near-identity).
pub fn segmental_snr_i16(a: &[u8], b: &[u8]) -> f64 {
    const FRAME: usize = 256;
    const CAP: f64 = 100.0;
    let xa = as_i16s(a);
    let xb = as_i16s(b);
    let n = xa.len().max(xb.len());
    if n == 0 {
        return CAP;
    }
    let mut total = 0.0f64;
    let mut frames = 0usize;
    let mut i = 0;
    while i < n {
        let end = (i + FRAME).min(n);
        let mut sig = 0.0f64;
        let mut noise = 0.0f64;
        for k in i..end {
            let x = xa.get(k).copied().unwrap_or(0) as f64;
            let y = xb.get(k).copied().unwrap_or(i16::MAX) as f64;
            sig += x * x;
            noise += (x - y) * (x - y);
        }
        let snr = if noise == 0.0 {
            CAP
        } else if sig == 0.0 {
            0.0
        } else {
            (10.0 * (sig / noise).log10()).clamp(0.0, CAP)
        };
        total += snr;
        frames += 1;
        i = end;
    }
    total / frames as f64
}

/// Fraction of mismatching bytes between two outputs (segment matrices,
/// labels, synthesized textures). Length differences count as mismatches.
pub fn mismatch_frac(a: &[u8], b: &[u8]) -> f64 {
    let n = a.len().max(b.len());
    if n == 0 {
        return 0.0;
    }
    let mut bad = 0usize;
    for i in 0..n {
        if a.get(i) != b.get(i) {
            bad += 1;
        }
    }
    bad as f64 / n as f64
}

/// Classification-error deviation: the fraction of examples whose
/// predicted label differs from the fault-free prediction.
pub fn class_error(a: &[u8], b: &[u8]) -> f64 {
    mismatch_frac(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = vec![7u8; 64];
        assert_eq!(psnr_u8(&img, &img), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = vec![128u8; 1024];
        let mut small = a.clone();
        small[0] = 129; // one LSB
        let mut big = a.clone();
        for p in big.iter_mut().step_by(2) {
            *p = 255;
        }
        let p_small = psnr_u8(&a, &small);
        let p_big = psnr_u8(&a, &big);
        assert!(p_small > 60.0, "{p_small}");
        assert!(p_big < 20.0, "{p_big}");
        assert!(p_small > p_big);
    }

    #[test]
    fn truncated_output_scores_poorly() {
        let a = vec![100u8; 256];
        let b = vec![100u8; 64]; // truncated
        assert!(psnr_u8(&a, &b) < 15.0);
    }

    #[test]
    fn psnr_i16_identity_and_noise() {
        let a: Vec<u8> = (0..512i16).flat_map(|v| (v * 50).to_le_bytes()).collect();
        assert_eq!(psnr_i16(&a, &a), f64::INFINITY);
        let mut b = a.clone();
        b[1] ^= 0x40; // corrupt a high byte
        assert!(psnr_i16(&a, &b) < 80.0);
    }

    #[test]
    fn segsnr_caps_and_orders() {
        let a: Vec<u8> = (0..2048i16)
            .flat_map(|v| ((v % 100) * 300).to_le_bytes())
            .collect();
        assert_eq!(segmental_snr_i16(&a, &a), 100.0);
        let mut b = a.clone();
        for i in (0..b.len()).step_by(128) {
            b[i] ^= 0xFF;
        }
        let s = segmental_snr_i16(&a, &b);
        assert!(s < 80.0, "{s}");
        assert!(s >= 0.0);
    }

    #[test]
    fn mismatch_and_class_error() {
        let a = vec![1u8, 2, 3, 4];
        let b = vec![1u8, 9, 3, 4];
        assert_eq!(mismatch_frac(&a, &b), 0.25);
        assert_eq!(class_error(&a, &a), 0.0);
        // Length mismatch counts the tail as wrong.
        let c = vec![1u8, 2];
        assert_eq!(mismatch_frac(&a, &c), 0.5);
        assert_eq!(mismatch_frac(&[], &[]), 0.0);
    }
}
