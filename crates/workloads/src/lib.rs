#![warn(missing_docs)]

//! # softft-workloads
//!
//! Thirteen soft-computing benchmark kernels (Table I of the paper),
//! re-implemented in the soft-ft IR via the structured DSL, plus the
//! host-side machinery needed to run and score them:
//!
//! * [`kernels`] — the IR programs: `jpegenc`/`jpegdec`, `tiff2bw`,
//!   `segm`, `tex_synth`, `g721enc`/`g721dec`, `mp3enc`/`mp3dec`,
//!   `h264enc`/`h264dec`, `kmeans`, `svm`;
//! * [`host`] — reference codecs used to prepare kernel inputs (e.g. the
//!   bitstream a decoder kernel consumes) and to score encoder outputs
//!   (decode-then-PSNR), deliberately robust to corrupt streams;
//! * [`inputs`] — deterministic synthetic train/test inputs (the paper
//!   uses different profiling and evaluation inputs — so do we);
//! * [`fidelity`] — PSNR, segmental SNR, matrix mismatch, and
//!   classification error with the paper's thresholds;
//! * [`runner`] — conventions for loading inputs into a module's globals
//!   and reading back outputs.
//!
//! Every kernel follows one convention: three globals named `params`
//! (sixteen `i64` words), `input` (raw bytes) and `output` (a length
//! word followed by data). See [`runner`].

pub mod common;
pub mod fidelity;
pub mod host;
pub mod inputs;
pub mod kernels;
pub mod runner;

use softft_ir::Module;

/// Benchmark domain (Table I groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Image processing (jpegenc, jpegdec, tiff2bw).
    Image,
    /// Audio processing (g721enc, g721dec, mp3enc, mp3dec).
    Audio,
    /// Video processing (h264enc, h264dec).
    Video,
    /// Computer vision (segm, tex_synth).
    Vision,
    /// Machine learning (kmeans, svm).
    MachineLearning,
}

impl Category {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Image => "image",
            Category::Audio => "audio",
            Category::Video => "video",
            Category::Vision => "computer vision",
            Category::MachineLearning => "machine learning",
        }
    }
}

/// Which input to use: profiling (train) or evaluation (test).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// The profiling input (the paper profiles on one input…).
    Train,
    /// The evaluation input (…and injects faults on another).
    Test,
}

/// The fidelity metric a workload is scored with (Table I, column 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FidelityMetric {
    /// Peak signal-to-noise ratio in dB; higher is better.
    Psnr {
        /// Acceptability threshold (the paper uses 30 dB).
        threshold_db: f64,
    },
    /// Segmental SNR in dB; higher is better.
    SegmentalSnr {
        /// Acceptability threshold (the paper uses 80 dB).
        threshold_db: f64,
    },
    /// Fraction of mismatching output elements; lower is better.
    Mismatch {
        /// Acceptability threshold (the paper uses 10%).
        threshold_frac: f64,
    },
    /// Fraction of differing classifications; lower is better.
    ClassError {
        /// Acceptability threshold (the paper uses 10%).
        threshold_frac: f64,
    },
}

impl FidelityMetric {
    /// True when `score` (as produced by [`Workload::fidelity`]) is of
    /// acceptable quality under this metric.
    pub fn acceptable(&self, score: f64) -> bool {
        match *self {
            FidelityMetric::Psnr { threshold_db } => score >= threshold_db,
            FidelityMetric::SegmentalSnr { threshold_db } => score >= threshold_db,
            FidelityMetric::Mismatch { threshold_frac } => score <= threshold_frac,
            FidelityMetric::ClassError { threshold_frac } => score <= threshold_frac,
        }
    }

    /// Short unit string for reports.
    pub fn unit(&self) -> &'static str {
        match self {
            FidelityMetric::Psnr { .. } => "dB PSNR",
            FidelityMetric::SegmentalSnr { .. } => "dB segSNR",
            FidelityMetric::Mismatch { .. } => "mismatch frac",
            FidelityMetric::ClassError { .. } => "class-error frac",
        }
    }
}

/// Input payload for one run: the `params` words and the `input` bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadInput {
    /// Values for the `params` global (up to 16 words).
    pub params: Vec<i64>,
    /// Bytes for the `input` global.
    pub data: Vec<u8>,
}

/// A benchmark: builds its IR module, provides inputs, and scores
/// outputs.
pub trait Workload: Send + Sync {
    /// Benchmark name as in Table I.
    fn name(&self) -> &'static str;

    /// Benchmark domain.
    fn category(&self) -> Category;

    /// Fidelity metric and threshold.
    fn metric(&self) -> FidelityMetric;

    /// Builds the IR module (structure is input-independent; sizes are
    /// read from the `params` global at run time).
    fn build_module(&self) -> Module;

    /// The input payload for `set`.
    fn input(&self, set: InputSet) -> WorkloadInput;

    /// Scores `candidate` output bytes against the fault-free `golden`
    /// output of the *same* binary (the paper compares against fault-free
    /// execution, not against an external reference). Returns the metric
    /// value; interpret with [`FidelityMetric::acceptable`].
    fn fidelity(&self, golden: &[u8], candidate: &[u8]) -> f64;

    /// Convenience: is `candidate` acceptable relative to `golden`?
    fn acceptable(&self, golden: &[u8], candidate: &[u8]) -> bool {
        self.metric().acceptable(self.fidelity(golden, candidate))
    }
}

/// All thirteen benchmarks, in Table I order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(kernels::jpeg::JpegEnc),
        Box::new(kernels::jpeg::JpegDec),
        Box::new(kernels::tiff2bw::Tiff2Bw),
        Box::new(kernels::segm::Segm),
        Box::new(kernels::tex_synth::TexSynth),
        Box::new(kernels::g721::G721Enc),
        Box::new(kernels::g721::G721Dec),
        Box::new(kernels::mp3::Mp3Enc),
        Box::new(kernels::mp3::Mp3Dec),
        Box::new(kernels::h264::H264Enc),
        Box::new(kernels::h264::H264Dec),
        Box::new(kernels::kmeans::KMeans),
        Box::new(kernels::svm::Svm),
    ]
}

/// Looks up a workload by name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_benchmarks_registered() {
        let all = all_workloads();
        assert_eq!(all.len(), 13);
        let names: Vec<_> = all.iter().map(|w| w.name()).collect();
        for expect in [
            "jpegenc",
            "jpegdec",
            "tiff2bw",
            "segm",
            "tex_synth",
            "g721enc",
            "g721dec",
            "mp3enc",
            "mp3dec",
            "h264enc",
            "h264dec",
            "kmeans",
            "svm",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("kmeans").is_some());
        assert!(workload_by_name("doom").is_none());
    }

    #[test]
    fn metric_acceptability() {
        assert!(FidelityMetric::Psnr { threshold_db: 30.0 }.acceptable(45.0));
        assert!(!FidelityMetric::Psnr { threshold_db: 30.0 }.acceptable(20.0));
        assert!(FidelityMetric::Mismatch {
            threshold_frac: 0.1
        }
        .acceptable(0.05));
        assert!(!FidelityMetric::Mismatch {
            threshold_frac: 0.1
        }
        .acceptable(0.2));
        assert!(FidelityMetric::ClassError {
            threshold_frac: 0.1
        }
        .acceptable(0.0));
        assert!(FidelityMetric::SegmentalSnr { threshold_db: 80.0 }.acceptable(100.0));
    }

    #[test]
    fn categories_have_two_benchmarks_each_at_least() {
        use std::collections::HashMap;
        let mut by_cat: HashMap<&'static str, usize> = HashMap::new();
        for w in all_workloads() {
            *by_cat.entry(w.category().label()).or_default() += 1;
        }
        for (cat, n) in by_cat {
            assert!(n >= 2, "category {cat} has only {n} benchmarks");
        }
    }
}
