//! "SoftH264": an intra-only 4×4 block video codec in the shape of the
//! H.264 intra path — DC intra prediction from reconstructed neighbours,
//! the standard 4×4 integer core transform, scalar quantization, and
//! run-level coefficient coding. The prediction feedback loop makes the
//! reconstructed-pixel state loop-carried, exactly the error-snowball
//! structure the paper targets in video codecs.
//!
//! Format:
//! ```text
//! u16 width | u16 height | u16 frames | per frame, per 4×4 block:
//!   run-level pairs (u8 run, i8 level) in raster coefficient order,
//!   terminated by (0,0)
//! ```
//! All arithmetic is integer-exact, so the host and kernel versions
//! interoperate bit-for-bit.

/// Quantization step for coefficient quantization.
pub const QSTEP: i32 = 20;

#[inline]
fn wht_butterfly(a: i32, b: i32, c: i32, d: i32) -> (i32, i32, i32, i32) {
    (a + b + c + d, a + b - c - d, a - b - c + d, a - b + c - d)
}

/// Forward 4×4 Walsh–Hadamard transform (the transform H.264 applies to
/// DC blocks; used here for all blocks because `H` is symmetric with
/// `H·H = 4I`, making the integer inverse exact without the standard's
/// position-dependent rescaling matrices).
pub fn fwd4x4(block: &[i32; 16]) -> [i32; 16] {
    let mut tmp = [0i32; 16];
    for r in 0..4 {
        let (t0, t1, t2, t3) = wht_butterfly(
            block[r * 4],
            block[r * 4 + 1],
            block[r * 4 + 2],
            block[r * 4 + 3],
        );
        tmp[r * 4] = t0;
        tmp[r * 4 + 1] = t1;
        tmp[r * 4 + 2] = t2;
        tmp[r * 4 + 3] = t3;
    }
    let mut out = [0i32; 16];
    for cidx in 0..4 {
        let (t0, t1, t2, t3) =
            wht_butterfly(tmp[cidx], tmp[4 + cidx], tmp[8 + cidx], tmp[12 + cidx]);
        out[cidx] = t0;
        out[4 + cidx] = t1;
        out[8 + cidx] = t2;
        out[12 + cidx] = t3;
    }
    out
}

/// Inverse 4×4 WHT: the same butterfly twice, then `(v + 8) >> 4`
/// (`H Y H = 16 X`), exactly recovering unquantized inputs.
pub fn inv4x4(coef: &[i32; 16]) -> [i32; 16] {
    let mut tmp = [0i32; 16];
    for r in 0..4 {
        let (t0, t1, t2, t3) = wht_butterfly(
            coef[r * 4],
            coef[r * 4 + 1],
            coef[r * 4 + 2],
            coef[r * 4 + 3],
        );
        tmp[r * 4] = t0;
        tmp[r * 4 + 1] = t1;
        tmp[r * 4 + 2] = t2;
        tmp[r * 4 + 3] = t3;
    }
    let mut out = [0i32; 16];
    for cidx in 0..4 {
        let (t0, t1, t2, t3) =
            wht_butterfly(tmp[cidx], tmp[4 + cidx], tmp[8 + cidx], tmp[12 + cidx]);
        out[cidx] = (t0 + 8) >> 4;
        out[4 + cidx] = (t1 + 8) >> 4;
        out[8 + cidx] = (t2 + 8) >> 4;
        out[12 + cidx] = (t3 + 8) >> 4;
    }
    out
}

fn dc_predict(recon: &[u8], w: usize, bx: usize, by: usize) -> i32 {
    // Mean of the available top row and left column of reconstructed
    // neighbours; 128 when neither exists (top-left block).
    let mut sum = 0i32;
    let mut count = 0i32;
    if by > 0 {
        for x in 0..4 {
            sum += recon[(by - 1) * w + bx + x] as i32;
            count += 1;
        }
    }
    if bx > 0 {
        for y in 0..4 {
            sum += recon[(by + y) * w + bx - 1] as i32;
            count += 1;
        }
    }
    if count == 0 {
        128
    } else {
        (sum + count / 2) / count
    }
}

/// Encodes `frames` grayscale frames of `w × h` (multiples of 4).
///
/// # Panics
///
/// Panics on mis-sized input.
pub fn encode(frames_px: &[Vec<u8>], w: usize, h: usize) -> Vec<u8> {
    assert!(w.is_multiple_of(4) && h.is_multiple_of(4));
    let mut out = Vec::new();
    out.extend_from_slice(&(w as u16).to_le_bytes());
    out.extend_from_slice(&(h as u16).to_le_bytes());
    out.extend_from_slice(&(frames_px.len() as u16).to_le_bytes());
    for px in frames_px {
        assert_eq!(px.len(), w * h);
        let mut recon = vec![0u8; w * h];
        for by in (0..h).step_by(4) {
            for bx in (0..w).step_by(4) {
                let pred = dc_predict(&recon, w, bx, by);
                let mut resid = [0i32; 16];
                for y in 0..4 {
                    for x in 0..4 {
                        resid[y * 4 + x] = px[(by + y) * w + bx + x] as i32 - pred;
                    }
                }
                let coef = fwd4x4(&resid);
                let mut q = [0i32; 16];
                for i in 0..16 {
                    let c = coef[i];
                    q[i] = if c >= 0 {
                        (c + QSTEP / 2) / QSTEP
                    } else {
                        -((-c + QSTEP / 2) / QSTEP)
                    };
                }
                // Run-level code in raster order.
                let mut run = 0u8;
                for &v in &q {
                    let lv = v.clamp(-127, 127) as i8;
                    if lv == 0 {
                        run += 1;
                    } else {
                        out.push(run);
                        out.push(lv as u8);
                        run = 0;
                    }
                }
                out.push(0);
                out.push(0);
                // Reconstruct for subsequent predictions (decoder mirror).
                let deq: [i32; 16] = std::array::from_fn(|i| q[i] * QSTEP);
                let rec = inv4x4(&deq);
                for y in 0..4 {
                    for x in 0..4 {
                        let v = (rec[y * 4 + x] + pred).clamp(0, 255) as u8;
                        recon[(by + y) * w + bx + x] = v;
                    }
                }
            }
        }
    }
    out
}

/// Decodes all frames, returning `(frames, w, h)`. Robust to corrupt and
/// truncated streams (missing blocks decode from all-zero residuals).
pub fn decode(stream: &[u8]) -> (Vec<Vec<u8>>, usize, usize) {
    if stream.len() < 6 {
        return (Vec::new(), 0, 0);
    }
    let w = u16::from_le_bytes([stream[0], stream[1]]) as usize;
    let h = u16::from_le_bytes([stream[2], stream[3]]) as usize;
    let nf = u16::from_le_bytes([stream[4], stream[5]]) as usize;
    if w == 0
        || h == 0
        || !w.is_multiple_of(4)
        || !h.is_multiple_of(4)
        || w > 4096
        || h > 4096
        || nf > 64
    {
        return (Vec::new(), 0, 0);
    }
    let mut frames = Vec::with_capacity(nf);
    let mut pos = 6usize;
    for _ in 0..nf {
        let mut recon = vec![0u8; w * h];
        for by in (0..h).step_by(4) {
            for bx in (0..w).step_by(4) {
                let mut q = [0i32; 16];
                let mut idx = 0usize;
                loop {
                    if pos + 2 > stream.len() {
                        break;
                    }
                    let run = stream[pos] as usize;
                    let level = stream[pos + 1] as i8 as i32;
                    pos += 2;
                    if run == 0 && level == 0 {
                        break;
                    }
                    idx += run;
                    if idx >= 16 {
                        break;
                    }
                    q[idx] = level;
                    idx += 1;
                    if idx > 16 {
                        break;
                    }
                }
                let pred = dc_predict(&recon, w, bx, by);
                let deq: [i32; 16] = std::array::from_fn(|i| q[i] * QSTEP);
                let rec = inv4x4(&deq);
                for y in 0..4 {
                    for x in 0..4 {
                        let v = (rec[y * 4 + x] + pred).clamp(0, 255) as u8;
                        recon[(by + y) * w + bx + x] = v;
                    }
                }
            }
        }
        frames.push(recon);
    }
    (frames, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::psnr_u8;
    use crate::inputs::gray_image;

    #[test]
    fn transform_roundtrip_is_near_exact() {
        let mut b = [0i32; 16];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i32 * 13) % 100 - 50;
        }
        let c = fwd4x4(&b);
        let back = inv4x4(&c);
        for i in 0..16 {
            assert!(
                (back[i] - b[i]).abs() <= 1,
                "idx {i}: {} vs {}",
                back[i],
                b[i]
            );
        }
    }

    #[test]
    fn video_roundtrip_quality() {
        let f1 = gray_image(32, 32, 10).pixels;
        let f2 = gray_image(32, 32, 11).pixels;
        let stream = encode(&[f1.clone(), f2.clone()], 32, 32);
        let (dec, w, h) = decode(&stream);
        assert_eq!((w, h), (32, 32));
        assert_eq!(dec.len(), 2);
        for (orig, got) in [(&f1, &dec[0]), (&f2, &dec[1])] {
            let p = psnr_u8(orig, got);
            assert!(p > 28.0, "frame PSNR {p}");
        }
    }

    #[test]
    fn encoder_decoder_prediction_loops_agree() {
        // A flat frame should decode to nearly the same flat frame — DC
        // prediction must chain identically in both directions.
        let px = vec![77u8; 16 * 16];
        let stream = encode(std::slice::from_ref(&px), 16, 16);
        let (dec, _, _) = decode(&stream);
        for &v in &dec[0] {
            assert!((v as i32 - 77).abs() <= 2, "{v}");
        }
    }

    #[test]
    fn corrupt_stream_is_graceful() {
        let px = gray_image(16, 16, 12).pixels;
        let mut stream = encode(&[px], 16, 16);
        for i in (8..stream.len()).step_by(5) {
            stream[i] ^= 0xA5;
        }
        let (dec, w, h) = decode(&stream);
        assert_eq!((w, h), (16, 16));
        assert_eq!(dec.len(), 1);
        assert_eq!(decode(&stream[..3]).1, 0);
    }
}
