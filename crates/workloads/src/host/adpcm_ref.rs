//! IMA-style ADPCM codec (the mediabench `g721` stand-in).
//!
//! Structurally the same predictor/step-adaptation loop as CCITT G.721:
//! the encoder and decoder each carry two loop-state variables — the
//! predicted value and the step-size index — across every sample, which
//! is precisely the "state variable" shape the paper protects.
//!
//! Format: raw 4-bit codes, two per byte (low nibble first). The decoder
//! needs the sample count from context (our kernels pass it via params).

/// Step-size table (89 entries, standard IMA progression).
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 4-bit code.
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Encoder/decoder state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdpcmState {
    /// Predicted sample value.
    pub valpred: i32,
    /// Index into [`STEP_TABLE`].
    pub index: i32,
}

fn encode_sample(state: &mut AdpcmState, sample: i16) -> u8 {
    let step = STEP_TABLE[state.index as usize];
    let mut diff = sample as i32 - state.valpred;
    let sign = if diff < 0 { 8u8 } else { 0 };
    if diff < 0 {
        diff = -diff;
    }
    let mut code = 0u8;
    let mut tempstep = step;
    if diff >= tempstep {
        code |= 4;
        diff -= tempstep;
    }
    tempstep >>= 1;
    if diff >= tempstep {
        code |= 2;
        diff -= tempstep;
    }
    tempstep >>= 1;
    if diff >= tempstep {
        code |= 1;
    }
    let code = code | sign;
    decode_step(state, code); // encoder mirrors the decoder's reconstruction
    code
}

fn decode_step(state: &mut AdpcmState, code: u8) -> i16 {
    let step = STEP_TABLE[state.index as usize];
    let mut diffq = step >> 3;
    if code & 4 != 0 {
        diffq += step;
    }
    if code & 2 != 0 {
        diffq += step >> 1;
    }
    if code & 1 != 0 {
        diffq += step >> 2;
    }
    if code & 8 != 0 {
        state.valpred -= diffq;
    } else {
        state.valpred += diffq;
    }
    state.valpred = state.valpred.clamp(i16::MIN as i32, i16::MAX as i32);
    state.index = (state.index + INDEX_TABLE[code as usize]).clamp(0, 88);
    state.valpred as i16
}

/// Encodes 16-bit samples into packed 4-bit codes (two per byte, low
/// nibble first).
pub fn encode(samples: &[i16]) -> Vec<u8> {
    let mut state = AdpcmState::default();
    let mut out = Vec::with_capacity(samples.len().div_ceil(2));
    let mut pending: Option<u8> = None;
    for &s in samples {
        let code = encode_sample(&mut state, s);
        match pending.take() {
            None => pending = Some(code),
            Some(lo) => out.push(lo | (code << 4)),
        }
    }
    if let Some(lo) = pending {
        out.push(lo);
    }
    out
}

/// Decodes `n` samples from packed codes (robust to short input: missing
/// codes decode as zeros).
pub fn decode(codes: &[u8], n: usize) -> Vec<i16> {
    let mut state = AdpcmState::default();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = codes.get(i / 2).copied().unwrap_or(0);
        let code = if i % 2 == 0 { byte & 0xF } else { byte >> 4 };
        out.push(decode_step(&mut state, code));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::i16s_to_bytes;
    use crate::fidelity::segmental_snr_i16;
    use crate::inputs::waveform;

    #[test]
    fn roundtrip_is_close() {
        let samples = waveform(4096, 1);
        let codes = encode(&samples);
        assert_eq!(codes.len(), 2048);
        let dec = decode(&codes, samples.len());
        let snr = segmental_snr_i16(&i16s_to_bytes(&samples), &i16s_to_bytes(&dec));
        assert!(snr > 18.0, "ADPCM roundtrip segSNR {snr}");
    }

    #[test]
    fn state_adapts_step_size() {
        // A loud burst should push the index up.
        let mut samples = vec![0i16; 64];
        samples.extend((0..64).map(|i| if i % 2 == 0 { 20000 } else { -20000 }));
        let mut state = AdpcmState::default();
        for &s in &samples {
            encode_sample(&mut state, s);
        }
        assert!(state.index > 40, "index {}", state.index);
    }

    #[test]
    fn corrupt_codes_decode_without_panic() {
        let samples = waveform(1024, 2);
        let mut codes = encode(&samples);
        for c in codes.iter_mut().step_by(3) {
            *c ^= 0xFF;
        }
        let dec = decode(&codes, 1024);
        assert_eq!(dec.len(), 1024);
    }

    #[test]
    fn short_input_pads_with_silence_codes() {
        let dec = decode(&[0x11], 8);
        assert_eq!(dec.len(), 8);
    }

    #[test]
    fn encoder_decoder_state_symmetry() {
        // The encoder's internal reconstruction must equal the decoder's.
        let samples = waveform(512, 3);
        let codes = encode(&samples);
        let dec = decode(&codes, samples.len());
        // Re-encode the decoded signal: states should track closely
        // (identical first code sequence up to quantization stability).
        let codes2 = encode(&dec);
        let same = codes.iter().zip(&codes2).filter(|(a, b)| a == b).count();
        assert!(same * 10 > codes.len() * 5, "{same}/{}", codes.len());
    }
}
