//! "SoftJPEG": a grayscale 8×8 block-transform codec in the shape of the
//! JPEG baseline path (DCT → quantization → zigzag → DC-delta + AC
//! run-level coding), small enough to re-express in the IR DSL but with
//! the same computational skeleton — including the DC predictor, a
//! loop-carried state variable exactly like the paper's motivating
//! examples.
//!
//! Format:
//! ```text
//! u16 width (LE) | u16 height (LE) | blocks in raster order:
//!   i16 dc_delta (LE) | AC run-level pairs (u8 run, i8 level) | (0,0) EOB
//! ```

/// Quantization table (luma-like, flattened zigzag order).
pub const QTABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8×8 block.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

fn dct8_coeff(k: usize, n: usize) -> f64 {
    let c = if k == 0 {
        (1.0f64 / 8.0).sqrt()
    } else {
        (2.0f64 / 8.0).sqrt()
    };
    c * ((std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64) / 16.0).cos()
}

/// Forward 8×8 DCT-II on a block of centered samples (`pixel - 128`).
pub fn fdct8x8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += block[y * 8 + x] * dct8_coeff(u, y) * dct8_coeff(v, x);
                }
            }
            out[u * 8 + v] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT.
pub fn idct8x8(coef: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                for v in 0..8 {
                    acc += coef[u * 8 + v] * dct8_coeff(u, y) * dct8_coeff(v, x);
                }
            }
            out[y * 8 + x] = acc;
        }
    }
    out
}

/// Encodes a grayscale image (dimensions must be multiples of 8).
///
/// # Panics
///
/// Panics if `w`/`h` are not multiples of 8 or `pixels` is mis-sized.
pub fn encode(pixels: &[u8], w: usize, h: usize) -> Vec<u8> {
    assert!(
        w.is_multiple_of(8) && h.is_multiple_of(8),
        "dimensions must be multiples of 8"
    );
    assert_eq!(pixels.len(), w * h);
    let mut out = Vec::new();
    out.extend_from_slice(&(w as u16).to_le_bytes());
    out.extend_from_slice(&(h as u16).to_le_bytes());
    let mut prev_dc: i32 = 0;
    for by in (0..h).step_by(8) {
        for bx in (0..w).step_by(8) {
            let mut block = [0.0f64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = pixels[(by + y) * w + bx + x] as f64 - 128.0;
                }
            }
            let coef = fdct8x8(&block);
            let mut q = [0i32; 64];
            for i in 0..64 {
                q[i] = (coef[i] / QTABLE[i] as f64).round() as i32;
            }
            // DC delta.
            let dc = q[0].clamp(-32768, 32767);
            let delta = (dc - prev_dc).clamp(-32768, 32767) as i16;
            prev_dc = dc;
            out.extend_from_slice(&delta.to_le_bytes());
            // AC run-level in zigzag order (skipping index 0).
            let mut run = 0u8;
            for &zi in ZIGZAG.iter().skip(1) {
                let level = q[zi].clamp(-127, 127) as i8;
                if level == 0 {
                    if run == 255 {
                        // Emit a max-run zero level to reset the counter.
                        out.push(255);
                        out.push(1); // level 1 placeholder never happens at run 255 in practice
                        run = 0;
                    } else {
                        run += 1;
                    }
                } else {
                    out.push(run);
                    out.push(level as u8);
                    run = 0;
                }
            }
            out.push(0);
            out.push(0); // EOB
        }
    }
    out
}

/// Decodes a SoftJPEG stream, returning `(pixels, w, h)`. Corrupt streams
/// decode to *something* of the header-declared size (clamped to 4096²);
/// truncated data yields gray blocks.
pub fn decode(stream: &[u8]) -> (Vec<u8>, usize, usize) {
    if stream.len() < 4 {
        return (Vec::new(), 0, 0);
    }
    let w = u16::from_le_bytes([stream[0], stream[1]]) as usize;
    let h = u16::from_le_bytes([stream[2], stream[3]]) as usize;
    let (w, h) = (w.min(4096), h.min(4096));
    if w == 0 || h == 0 || w % 8 != 0 || h % 8 != 0 {
        return (Vec::new(), 0, 0);
    }
    let mut pixels = vec![128u8; w * h];
    let mut pos = 4usize;
    let mut prev_dc: i32 = 0;
    'blocks: for by in (0..h).step_by(8) {
        for bx in (0..w).step_by(8) {
            if pos + 2 > stream.len() {
                break 'blocks;
            }
            let delta = i16::from_le_bytes([stream[pos], stream[pos + 1]]) as i32;
            pos += 2;
            let dc = prev_dc.wrapping_add(delta);
            prev_dc = dc;
            let mut q = [0i32; 64];
            q[0] = dc;
            let mut zi = 1usize;
            loop {
                if pos + 2 > stream.len() {
                    break 'blocks;
                }
                let run = stream[pos] as usize;
                let level = stream[pos + 1] as i8 as i32;
                pos += 2;
                if run == 0 && level == 0 {
                    break; // EOB
                }
                zi += run;
                if zi >= 64 {
                    break; // corrupt run — drop the rest of the block
                }
                q[ZIGZAG[zi]] = level;
                zi += 1;
                if zi >= 64 {
                    break;
                }
            }
            let mut coef = [0.0f64; 64];
            for i in 0..64 {
                // Clamp dequantized coefficients so corrupt DC deltas
                // cannot produce non-finite pixels.
                coef[i] = (q[i].clamp(-20000, 20000) * QTABLE[i]) as f64;
            }
            let block = idct8x8(&coef);
            for y in 0..8 {
                for x in 0..8 {
                    let v = (block[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                    pixels[(by + y) * w + bx + x] = v;
                }
            }
        }
    }
    (pixels, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::psnr_u8;
    use crate::inputs::gray_image;

    #[test]
    fn roundtrip_is_high_fidelity() {
        let img = gray_image(48, 48, 5);
        let stream = encode(&img.pixels, 48, 48);
        let (dec, w, h) = decode(&stream);
        assert_eq!((w, h), (48, 48));
        let p = psnr_u8(&img.pixels, &dec);
        assert!(p > 30.0, "roundtrip PSNR {p}");
    }

    #[test]
    fn compression_actually_compresses() {
        let img = gray_image(64, 64, 6);
        let stream = encode(&img.pixels, 64, 64);
        assert!(
            stream.len() < img.pixels.len(),
            "{} !< {}",
            stream.len(),
            img.pixels.len()
        );
    }

    #[test]
    fn corrupt_stream_decodes_gracefully() {
        let img = gray_image(32, 32, 7);
        let mut stream = encode(&img.pixels, 32, 32);
        for i in (10..stream.len()).step_by(7) {
            stream[i] ^= 0x55;
        }
        let (dec, w, h) = decode(&stream);
        assert_eq!((w, h), (32, 32));
        assert_eq!(dec.len(), 32 * 32);
        // Quality should be visibly worse than a clean roundtrip.
        let clean = decode(&encode(&img.pixels, 32, 32)).0;
        assert!(psnr_u8(&clean, &dec) < 40.0);
    }

    #[test]
    fn truncated_and_empty_streams() {
        let img = gray_image(16, 16, 8);
        let stream = encode(&img.pixels, 16, 16);
        let (dec, w, h) = decode(&stream[..stream.len() / 3]);
        assert_eq!((w, h), (16, 16));
        assert_eq!(dec.len(), 16 * 16);
        assert_eq!(decode(&[]).1, 0);
        assert_eq!(decode(&[1, 2, 3]).1, 0);
    }

    #[test]
    fn dct_is_invertible() {
        let mut block = [0.0f64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as f64 - 128.0;
        }
        let back = idct8x8(&fdct8x8(&block));
        for i in 0..64 {
            assert!((block[i] - back[i]).abs() < 1e-9, "idx {i}");
        }
    }

    #[test]
    fn dc_delta_coding_carries_state() {
        // Two blocks with very different means must still roundtrip,
        // proving the decoder integrates DC deltas correctly.
        let mut pixels = vec![0u8; 16 * 8];
        for y in 0..8 {
            for x in 0..8 {
                pixels[y * 16 + x] = 20;
                pixels[y * 16 + 8 + x] = 230;
            }
        }
        let stream = encode(&pixels, 16, 8);
        let (dec, _, _) = decode(&stream);
        let dec = &dec;
        let left_mean: f64 = (0..8)
            .flat_map(|y| (0..8).map(move |x| dec[y * 16 + x] as f64))
            .sum::<f64>()
            / 64.0;
        let right_mean: f64 = (0..8)
            .flat_map(|y| (8..16).map(move |x| dec[y * 16 + x] as f64))
            .sum::<f64>()
            / 64.0;
        assert!(left_mean < 60.0, "{left_mean}");
        assert!(right_mean > 190.0, "{right_mean}");
    }
}
