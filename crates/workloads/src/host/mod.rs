//! Host-side reference codecs.
//!
//! Decoder kernels consume bitstreams that these encoders produce;
//! encoder kernels produce bitstreams that these decoders score
//! (decode-then-PSNR). All decoders here are hardened against corrupt
//! streams — a faulty kernel run can emit arbitrary bytes, and scoring
//! must degrade gracefully rather than panic.

pub mod adpcm_ref;
pub mod h264_ref;
pub mod jpeg_ref;
pub mod subband_ref;
