//! "SoftMP3": a frame-based transform audio codec in the shape of an MP3
//! granule path — 32-sample frames, a 32-point DCT-II filterbank, a
//! per-frame global gain (chosen from the frame maximum, a loop-carried
//! reduction), and 8-bit coefficient quantization.
//!
//! Format, per frame:
//! ```text
//! u8 exponent | 32 × i8 quantized coefficients
//! ```
//! The coefficient scale is `2^exponent / 127`, so reconstruction is
//! `q * 2^exp / 127` — all integer/shift math in the kernel version.

/// Frame size in samples.
pub const FRAME: usize = 32;

/// Fixed-point DCT-II basis, Q14: `round(cos(pi*(2n+1)k/64) * 2^14)`,
/// row-major `k*32 + n`. Shared with the IR kernels as a data table.
pub fn dct_table_q14() -> Vec<i16> {
    let mut t = Vec::with_capacity(FRAME * FRAME);
    for k in 0..FRAME {
        for n in 0..FRAME {
            let v = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 64.0).cos();
            t.push((v * 16384.0).round() as i16);
        }
    }
    t
}

fn dct32(frame: &[i32; FRAME], table: &[i16]) -> [i64; FRAME] {
    let mut out = [0i64; FRAME];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for n in 0..FRAME {
            acc += frame[n] as i64 * table[k * FRAME + n] as i64;
        }
        *o = acc >> 14;
    }
    out
}

fn idct32(coef: &[i32; FRAME], table: &[i16]) -> [i64; FRAME] {
    // DCT-III with the k=0 halving, scaled by 2/N.
    let mut out = [0i64; FRAME];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = (coef[0] as i64 * 16384) >> 1;
        for k in 1..FRAME {
            acc += coef[k] as i64 * table[k * FRAME + n] as i64;
        }
        *o = (acc >> 14) * 2 / FRAME as i64;
    }
    out
}

/// Encodes 16-bit samples (length padded up to a frame multiple with
/// zeros).
pub fn encode(samples: &[i16]) -> Vec<u8> {
    let table = dct_table_q14();
    let frames = samples.len().div_ceil(FRAME);
    let mut out = Vec::with_capacity(frames * (1 + FRAME));
    for f in 0..frames {
        let mut frame = [0i32; FRAME];
        for (n, slot) in frame.iter_mut().enumerate() {
            *slot = samples.get(f * FRAME + n).copied().unwrap_or(0) as i32;
        }
        let coef = dct32(&frame, &table);
        let maxmag = coef.iter().map(|c| c.unsigned_abs()).max().unwrap_or(0);
        // Smallest exponent with 2^exp >= maxmag (loop-carried search in
        // the kernel version).
        let mut exp = 0u8;
        while (1u64 << exp) < maxmag.max(1) && exp < 62 {
            exp += 1;
        }
        out.push(exp);
        let scale = 1i64 << exp;
        for c in coef {
            let q = (c * 127 / scale).clamp(-127, 127) as i8;
            out.push(q as u8);
        }
    }
    out
}

/// Decodes to `n` samples (robust to truncated/corrupt streams: missing
/// frames decode to silence, exponents are clamped).
pub fn decode(stream: &[u8], n: usize) -> Vec<i16> {
    let table = dct_table_q14();
    let frames = n.div_ceil(FRAME);
    let mut out = Vec::with_capacity(n);
    for f in 0..frames {
        let base = f * (1 + FRAME);
        let exp = stream.get(base).copied().unwrap_or(0).min(62);
        let scale = 1i64 << exp;
        let mut coef = [0i32; FRAME];
        for (k, c) in coef.iter_mut().enumerate() {
            let q = stream.get(base + 1 + k).copied().unwrap_or(0) as i8 as i128;
            // Wide arithmetic + clamp: a corrupt exponent must not
            // overflow, just saturate to a garbage-but-finite frame.
            let v = (q * scale as i128) / 127;
            *c = v.clamp(i32::MIN as i128, i32::MAX as i128) as i32;
        }
        let frame = idct32(&coef, &table);
        for v in frame {
            if out.len() < n {
                out.push(v.clamp(i16::MIN as i64, i16::MAX as i64) as i16);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::i16s_to_bytes;
    use crate::fidelity::psnr_i16;
    use crate::inputs::waveform;

    #[test]
    fn roundtrip_is_reasonable_quality() {
        let samples = waveform(2048, 4);
        let stream = encode(&samples);
        let dec = decode(&stream, samples.len());
        let p = psnr_i16(&i16s_to_bytes(&samples), &i16s_to_bytes(&dec));
        assert!(p > 30.0, "SoftMP3 roundtrip PSNR {p}");
    }

    #[test]
    fn silence_encodes_to_zero_coefficients() {
        let samples = vec![0i16; FRAME * 2];
        let stream = encode(&samples);
        let dec = decode(&stream, samples.len());
        assert!(dec.iter().all(|&v| v.abs() < 4), "{dec:?}");
    }

    #[test]
    fn corrupt_exponent_is_clamped() {
        let samples = waveform(FRAME * 4, 5);
        let mut stream = encode(&samples);
        stream[0] = 0xFF; // absurd exponent
        let dec = decode(&stream, samples.len());
        assert_eq!(dec.len(), samples.len()); // no panic, silence-ish frame
    }

    #[test]
    fn truncated_stream_decodes_padded() {
        let samples = waveform(FRAME * 4, 6);
        let stream = encode(&samples);
        let dec = decode(&stream[..stream.len() / 2], samples.len());
        assert_eq!(dec.len(), samples.len());
    }

    #[test]
    fn dct_identity_on_dc() {
        let table = dct_table_q14();
        let frame = [1000i32; FRAME];
        let coef = dct32(&frame, &table);
        // Energy concentrates in k=0.
        assert!(coef[0].abs() > 10 * coef[1].abs().max(1));
        let mut c32 = [0i32; FRAME];
        for (i, c) in coef.iter().enumerate() {
            c32[i] = *c as i32;
        }
        let back = idct32(&c32, &table);
        for v in back {
            assert!((v - 1000).abs() < 20, "{v}");
        }
    }
}
