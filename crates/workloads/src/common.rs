//! Shared DSL helpers and the kernel module convention.

use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type, ValueId};

/// Addresses of the conventional globals of a kernel module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelIo {
    /// Base of the `params` global (sixteen `i64` words).
    pub params: u64,
    /// Base of the `input` global.
    pub input: u64,
    /// Base of the `output` global (a `u64` length word, then data).
    pub output: u64,
    /// Base of the zero-initialized `scratch` global (0 when absent).
    pub scratch: u64,
}

/// Number of `i64` parameter words every kernel module reserves.
pub const PARAM_WORDS: u64 = 16;

/// Builds a kernel module with the conventional `params`/`input`/`output`
/// globals plus any extra named data tables, then constructs `main` with
/// the DSL.
pub fn build_kernel(
    name: &str,
    input_size: u64,
    output_size: u64,
    tables: &[(&str, Vec<u8>)],
    body: impl FnOnce(&mut FunctionDsl, KernelIo, &[u64]),
) -> Module {
    build_kernel_scratch(name, input_size, output_size, 0, tables, body)
}

/// [`build_kernel`] with an additional zero-initialized scratch region
/// (working buffers: reconstructed frames, centroid accumulators, …).
pub fn build_kernel_scratch(
    name: &str,
    input_size: u64,
    output_size: u64,
    scratch_size: u64,
    tables: &[(&str, Vec<u8>)],
    body: impl FnOnce(&mut FunctionDsl, KernelIo, &[u64]),
) -> Module {
    let mut m = Module::new(name);
    let params = m.add_global("params", PARAM_WORDS * 8);
    let input = m.add_global("input", input_size);
    let output = m.add_global("output", output_size + 8);
    let scratch = if scratch_size > 0 {
        let g = m.add_global("scratch", scratch_size);
        m.global(g).addr
    } else {
        0
    };
    let io = KernelIo {
        params: m.global(params).addr,
        input: m.global(input).addr,
        output: m.global(output).addr,
        scratch,
    };
    let mut table_addrs = Vec::new();
    for (tname, data) in tables {
        let g = m.add_global_init(*tname, data.len() as u64, data.clone());
        table_addrs.push(m.global(g).addr);
    }
    let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
        body(d, io, &table_addrs);
    });
    m.add_function(f);
    m
}

/// Loads the `n`-th `i64` parameter word.
pub fn param(d: &mut FunctionDsl, io: KernelIo, n: u64) -> ValueId {
    let addr = d.i64c((io.params + n * 8) as i64);
    d.load(Type::I64, addr)
}

/// Loads an unsigned byte (0..=255) as an `I64`.
pub fn load_u8(d: &mut FunctionDsl, base: ValueId, idx: ValueId) -> ValueId {
    let v = d.load_elem(Type::I8, base, idx);
    let w = d.sext(v, Type::I64);
    let mask = d.i64c(0xFF);
    d.and_(w, mask)
}

/// Stores the low byte of an `I64`.
pub fn store_u8(d: &mut FunctionDsl, base: ValueId, idx: ValueId, v: ValueId) {
    let b = d.trunc(v, Type::I8);
    d.store_elem(base, idx, b);
}

/// Loads a signed 16-bit sample as an `I64`.
pub fn load_i16(d: &mut FunctionDsl, base: ValueId, idx: ValueId) -> ValueId {
    let v = d.load_elem(Type::I16, base, idx);
    d.sext(v, Type::I64)
}

/// Stores the low 16 bits of an `I64`.
pub fn store_i16(d: &mut FunctionDsl, base: ValueId, idx: ValueId, v: ValueId) {
    let b = d.trunc(v, Type::I16);
    d.store_elem(base, idx, b);
}

/// Loads a signed 32-bit word as an `I64`.
pub fn load_i32(d: &mut FunctionDsl, base: ValueId, idx: ValueId) -> ValueId {
    let v = d.load_elem(Type::I32, base, idx);
    d.sext(v, Type::I64)
}

/// Stores the low 32 bits of an `I64`.
pub fn store_i32(d: &mut FunctionDsl, base: ValueId, idx: ValueId, v: ValueId) {
    let b = d.trunc(v, Type::I32);
    d.store_elem(base, idx, b);
}

/// `max(a, b)` on `I64`.
pub fn imax(d: &mut FunctionDsl, a: ValueId, b: ValueId) -> ValueId {
    let c = d.icmp(IntCC::Sgt, a, b);
    d.select(c, a, b)
}

/// `min(a, b)` on `I64`.
pub fn imin(d: &mut FunctionDsl, a: ValueId, b: ValueId) -> ValueId {
    let c = d.icmp(IntCC::Slt, a, b);
    d.select(c, a, b)
}

/// `|a|` on `I64`.
pub fn iabs(d: &mut FunctionDsl, a: ValueId) -> ValueId {
    let z = d.i64c(0);
    let neg = d.sub(z, a);
    let c = d.icmp(IntCC::Slt, a, z);
    d.select(c, neg, a)
}

/// Clamps `v` into `[lo, hi]` (constants).
pub fn clamp(d: &mut FunctionDsl, v: ValueId, lo: i64, hi: i64) -> ValueId {
    let l = d.i64c(lo);
    let h = d.i64c(hi);
    let v = imax(d, v, l);
    imin(d, v, h)
}

/// Writes the output length word (bytes of payload after the length
/// word).
pub fn set_output_len(d: &mut FunctionDsl, io: KernelIo, len: ValueId) {
    let addr = d.i64c(io.output as i64);
    d.store(addr, len);
}

/// The address of output payload byte `idx` (skipping the length word).
pub fn output_data_base(d: &mut FunctionDsl, io: KernelIo) -> ValueId {
    d.i64c((io.output + 8) as i64)
}

/// The address of input byte 0.
pub fn input_base(d: &mut FunctionDsl, io: KernelIo) -> ValueId {
    d.i64c(io.input as i64)
}

/// Converts a slice of `i16` into little-endian bytes.
pub fn i16s_to_bytes(v: &[i16]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Converts a slice of `i32` into little-endian bytes.
pub fn i32s_to_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Converts little-endian bytes into `i16`s.
pub fn bytes_to_i16s(b: &[u8]) -> Vec<i16> {
    b.chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};

    #[test]
    fn kernel_scaffold_runs() {
        let m = build_kernel("t", 64, 64, &[], |d, io, _| {
            // out[0..8] = len 8; payload = first input byte + param0.
            let p0 = param(d, io, 0);
            let inp = input_base(d, io);
            let z = d.i64c(0);
            let b = load_u8(d, inp, z);
            let sum = d.add(b, p0);
            let out = output_data_base(d, io);
            store_u8(d, out, z, sum);
            let eight = d.i64c(1);
            set_output_len(d, io, eight);
            let r = d.i64c(0);
            d.ret(Some(r));
        });
        softft_ir::verify::verify_module(&m).unwrap();
        let mut vm = Vm::new(&m, VmConfig::default());
        let params_addr = m.global_by_name("params").unwrap().addr;
        let input_addr = m.global_by_name("input").unwrap().addr;
        vm.mem.write_bytes(params_addr, &5i64.to_le_bytes());
        vm.mem.write_bytes(input_addr, &[10]);
        let main = m.function_by_name("main").unwrap();
        let r = vm.run(main, &[], &mut NoopObserver, None);
        assert!(r.completed());
        let out_addr = m.global_by_name("output").unwrap().addr;
        assert_eq!(vm.mem.read_bytes(out_addr + 8, 1), &[15]);
    }

    #[test]
    fn minmax_abs_clamp_semantics() {
        let m = build_kernel("t", 8, 64, &[], |d, io, _| {
            let a = d.i64c(-9);
            let b = d.i64c(4);
            let mx = imax(d, a, b); // 4
            let mn = imin(d, a, b); // -9
            let ab = iabs(d, mn); // 9
            let cl = clamp(d, ab, 0, 5); // 5
            let out = output_data_base(d, io);
            let i0 = d.i64c(0);
            let i1 = d.i64c(1);
            let i2 = d.i64c(2);
            store_u8(d, out, i0, mx);
            store_u8(d, out, i1, ab);
            store_u8(d, out, i2, cl);
            let r = d.i64c(0);
            d.ret(Some(r));
        });
        let mut vm = Vm::new(&m, VmConfig::default());
        let main = m.function_by_name("main").unwrap();
        vm.run(main, &[], &mut NoopObserver, None);
        let out = m.global_by_name("output").unwrap().addr;
        assert_eq!(vm.mem.read_bytes(out + 8, 3), &[4, 9, 5]);
    }

    #[test]
    fn byte_conversions_roundtrip() {
        let v = vec![-5i16, 100, i16::MIN];
        assert_eq!(bytes_to_i16s(&i16s_to_bytes(&v)), v);
        assert_eq!(i32s_to_bytes(&[1, -1]).len(), 8);
    }

    #[test]
    fn u8_load_is_unsigned() {
        let m = build_kernel("t", 8, 64, &[], |d, io, _| {
            let inp = input_base(d, io);
            let z = d.i64c(0);
            let v = load_u8(d, inp, z); // 0xFF must read as 255
            let out = output_data_base(d, io);
            let two55 = d.i64c(255);
            let eq = d.icmp(IntCC::Eq, v, two55);
            let one = d.i64c(1);
            let zero = d.i64c(0);
            let flag = d.select(eq, one, zero);
            store_u8(d, out, z, flag);
            let r = d.i64c(0);
            d.ret(Some(r));
        });
        let mut vm = Vm::new(&m, VmConfig::default());
        let inp = m.global_by_name("input").unwrap().addr;
        vm.mem.write_bytes(inp, &[0xFF]);
        let main = m.function_by_name("main").unwrap();
        vm.run(main, &[], &mut NoopObserver, None);
        let out = m.global_by_name("output").unwrap().addr;
        assert_eq!(vm.mem.read_bytes(out + 8, 1), &[1]);
    }
}
