//! Deterministic synthetic input generators.
//!
//! The paper evaluates on real images, audio and video; we synthesize
//! structured inputs (gradients, shapes, band-limited waveforms, Gaussian
//! clusters) with a seeded PRNG so every campaign is reproducible and the
//! *train* (profiling) and *test* (fault-injection) inputs differ — the
//! same separation the paper maintains in Table I.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale image with width/height and row-major bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Row-major 8-bit samples (`w * h` bytes).
    pub pixels: Vec<u8>,
}

/// An RGB image (3 bytes per pixel, row major).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Row-major RGB triples (`3 * w * h` bytes).
    pub pixels: Vec<u8>,
}

/// Generates a structured grayscale test card: diagonal gradient, a
/// bright rectangle, a dark disc, plus mild seeded texture.
pub fn gray_image(w: usize, h: usize, seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pixels = vec![0u8; w * h];
    let (cx, cy) = (w as f64 * 0.65, h as f64 * 0.4);
    let radius = (w.min(h) as f64) * 0.22;
    for y in 0..h {
        for x in 0..w {
            let mut v = 40.0 + 160.0 * (x + y) as f64 / (w + h) as f64;
            if x > w / 8 && x < w / 2 && y > h / 2 && y < h * 7 / 8 {
                v = 220.0; // bright rectangle
            }
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            if (dx * dx + dy * dy).sqrt() < radius {
                v = 25.0; // dark disc
            }
            v += rng.gen_range(-6.0..6.0);
            pixels[y * w + x] = v.clamp(0.0, 255.0) as u8;
        }
    }
    GrayImage { w, h, pixels }
}

/// Generates an RGB test card (channel-shifted gradients plus shapes).
pub fn rgb_image(w: usize, h: usize, seed: u64) -> RgbImage {
    let g = gray_image(w, h, seed);
    let mut pixels = vec![0u8; 3 * w * h];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    for y in 0..h {
        for x in 0..w {
            let base = g.pixels[y * w + x] as i32;
            let r = (base + (x as i32 % 37) - 18 + rng.gen_range(-4..4)).clamp(0, 255);
            let gg = (base + (y as i32 % 29) - 14).clamp(0, 255);
            let b = (255 - base + rng.gen_range(-4..4)).clamp(0, 255);
            let at = 3 * (y * w + x);
            pixels[at] = r as u8;
            pixels[at + 1] = gg as u8;
            pixels[at + 2] = b as u8;
        }
    }
    RgbImage { w, h, pixels }
}

/// Generates a band-limited 16-bit waveform: a sum of three sinusoids
/// with slowly varying amplitude plus low-level noise.
pub fn waveform(n: usize, seed: u64) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f1 = rng.gen_range(0.01..0.03);
    let f2 = rng.gen_range(0.05..0.09);
    let f3 = rng.gen_range(0.11..0.19);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let env = 0.6 + 0.4 * (t * 0.001).sin();
            let s = env
                * (8000.0 * (t * f1 * std::f64::consts::TAU).sin()
                    + 4000.0 * (t * f2 * std::f64::consts::TAU).sin()
                    + 1500.0 * (t * f3 * std::f64::consts::TAU).sin());
            let noise = rng.gen_range(-120.0..120.0);
            (s + noise).clamp(i16::MIN as f64, i16::MAX as f64) as i16
        })
        .collect()
}

/// Generates `n` points of `d` integer features drawn from `k` Gaussian
/// clusters (fixed-point, scaled by 100). Returns `(features, true
/// labels)`; features are row-major `n × d`.
pub fn clustered_points(n: usize, d: usize, k: usize, seed: u64) -> (Vec<i32>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    let mut feats = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c as u8);
        for &center in &centers[c] {
            let v = center + rng.gen_range(-8.0..8.0);
            feats.push((v * 100.0) as i32);
        }
    }
    (feats, labels)
}

/// Generates a linearly separable (with margin noise) binary dataset for
/// the SVM benchmark: `n × d` fixed-point features (scaled by 1000) and
/// ±1 labels encoded as `0`/`1`.
pub fn svm_dataset(n: usize, d: usize, seed: u64) -> (Vec<i32>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let true_w: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut feats = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let dot: f64 = x.iter().zip(&true_w).map(|(a, b)| a * b).sum();
        let noisy = dot + rng.gen_range(-0.1..0.1);
        labels.push(u8::from(noisy > 0.0));
        for v in x {
            feats.push((v * 1000.0) as i32);
        }
    }
    (feats, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic_and_sized() {
        let a = gray_image(32, 24, 7);
        let b = gray_image(32, 24, 7);
        assert_eq!(a, b);
        assert_eq!(a.pixels.len(), 32 * 24);
        let c = gray_image(32, 24, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn images_have_structure() {
        let img = gray_image(64, 64, 1);
        // Dynamic range should span the gradient + shapes.
        let min = *img.pixels.iter().min().unwrap();
        let max = *img.pixels.iter().max().unwrap();
        assert!(min < 40, "{min}");
        assert!(max > 200, "{max}");
    }

    #[test]
    fn rgb_has_three_channels() {
        let img = rgb_image(16, 16, 2);
        assert_eq!(img.pixels.len(), 3 * 16 * 16);
    }

    #[test]
    fn waveform_spans_range_without_clipping_everywhere() {
        let w = waveform(4096, 3);
        assert_eq!(w.len(), 4096);
        let max = w.iter().map(|v| v.unsigned_abs()).max().unwrap();
        assert!(max > 5000, "too quiet: {max}");
        let clipped = w
            .iter()
            .filter(|v| **v == i16::MAX || **v == i16::MIN)
            .count();
        assert!(clipped < w.len() / 100, "clipping: {clipped}");
    }

    #[test]
    fn clusters_have_k_labels() {
        let (feats, labels) = clustered_points(60, 5, 4, 9);
        assert_eq!(feats.len(), 300);
        assert_eq!(labels.len(), 60);
        let mut seen: Vec<u8> = labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn svm_labels_are_balancedish() {
        let (_, labels) = svm_dataset(400, 8, 11);
        let pos = labels.iter().filter(|&&l| l == 1).count();
        assert!(pos > 100 && pos < 300, "unbalanced: {pos}/400");
    }
}
