//! Process-mode fleet: OS worker processes under a coordinator.
//!
//! The coordinator spawns `repro fleet worker` children (the current
//! executable re-invoked) and speaks a tiny control protocol over each
//! child's stdio as wire frames ([`softft_telemetry::wire`]):
//!
//! * coordinator → worker: `plan` (the position→plan-index map, sent
//!   once before any assignment — workers cannot re-derive it after
//!   appends start changing the store), `assign` (a `[lo, hi)` range of
//!   positions), `trim` (a steal shrank an active assignment's upper
//!   bound), `exit`;
//! * worker → coordinator: `hello` (startup), `progress` (cumulative
//!   executed count, doubling as the heartbeat), `done` (an assignment
//!   drained).
//!
//! A worker's *stdout is the control channel*; anything it wants to log
//! goes to stderr. Liveness is heartbeat-based: a worker silent for
//! three heartbeat intervals (or whose pipe reaches EOF) is declared
//! dead, its process killed, and its assignments reclaimed in full —
//! surviving workers absorb the load through the ordinary steal path.
//! Trial purity plus fold-time dedup make the re-execution idempotent,
//! so worker death never changes a single record (see crate docs).
//!
//! The coordinator's steal arithmetic runs on its *mirror* of each
//! assignment (whose cursor does not advance with the remote worker),
//! so a thief may re-execute trials the victim already finished; that
//! overlap is wasted work, never wrong answers.

use crate::ledger::{RangeLedger, Trim};
use crate::pool::{
    finish_shard, io_invalid, meta_of, setup_shard, FleetConfig, FleetReport, MappedSource,
};
use crate::status::{FleetStatus, GapTailer, FRAME_INTERVAL_MS};
use softft::Technique;
use softft_campaign::prep::{prepare, PreparedBenchmark};
use softft_campaign::{
    campaign_config_from_manifest, neutralized_module, plan_hash, stored_trial, CampaignConfig,
    ShardEngine, SharedRange, TrialRecord, TrialTiming,
};
use softft_telemetry::wire::{write_frame, FrameDecoder};
use softft_telemetry::{shard_file_name_worker, JsonValue, RunStore, TraceObserver};
use softft_workloads::workload_by_name;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often a worker emits a `progress` heartbeat frame. Fixed and
/// fast relative to any sane coordinator `heartbeat_ms`, so liveness
/// never depends on trial duration.
const WORKER_TICK_MS: u64 = 200;

/// The worker process exits with this code when `--fail-after` fires
/// (distinguishes an injected death from a real failure in tests).
pub const FAIL_AFTER_EXIT: i32 = 3;

fn obj(fields: Vec<(&str, JsonValue)>) -> String {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
    .to_json()
}

fn send_locked(out: &Mutex<Box<dyn Write + Send>>, json: &str) -> io::Result<()> {
    let mut out = out.lock().expect("control stream lock");
    write_frame(&mut *out, json)?;
    out.flush()
}

/// Events a worker's stdout reader forwards to its handler thread.
enum WorkerEv {
    Done { id: u64 },
    Eof,
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

pub(crate) fn run_process_fleet(
    store: &RunStore,
    p: &PreparedBenchmark,
    technique: Technique,
    cfg: &CampaignConfig,
    fleet: FleetConfig,
) -> io::Result<FleetReport> {
    let workers = fleet.workers.max(1);
    let setup = setup_shard(store, p, technique, cfg, workers)?;
    let start = Instant::now();
    let status = Arc::new(FleetStatus::new(&setup.label, cfg.trials as u64, workers));
    let stop = Arc::new(AtomicBool::new(false));
    let server = fleet
        .observatory
        .map(|l| crate::status::serve_observatory(l, status.clone(), stop.clone()));
    let mut tailer = GapTailer::new(store, &meta_of(store, &setup.label)?, p, technique);

    let ledger = Arc::new(RangeLedger::new(setup.missing.len(), workers));
    let missing = Arc::new(setup.missing.clone());
    let exe = std::env::current_exe()?;
    let heartbeat = Duration::from_millis(fleet.heartbeat_ms.max(WORKER_TICK_MS));

    let mut children: Vec<Child> = Vec::new();
    let mut handlers = Vec::new();
    let last_seen: Arc<Vec<Mutex<Instant>>> =
        Arc::new((0..workers).map(|_| Mutex::new(Instant::now())).collect());

    for w in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("fleet")
            .arg("worker")
            .arg("--store")
            .arg(store.dir())
            .arg("--label")
            .arg(&setup.label)
            .arg("--worker-id")
            .arg(w.to_string())
            .arg("--worker-threads")
            .arg(fleet.worker_threads.max(1).to_string());
        if let Some((_, n)) = fleet.fail_after.iter().find(|(fw, _)| *fw == w) {
            cmd.arg("--fail-after").arg(n.to_string());
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        children.push(child);

        let (ev_tx, ev_rx) = mpsc::channel::<WorkerEv>();
        spawn_reader(w, stdout, ev_tx, status.clone(), last_seen.clone());
        let (ledger, status, missing) = (ledger.clone(), status.clone(), missing.clone());
        handlers.push(std::thread::spawn(move || {
            drive_worker(w, stdin, ev_rx, &ledger, &status, &missing);
        }));
    }

    // Heartbeat monitor + store tailer while handlers run. A worker
    // whose last frame is older than three heartbeats gets killed; the
    // resulting EOF makes its handler reclaim and return.
    let mut killed = vec![false; workers];
    while handlers.iter().any(|h| !h.is_finished()) {
        let _ = tailer.poll_into(&status);
        status.set_scheduling(ledger.steals(), ledger.reclaims());
        for (w, child) in children.iter_mut().enumerate() {
            if killed[w] || handlers[w].is_finished() {
                continue;
            }
            let seen = *last_seen[w].lock().expect("last_seen lock");
            if seen.elapsed() > 3 * heartbeat {
                eprintln!(
                    "fleet: worker {w} silent for {:?}, killing and reclaiming",
                    seen.elapsed()
                );
                let _ = child.kill();
                killed[w] = true;
            }
        }
        std::thread::sleep(Duration::from_millis(
            FRAME_INTERVAL_MS.min(fleet.heartbeat_ms / 2).max(20),
        ));
    }
    for h in handlers {
        h.join().expect("fleet handler panicked");
    }
    // Reap every child; kill first so a worker wedged after `exit` (or
    // one we already killed) cannot hang the coordinator.
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }

    let _ = tailer.poll_into(&status);
    status.set_scheduling(ledger.steals(), ledger.reclaims());
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = server {
        let _ = h.join();
    }

    if !ledger.drained() {
        return Err(io_invalid(format!(
            "{}: every worker died with work pending; re-run to resume",
            setup.label
        )));
    }
    let distinct = finish_shard(store, &setup.label, cfg, start.elapsed().as_millis() as u64)?;
    Ok(FleetReport {
        label: setup.label,
        total: cfg.trials,
        already_done: setup.already_done,
        executed: status.total_executed(),
        distinct_done: distinct,
        steals: ledger.steals(),
        reclaims: ledger.reclaims(),
        workers,
        complete: distinct >= cfg.trials,
    })
}

/// Reads a worker's stdout: updates liveness and progress in place,
/// forwards `done`/EOF to the handler thread.
fn spawn_reader(
    w: usize,
    mut stdout: impl Read + Send + 'static,
    ev_tx: Sender<WorkerEv>,
    status: Arc<FleetStatus>,
    last_seen: Arc<Vec<Mutex<Instant>>>,
) {
    std::thread::spawn(move || {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        'read: loop {
            let n = match stdout.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            dec.push(&buf[..n]);
            loop {
                let body = match dec.next_frame() {
                    Ok(Some(body)) => body,
                    Ok(None) => break,
                    // A worker emitting non-frames on the control
                    // channel is as dead as one that closed it.
                    Err(_) => break 'read,
                };
                let Ok(v) = JsonValue::parse(&body) else {
                    break 'read;
                };
                *last_seen[w].lock().expect("last_seen lock") = Instant::now();
                match v.get("type").and_then(|t| t.as_str()) {
                    Some("progress") => {
                        if let Some(n) = v.get("executed").and_then(|e| e.as_u64()) {
                            status.set_executed(w, n);
                        }
                    }
                    Some("done") => {
                        let id = v.get("id").and_then(|i| i.as_u64()).unwrap_or(0);

                        if ev_tx.send(WorkerEv::Done { id }).is_err() {
                            break 'read;
                        }
                    }
                    _ => {} // hello (and anything future) is liveness only
                }
            }
        }
        let _ = ev_tx.send(WorkerEv::Eof);
    });
}

/// Owns one worker's stdin: sends the plan, then assignment after
/// assignment, forwarding steal trims and completing ranges as `done`
/// frames come back. Any send failure or EOF means the worker is dead:
/// reclaim its ranges and return.
fn drive_worker(
    w: usize,
    stdin: impl Write + Send + 'static,
    ev_rx: Receiver<WorkerEv>,
    ledger: &RangeLedger,
    status: &FleetStatus,
    missing: &[usize],
) {
    let out: Mutex<Box<dyn Write + Send>> = Mutex::new(Box::new(stdin));
    let dead = || {
        ledger.reclaim_worker(w);
        status.mark_dead(w);
        status.set_scheduling(ledger.steals(), ledger.reclaims());
    };
    let plan = obj(vec![
        ("type", JsonValue::str("plan")),
        (
            "missing",
            JsonValue::Array(missing.iter().map(|&i| JsonValue::num(i)).collect()),
        ),
    ]);
    if send_locked(&out, &plan).is_err() {
        return dead();
    }
    let (trim_tx, trim_rx) = mpsc::channel::<Trim>();
    loop {
        let Some(a) = ledger.request(w, Some(trim_tx.clone())) else {
            let _ = send_locked(&out, &obj(vec![("type", JsonValue::str("exit"))]));
            return;
        };
        let assign = obj(vec![
            ("type", JsonValue::str("assign")),
            ("id", JsonValue::num(a.id)),
            ("lo", JsonValue::num(a.range.pos())),
            ("hi", JsonValue::num(a.range.hi())),
        ]);
        if send_locked(&out, &assign).is_err() {
            return dead();
        }
        // Wait for this assignment's `done`, forwarding trims meanwhile.
        loop {
            while let Ok(t) = trim_rx.try_recv() {
                let trim = obj(vec![
                    ("type", JsonValue::str("trim")),
                    ("id", JsonValue::num(t.id)),
                    ("hi", JsonValue::num(t.hi)),
                ]);
                if send_locked(&out, &trim).is_err() {
                    return dead();
                }
            }
            match ev_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(WorkerEv::Done { id, .. }) if id == a.id => {
                    ledger.complete(id);
                    status.set_scheduling(ledger.steals(), ledger.reclaims());
                    break;
                }
                // A done for a range that was trimmed to empty before
                // the worker saw the assign still completes it.
                Ok(WorkerEv::Done { id, .. }) => ledger.complete(id),
                Ok(WorkerEv::Eof) | Err(RecvTimeoutError::Disconnected) => {
                    return dead();
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Parsed arguments of `repro fleet worker`.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// Run store directory (shared with the coordinator).
    pub store: PathBuf,
    /// Shard label `"bench/technique"` to serve.
    pub label: String,
    /// This worker's index (selects its append-only worker file).
    pub worker_id: usize,
    /// Threads for the worker's shard engine.
    pub worker_threads: usize,
    /// Testing knob: abruptly exit (code [`FAIL_AFTER_EXIT`]) after
    /// executing this many trials.
    pub fail_after: Option<u64>,
}

/// The `repro fleet worker` main loop: prepares its own [`ShardEngine`]
/// from the shared store's manifest, then serves `assign` frames from
/// stdin until `exit` (or coordinator EOF), appending each finished
/// trial to its own worker shard file and heartbeating on stdout.
///
/// Stdout is the control channel; diagnostics go to stderr.
pub fn run_worker(opts: &WorkerOpts) -> io::Result<()> {
    let store = RunStore::open(&opts.store)?;
    let manifest = store.manifest();
    let cfg = campaign_config_from_manifest(&manifest)?;
    let meta = manifest
        .shard(&opts.label)
        .cloned()
        .ok_or_else(|| io_invalid(format!("{}: no manifest entry", opts.label)))?;
    let technique = Technique::from_slug(&meta.technique)
        .ok_or_else(|| io_invalid(format!("unknown technique {:?}", meta.technique)))?;
    let workload = workload_by_name(&meta.benchmark)
        .ok_or_else(|| io_invalid(format!("unknown benchmark {:?}", meta.benchmark)))?;
    // Config-level hash check before the (expensive) golden run; the
    // engine's own golden count is re-checked after.
    let hash = plan_hash(&meta.benchmark, technique, &cfg, meta.golden_dyn_insts);
    if hash != meta.plan_hash {
        return Err(io_invalid(format!(
            "{}: plan hash mismatch (store {:016x}, derived {:016x})",
            opts.label, meta.plan_hash, hash
        )));
    }

    // Hello + heartbeat start immediately — engine preparation (golden
    // run, checkpoint recording) can take longer than the coordinator's
    // liveness window.
    let out: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(Box::new(io::stdout())));
    let executed = Arc::new(AtomicU64::new(0));
    send_locked(
        &out,
        &obj(vec![
            ("type", JsonValue::str("hello")),
            ("worker", JsonValue::num(opts.worker_id)),
        ]),
    )?;
    {
        let (out, executed, w) = (out.clone(), executed.clone(), opts.worker_id);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(WORKER_TICK_MS));
            let frame = obj(vec![
                ("type", JsonValue::str("progress")),
                ("worker", JsonValue::num(w)),
                ("executed", JsonValue::num(executed.load(Ordering::Relaxed))),
            ]);
            if send_locked(&out, &frame).is_err() {
                return; // coordinator gone; main loop will see EOF too
            }
        });
    }

    // Stdin reader: trims apply directly to the active ranges (they
    // must take effect even mid-assignment, while the main thread is
    // inside `run_range`); everything else queues for the main loop.
    let active: Arc<Mutex<HashMap<u64, Arc<SharedRange>>>> = Arc::new(Mutex::new(HashMap::new()));
    let (msg_tx, msg_rx) = mpsc::channel::<JsonValue>();
    {
        let active = active.clone();
        std::thread::spawn(move || {
            let mut dec = FrameDecoder::new();
            let mut stdin = io::stdin();
            let mut buf = [0u8; 4096];
            loop {
                let n = match stdin.read(&mut buf) {
                    Ok(0) | Err(_) => return, // EOF → msg_rx disconnects
                    Ok(n) => n,
                };
                dec.push(&buf[..n]);
                loop {
                    let body = match dec.next_frame() {
                        Ok(Some(body)) => body,
                        Ok(None) => break,
                        Err(_) => return,
                    };
                    let Ok(v) = JsonValue::parse(&body) else {
                        return;
                    };
                    if v.get("type").and_then(|t| t.as_str()) == Some("trim") {
                        let id = v.get("id").and_then(|i| i.as_u64()).unwrap_or(0);
                        let hi = v.get("hi").and_then(|h| h.as_u64()).unwrap_or(0) as usize;
                        if let Some(range) = active.lock().expect("active ranges").get(&id) {
                            range.shrink_to(hi);
                        }
                        // Trims for unknown ids raced a completed
                        // assignment; the overlap is idempotent.
                    } else if msg_tx.send(v).is_err() {
                        return;
                    }
                }
            }
        });
    }

    let p = prepare(workload);
    let module = neutralized_module(&*p.workload, p.module(technique), &cfg);
    let engine = ShardEngine::prepare(&*p.workload, &module, &cfg);
    if engine.golden_dyn_insts() != meta.golden_dyn_insts {
        return Err(io_invalid(format!(
            "{}: golden run diverged ({} dyn insts, store says {})",
            opts.label,
            engine.golden_dyn_insts(),
            meta.golden_dyn_insts
        )));
    }
    let writer = store.shard_writer(&shard_file_name_worker(&opts.label, opts.worker_id))?;
    let start = Instant::now();
    let sink_err: Mutex<Option<io::Error>> = Mutex::new(None);
    let sink = |i: usize,
                _plan: &softft_vm::fault::FaultPlan,
                rec: &TrialRecord,
                obs: &TraceObserver,
                t: &TrialTiming| {
        let st = stored_trial(i, rec, obs, t, start.elapsed().as_millis() as u64);
        if let Err(e) = writer.append(st) {
            let mut slot = sink_err.lock().expect("sink error slot");
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        let n = executed.fetch_add(1, Ordering::Relaxed) + 1;
        if opts.fail_after.is_some_and(|cap| n >= cap) {
            // Injected abrupt death: no exit frame, no flush — the
            // coordinator must notice via EOF/heartbeat and reclaim.
            std::process::exit(FAIL_AFTER_EXIT);
        }
    };

    let mut map: Option<Vec<usize>> = None;
    while let Ok(v) = msg_rx.recv() {
        match v.get("type").and_then(|t| t.as_str()) {
            Some("plan") => {
                map = Some(
                    v.get("missing")
                        .and_then(|m| m.as_array())
                        .map(|a| {
                            a.iter()
                                .filter_map(|x| x.as_u64())
                                .map(|x| x as usize)
                                .collect()
                        })
                        .unwrap_or_default(),
                );
            }
            Some("assign") => {
                let map = map
                    .as_deref()
                    .ok_or_else(|| io_invalid("assign before plan"))?;
                let id = v.get("id").and_then(|i| i.as_u64()).unwrap_or(0);
                let lo = v.get("lo").and_then(|l| l.as_u64()).unwrap_or(0) as usize;
                let hi = v.get("hi").and_then(|h| h.as_u64()).unwrap_or(0) as usize;
                let range = Arc::new(SharedRange::new(lo, hi));
                active
                    .lock()
                    .expect("active ranges")
                    .insert(id, range.clone());
                let source = MappedSource { range: &range, map };
                let n = engine.run_range(&source, opts.worker_threads.max(1), &sink);
                active.lock().expect("active ranges").remove(&id);
                if let Some(e) = sink_err.lock().expect("sink error slot").take() {
                    return Err(e);
                }
                // `done` plus an up-to-date progress frame, so the
                // coordinator's executed tally doesn't trail the
                // periodic ticker by up to one tick.
                send_locked(
                    &out,
                    &obj(vec![
                        ("type", JsonValue::str("done")),
                        ("id", JsonValue::num(id)),
                        ("executed", JsonValue::num(n)),
                    ]),
                )?;
                send_locked(
                    &out,
                    &obj(vec![
                        ("type", JsonValue::str("progress")),
                        ("worker", JsonValue::num(opts.worker_id)),
                        ("executed", JsonValue::num(executed.load(Ordering::Relaxed))),
                    ]),
                )?;
            }
            Some("exit") => break,
            _ => {}
        }
    }
    Ok(())
}
