//! Live fleet status and the observatory socket.
//!
//! The coordinator keeps one [`FleetStatus`] updated from worker
//! progress (and from tailing the run store for outcome/coverage
//! data); [`serve_observatory`] streams it to any number of `repro
//! watch --connect` clients as length-prefixed JSONL frames
//! ([`softft_telemetry::wire`]), so a remote watch needs no access to
//! the store's files. Status is observational: nothing the fleet
//! computes ever reads it back, so serving (or not) cannot change
//! campaign results.

use softft_campaign::prep::PreparedBenchmark;
use softft_campaign::{record_from_json, CoverageAccum};
use softft_telemetry::wire::write_frame;
use softft_telemetry::{JsonValue, RunStore, ShardMeta, ShardTail};
use std::collections::HashSet;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How often observatory clients receive a fresh frame.
pub const FRAME_INTERVAL_MS: u64 = 500;

struct WorkerState {
    executed: u64,
    alive: bool,
}

struct StatusInner {
    workers: Vec<WorkerState>,
    steals: u64,
    reclaims: u64,
    /// Distinct trials persisted (from the store tailer; exact).
    done: u64,
    outcomes: Vec<(String, u64)>,
    gaps: JsonValue,
}

/// Shared live state of one fleet campaign.
pub struct FleetStatus {
    label: String,
    total: u64,
    start: Instant,
    inner: Mutex<StatusInner>,
}

impl FleetStatus {
    /// A fresh status for `workers` workers over `total` trials.
    pub fn new(label: &str, total: u64, workers: usize) -> FleetStatus {
        FleetStatus {
            label: label.to_string(),
            total,
            start: Instant::now(),
            inner: Mutex::new(StatusInner {
                workers: (0..workers)
                    .map(|_| WorkerState {
                        executed: 0,
                        alive: true,
                    })
                    .collect(),
                steals: 0,
                reclaims: 0,
                done: 0,
                outcomes: Vec::new(),
                gaps: JsonValue::Array(Vec::new()),
            }),
        }
    }

    /// Records `n` more executed trials for a worker.
    pub fn add_executed(&self, worker: usize, n: u64) {
        let mut inner = self.inner.lock().expect("status lock");
        if let Some(w) = inner.workers.get_mut(worker) {
            w.executed += n;
        }
    }

    /// Sets a worker's cumulative executed count (process-mode progress
    /// frames carry totals, not deltas).
    pub fn set_executed(&self, worker: usize, total: u64) {
        let mut inner = self.inner.lock().expect("status lock");
        if let Some(w) = inner.workers.get_mut(worker) {
            w.executed = w.executed.max(total);
        }
    }

    /// Sum of per-worker executed counts (duplicates included).
    pub fn total_executed(&self) -> u64 {
        let inner = self.inner.lock().expect("status lock");
        inner.workers.iter().map(|w| w.executed).sum()
    }

    /// Marks a worker dead (EOF or heartbeat timeout).
    pub fn mark_dead(&self, worker: usize) {
        let mut inner = self.inner.lock().expect("status lock");
        if let Some(w) = inner.workers.get_mut(worker) {
            w.alive = false;
        }
    }

    /// Updates the steal/reclaim tallies (from the ledger).
    pub fn set_scheduling(&self, steals: u64, reclaims: u64) {
        let mut inner = self.inner.lock().expect("status lock");
        inner.steals = steals;
        inner.reclaims = reclaims;
    }

    /// Updates the store-derived view: distinct trials done, outcome
    /// mix, and the current protection-gap ranking.
    pub fn set_observed(&self, done: u64, outcomes: Vec<(String, u64)>, gaps: JsonValue) {
        let mut inner = self.inner.lock().expect("status lock");
        inner.done = done;
        inner.outcomes = outcomes;
        inner.gaps = gaps;
    }

    /// Renders one observatory frame.
    pub fn frame(&self) -> JsonValue {
        let inner = self.inner.lock().expect("status lock");
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let secs = (elapsed_ms as f64 / 1000.0).max(1e-9);
        let workers: Vec<JsonValue> = inner
            .workers
            .iter()
            .enumerate()
            .map(|(w, ws)| {
                JsonValue::Object(vec![
                    ("worker".to_string(), JsonValue::num(w)),
                    ("executed".to_string(), JsonValue::num(ws.executed)),
                    (
                        "rate".to_string(),
                        JsonValue::num(format!("{:.3}", ws.executed as f64 / secs)),
                    ),
                    ("alive".to_string(), JsonValue::Bool(ws.alive)),
                ])
            })
            .collect();
        let outcomes: Vec<JsonValue> = inner
            .outcomes
            .iter()
            .map(|(label, n)| {
                JsonValue::Object(vec![
                    ("outcome".to_string(), JsonValue::str(label.clone())),
                    ("trials".to_string(), JsonValue::num(*n)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("type".to_string(), JsonValue::str("fleet")),
            ("label".to_string(), JsonValue::str(self.label.clone())),
            ("total".to_string(), JsonValue::num(self.total)),
            ("done".to_string(), JsonValue::num(inner.done)),
            ("elapsed_ms".to_string(), JsonValue::num(elapsed_ms)),
            ("steals".to_string(), JsonValue::num(inner.steals)),
            ("reclaims".to_string(), JsonValue::num(inner.reclaims)),
            ("workers".to_string(), JsonValue::Array(workers)),
            ("outcomes".to_string(), JsonValue::Array(outcomes)),
            ("gaps".to_string(), inner.gaps.clone()),
        ])
    }
}

/// Serves observatory frames on `listener` until `stop` is set: every
/// client connection gets the current frame immediately and then a
/// fresh one each [`FRAME_INTERVAL_MS`]. Returns the join handle of
/// the accept thread; client threads are detached (they exit on write
/// error or stop).
pub fn serve_observatory(
    listener: TcpListener,
    status: Arc<FleetStatus>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    listener
        .set_nonblocking(true)
        .expect("observatory listener nonblocking");
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let status = status.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || serve_client(stream, &status, &stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                Err(_) => break,
            }
        }
    })
}

fn serve_client(
    mut stream: std::net::TcpStream,
    status: &FleetStatus,
    stop: &AtomicBool,
) -> io::Result<()> {
    loop {
        write_frame(&mut stream, &status.frame().to_json())?;
        stream.flush()?;
        if stop.load(Ordering::Relaxed) {
            // One final frame after stop so clients see the end state.
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(FRAME_INTERVAL_MS));
    }
}

/// The local address an observatory listener should bind when the
/// user asks for `--serve` without an explicit address.
pub fn default_serve_addr() -> SocketAddr {
    "127.0.0.1:0".parse().expect("static addr parses")
}

/// Incrementally folds a fleet shard's store files (primary plus all
/// worker files) into the observed view: distinct-trial count, outcome
/// mix, and protection-gap ranking. Duplicate-safe via a seen-set, so
/// steal overlaps and reclaimed re-executions count once.
pub struct GapTailer<'p> {
    p: &'p PreparedBenchmark,
    technique: softft::Technique,
    tails: Vec<ShardTail>,
    seen: HashSet<u32>,
    cov: CoverageAccum,
    outcomes: Vec<(String, u64)>,
    trigger_unreached: u64,
}

impl<'p> GapTailer<'p> {
    /// Tails every file of `meta` in `store`.
    pub fn new(
        store: &RunStore,
        meta: &ShardMeta,
        p: &'p PreparedBenchmark,
        technique: softft::Technique,
    ) -> GapTailer<'p> {
        let mut files = vec![meta.file.clone()];
        files.extend(meta.worker_files.iter().cloned());
        GapTailer {
            p,
            technique,
            tails: files
                .into_iter()
                .map(|f| ShardTail::new(store.shard_path(&f)))
                .collect(),
            seen: HashSet::new(),
            cov: CoverageAccum::new(),
            outcomes: Vec::new(),
            trigger_unreached: 0,
        }
    }

    /// Polls every tail and publishes the refreshed view to `status`.
    pub fn poll_into(&mut self, status: &FleetStatus) -> io::Result<()> {
        for tail in &mut self.tails {
            for st in tail.poll()? {
                if !self.seen.insert(st.trial) {
                    continue;
                }
                let Some(rec) = record_from_json(&st.record) else {
                    continue;
                };
                if rec.injection.is_none() {
                    self.trigger_unreached += 1;
                }
                let label = rec.outcome.label();
                match self.outcomes.iter_mut().find(|(l, _)| l == label) {
                    Some((_, n)) => *n += 1,
                    None => self.outcomes.push((label.to_string(), 1)),
                }
                self.cov.add(&rec);
            }
        }
        let map = self.cov.build(
            self.p.workload.name(),
            self.technique,
            self.p.module(self.technique),
            self.p.protection(self.technique),
            self.seen.len() as u64,
            self.trigger_unreached,
        );
        let gaps: Vec<JsonValue> = map
            .gap_sites(5)
            .into_iter()
            .map(|g| {
                let mut fields = vec![
                    ("func".to_string(), JsonValue::str(g.func)),
                    ("op".to_string(), JsonValue::str(g.op)),
                    ("trials".to_string(), JsonValue::num(g.trials)),
                    ("usdc".to_string(), JsonValue::num(g.usdc)),
                    (
                        "usdc_rate".to_string(),
                        JsonValue::num(format!("{:.4}", g.usdc_rate)),
                    ),
                ];
                if let Some(inst) = g.inst {
                    fields.insert(1, ("inst".to_string(), JsonValue::num(inst)));
                }
                JsonValue::Object(fields)
            })
            .collect();
        status.set_observed(
            self.seen.len() as u64,
            self.outcomes.clone(),
            JsonValue::Array(gaps),
        );
        Ok(())
    }

    /// Distinct trials observed so far.
    pub fn distinct_done(&self) -> u64 {
        self.seen.len() as u64
    }
}
