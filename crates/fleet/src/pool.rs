//! Fleet campaign entry point and the in-process worker pool.

use crate::ledger::RangeLedger;
use crate::status::{FleetStatus, GapTailer, FRAME_INTERVAL_MS};
use softft::Technique;
use softft_campaign::prep::PreparedBenchmark;
use softft_campaign::{
    golden_dyn_insts, neutralized_module, plan_hash, stored_trial, CampaignConfig, IndexSource,
    ShardEngine, SharedRange, TrialRecord, TrialTiming,
};
use softft_telemetry::{
    shard_file_name, shard_file_name_worker, RunStore, ShardMeta, TraceObserver,
};
use softft_vm::fault::FaultPlan;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fleet execution parameters.
pub struct FleetConfig {
    /// Worker count (pools or processes).
    pub workers: usize,
    /// Threads per worker's shard engine.
    pub worker_threads: usize,
    /// Spawn OS worker processes (`repro fleet worker`) instead of
    /// in-process pools.
    pub processes: bool,
    /// Observatory listener (bound by the caller so the address can be
    /// printed before the run starts).
    pub observatory: Option<TcpListener>,
    /// Heartbeat interval for process-mode liveness; a worker silent
    /// for 3 intervals is declared dead and its ranges reclaimed.
    pub heartbeat_ms: u64,
    /// Testing knob: `(worker, n)` makes that spawned worker process
    /// exit abruptly after executing `n` trials (exercises the
    /// reclaim path). Ignored in in-process mode.
    pub fail_after: Vec<(usize, u64)>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            workers: 2,
            worker_threads: 1,
            processes: false,
            observatory: None,
            heartbeat_ms: 1000,
            fail_after: Vec::new(),
        }
    }
}

/// What one fleet campaign did.
#[derive(Debug)]
pub struct FleetReport {
    /// Shard label (`"bench/technique"`).
    pub label: String,
    /// Planned trials.
    pub total: u32,
    /// Trials already persisted before this run.
    pub already_done: u32,
    /// Trial executions across all workers (duplicates from steal
    /// overlap or reclaim re-execution count each time).
    pub executed: u64,
    /// Distinct trials persisted after the run.
    pub distinct_done: u32,
    /// Ranges stolen.
    pub steals: u64,
    /// Assignments reclaimed from dead workers.
    pub reclaims: u64,
    /// Workers used.
    pub workers: usize,
    /// True when every planned trial is persisted.
    pub complete: bool,
}

/// Everything both coordinator modes share: the shard identity, the
/// missing-index map, and the manifest bookkeeping.
pub(crate) struct ShardSetup {
    pub label: String,
    pub worker_files: Vec<String>,
    pub missing: Vec<usize>,
    pub already_done: u32,
}

pub(crate) fn io_invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Upserts the shard's manifest entry (registering one worker file per
/// worker), validates the plan hash, and computes the missing plan
/// indices from every existing shard file. The returned
/// `missing` vector is the position→plan-index map every ledger range
/// indexes into; process workers re-derive it from the same store
/// snapshot (nothing appends between this scan and dispatch).
pub(crate) fn setup_shard(
    store: &RunStore,
    p: &PreparedBenchmark,
    technique: Technique,
    cfg: &CampaignConfig,
    workers: usize,
) -> io::Result<ShardSetup> {
    let bench = p.workload.name().to_string();
    let label = format!("{}/{}", bench, technique.slug());
    let file = shard_file_name(&label);
    let golden = golden_dyn_insts(&*p.workload, p.module(technique), cfg);
    let hash = plan_hash(&bench, technique, cfg, golden);
    if let Some(meta) = store.manifest().shard(&label) {
        if meta.plan_hash != hash {
            return Err(io_invalid(format!(
                "{label}: plan hash mismatch (store {:016x}, config {:016x})",
                meta.plan_hash, hash
            )));
        }
    }

    let missing = missing_indices(store, &label, &file, cfg)?;
    let already_done = cfg.trials - missing.len() as u32;

    let worker_files: Vec<String> = (0..workers)
        .map(|w| shard_file_name_worker(&label, w))
        .collect();
    let wf = worker_files.clone();
    store.update_manifest(|m| match m.shards.iter_mut().find(|s| s.label == label) {
        Some(s) => {
            s.completed = already_done;
            s.complete = already_done >= cfg.trials;
            for f in &wf {
                if !s.worker_files.contains(f) {
                    s.worker_files.push(f.clone());
                }
            }
        }
        None => m.shards.push(ShardMeta {
            label: label.clone(),
            benchmark: bench.clone(),
            technique: technique.slug().to_string(),
            file: file.clone(),
            plan_hash: hash,
            golden_dyn_insts: golden,
            completed: already_done,
            complete: already_done >= cfg.trials,
            wall_ms: 0,
            worker_files: wf,
        }),
    })?;

    Ok(ShardSetup {
        label,
        worker_files,
        missing,
        already_done,
    })
}

/// The plan indices not yet persisted in any of the shard's files, in
/// ascending order. Deterministic in the store's on-disk state, so a
/// coordinator and its workers scanning the same quiescent store agree
/// exactly.
pub(crate) fn missing_indices(
    store: &RunStore,
    label: &str,
    file: &str,
    cfg: &CampaignConfig,
) -> io::Result<Vec<usize>> {
    let stored = match store.manifest().shard(label) {
        Some(meta) => store.read_shard_files(meta)?,
        None => store.read_shard(file)?,
    };
    let mut done: Vec<u32> = stored
        .iter()
        .map(|t| t.trial)
        .filter(|&t| t < cfg.trials)
        .collect();
    done.sort_unstable();
    done.dedup();
    Ok((0..cfg.trials as usize)
        .filter(|i| done.binary_search(&(*i as u32)).is_err())
        .collect())
}

/// Counts distinct persisted trials and marks the shard's manifest
/// entry accordingly; returns the distinct count.
pub(crate) fn finish_shard(
    store: &RunStore,
    label: &str,
    cfg: &CampaignConfig,
    wall_ms: u64,
) -> io::Result<u32> {
    let meta = store
        .manifest()
        .shard(label)
        .cloned()
        .ok_or_else(|| io_invalid(format!("{label}: shard vanished from manifest")))?;
    let mut done: Vec<u32> = store
        .read_shard_files(&meta)?
        .iter()
        .map(|t| t.trial)
        .filter(|&t| t < cfg.trials)
        .collect();
    done.sort_unstable();
    done.dedup();
    let distinct = done.len() as u32;
    store.update_manifest(|m| {
        if let Some(s) = m.shards.iter_mut().find(|s| s.label == label) {
            s.completed = distinct;
            s.complete = distinct >= cfg.trials;
            s.wall_ms += wall_ms;
        }
    })?;
    Ok(distinct)
}

/// An [`IndexSource`] that maps ledger positions through the missing
/// list, so ranges stay contiguous in *position* space even when the
/// missing plan indices are sparse (resumed fleet).
pub(crate) struct MappedSource<'a> {
    pub range: &'a SharedRange,
    pub map: &'a [usize],
}

impl IndexSource for MappedSource<'_> {
    fn next(&self) -> Option<usize> {
        IndexSource::next(self.range).map(|k| self.map[k])
    }
}

/// Runs (or resumes) one campaign shard across a fleet of workers.
/// In-process mode shares one prepared [`ShardEngine`] across worker
/// pools; process mode spawns `repro fleet worker` children (see
/// [`crate::proc`]). Either way the store afterwards replays bitwise
/// identically to a single-process campaign of the same config.
pub fn run_fleet_campaign(
    store: &RunStore,
    p: &PreparedBenchmark,
    technique: Technique,
    cfg: &CampaignConfig,
    fleet: FleetConfig,
) -> io::Result<FleetReport> {
    if fleet.processes {
        crate::proc::run_process_fleet(store, p, technique, cfg, fleet)
    } else {
        run_inprocess_fleet(store, p, technique, cfg, fleet)
    }
}

fn run_inprocess_fleet(
    store: &RunStore,
    p: &PreparedBenchmark,
    technique: Technique,
    cfg: &CampaignConfig,
    fleet: FleetConfig,
) -> io::Result<FleetReport> {
    let workers = fleet.workers.max(1);
    let setup = setup_shard(store, p, technique, cfg, workers)?;
    let start = Instant::now();
    let status = Arc::new(FleetStatus::new(&setup.label, cfg.trials as u64, workers));
    let stop = Arc::new(AtomicBool::new(false));
    let server = fleet
        .observatory
        .map(|l| crate::status::serve_observatory(l, status.clone(), stop.clone()));

    let ledger = RangeLedger::new(setup.missing.len(), workers);
    let module = neutralized_module(&*p.workload, p.module(technique), cfg);
    let engine = ShardEngine::prepare(&*p.workload, &module, cfg);
    let sink_err: Mutex<Option<io::Error>> = Mutex::new(None);
    let mut tailer = GapTailer::new(store, &meta_of(store, &setup.label)?, p, technique);

    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::new();
        for w in 0..workers {
            let writer = store.shard_writer(&setup.worker_files[w])?;
            let (engine, ledger, status, sink_err, missing) =
                (&engine, &ledger, &status, &sink_err, &setup.missing[..]);
            let threads = fleet.worker_threads.max(1);
            handles.push(scope.spawn(move || {
                let sink = |i: usize,
                            _plan: &FaultPlan,
                            rec: &TrialRecord,
                            obs: &TraceObserver,
                            t: &TrialTiming| {
                    let st = stored_trial(i, rec, obs, t, start.elapsed().as_millis() as u64);
                    if let Err(e) = writer.append(st) {
                        let mut slot = sink_err.lock().expect("sink error slot");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                    status.add_executed(w, 1);
                };
                while let Some(a) = ledger.request(w, None) {
                    let source = MappedSource {
                        range: &a.range,
                        map: missing,
                    };
                    engine.run_range(&source, threads, &sink);
                    ledger.complete(a.id);
                    status.set_scheduling(ledger.steals(), ledger.reclaims());
                }
            }));
        }
        // The coordinator thread doubles as the observatory's store
        // tailer while workers run.
        while handles.iter().any(|h| !h.is_finished()) {
            let _ = tailer.poll_into(&status);
            std::thread::sleep(std::time::Duration::from_millis(FRAME_INTERVAL_MS.min(100)));
        }
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
        Ok(())
    })?;

    if let Some(e) = sink_err.into_inner().expect("sink error slot") {
        return Err(e);
    }
    let _ = tailer.poll_into(&status);
    status.set_scheduling(ledger.steals(), ledger.reclaims());
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = server {
        let _ = h.join();
    }

    let distinct = finish_shard(store, &setup.label, cfg, start.elapsed().as_millis() as u64)?;
    Ok(FleetReport {
        label: setup.label,
        total: cfg.trials,
        already_done: setup.already_done,
        executed: engine.trials_executed(),
        distinct_done: distinct,
        steals: ledger.steals(),
        reclaims: ledger.reclaims(),
        workers,
        complete: distinct >= cfg.trials,
    })
}

pub(crate) fn meta_of(store: &RunStore, label: &str) -> io::Result<ShardMeta> {
    store
        .manifest()
        .shard(label)
        .cloned()
        .ok_or_else(|| io_invalid(format!("{label}: no manifest entry")))
}
