#![warn(missing_docs)]

//! # softft-fleet
//!
//! The fleet campaign coordinator: splits a deterministic fault plan
//! into contiguous shard ranges and dispatches them to a work-stealing
//! pool of workers — in-process thread pools or multiple OS processes
//! spawned as `repro fleet worker` — with results **bitwise identical**
//! to a single-process [`run_campaign`](softft_campaign::run_campaign).
//!
//! Three load-bearing invariants, in dependency order:
//!
//! 1. **Shard determinism.** Trial *i* derives its fault from
//!    `cfg.seed` and *i* alone ([`softft_campaign`]'s plan derivation),
//!    so any partition of plan indices across any executors produces
//!    the same per-trial records.
//! 2. **Steal arithmetic.** Work stealing is coordinator-side index
//!    arithmetic on [`SharedRange`](softft_campaign::SharedRange)s
//!    (victim's `hi` shrinks, thief takes the cut-off suffix); the
//!    benign consume/shrink overlap re-executes at most one trial,
//!    which is idempotent by invariant 1.
//! 3. **Reclaim idempotence.** A dead worker's assignments return to
//!    pending in full; every store fold dedups by trial index, so
//!    partially-persisted work plus re-execution collapses to the
//!    single-process byte stream.
//!
//! Workers append to per-worker shard files registered in the store
//! manifest ([`ShardMeta::worker_files`](softft_telemetry::ShardMeta)),
//! and the coordinator merges via the existing
//! [`replay`](softft_campaign::replay) fold. A live observatory serves
//! length-prefixed JSONL frames over a local socket
//! ([`serve_observatory`]) for `repro watch --connect`.

pub mod ledger;
pub mod pool;
pub mod proc;
pub mod status;

pub use ledger::{Assignment, RangeLedger, ShardRange, Trim};
pub use pool::{run_fleet_campaign, FleetConfig, FleetReport};
pub use proc::{run_worker, WorkerOpts};
pub use status::{serve_observatory, FleetStatus, GapTailer, FRAME_INTERVAL_MS};
