//! The range ledger: who owns which slice of the fault plan.
//!
//! The coordinator splits the campaign's missing plan indices into
//! contiguous ranges and hands them to workers as *assignments*. All
//! scheduling is plan-index arithmetic over [`SharedRange`]s:
//!
//! * **dispatch** — pop a pending range, wrap it in an assignment;
//! * **steal** — an idle worker takes the upper half of the largest
//!   remaining active range (the victim's `hi` shrinks under the
//!   ledger lock; process-mode victims additionally get a `trim`
//!   message, but the arithmetic is already done);
//! * **reclaim** — a dead worker's assignments return to pending in
//!   full (`[lo, hi)`), so any trial it half-finished simply runs
//!   again. Trials are pure in their index and every fold dedups by
//!   trial, so re-execution is idempotent.
//!
//! Because trial *i* derives its fault from `cfg.seed` and *i* alone,
//! no schedule the ledger can produce — any worker count, steal
//! interleaving, or death/reclaim sequence — changes a single record.

use softft_campaign::SharedRange;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A contiguous slice `[lo, hi)` of plan positions awaiting dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Inclusive start.
    pub lo: usize,
    /// Exclusive end.
    pub hi: usize,
}

/// A trim notification: assignment `id`'s upper bound shrank to `hi`
/// (sent to the victim worker's handler when it is stolen from).
#[derive(Clone, Copy, Debug)]
pub struct Trim {
    /// The shrunk assignment.
    pub id: u64,
    /// Its new exclusive upper bound.
    pub hi: usize,
}

/// One dispatched range: the worker drains `range` while the
/// coordinator may still shrink it (steal) or return it to pending
/// (reclaim after death).
pub struct Assignment {
    /// Ledger-unique assignment id.
    pub id: u64,
    /// Worker the range was dispatched to.
    pub worker: usize,
    /// The live range; in-process workers consume it directly.
    pub range: Arc<SharedRange>,
    /// Original lower bound (reclaim returns `[lo, hi())` in full).
    lo: usize,
}

struct ActiveEntry {
    id: u64,
    worker: usize,
    range: Arc<SharedRange>,
    lo: usize,
    notify: Option<Sender<Trim>>,
}

#[derive(Default)]
struct LedgerInner {
    pending: Vec<ShardRange>,
    active: Vec<ActiveEntry>,
    next_id: u64,
    /// Workers marked dead; their requests return `None` immediately.
    dead: Vec<usize>,
}

/// The coordinator's scheduling state. All methods are safe to call
/// from any worker-handler thread.
pub struct RangeLedger {
    inner: Mutex<LedgerInner>,
    wake: Condvar,
    steals: AtomicU64,
    reclaims: AtomicU64,
}

impl RangeLedger {
    /// A ledger over `positions` plan positions, pre-split into
    /// `workers` contiguous ranges (the initial static partition; the
    /// remainder spreads one extra position over the leading ranges).
    pub fn new(positions: usize, workers: usize) -> RangeLedger {
        let workers = workers.max(1);
        let mut pending = Vec::new();
        let base = positions / workers;
        let extra = positions % workers;
        let mut lo = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            if len > 0 {
                pending.push(ShardRange { lo, hi: lo + len });
                lo += len;
            }
        }
        RangeLedger {
            inner: Mutex::new(LedgerInner {
                pending,
                ..LedgerInner::default()
            }),
            wake: Condvar::new(),
            steals: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
        }
    }

    /// Ranges stolen so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Assignments reclaimed from dead workers so far.
    pub fn reclaims(&self) -> u64 {
        self.reclaims.load(Ordering::Relaxed)
    }

    /// Blocks until a range is available for `worker` (from pending or
    /// by stealing), returning `None` once the campaign is drained (no
    /// pending, no active) or the worker was marked dead. `notify`,
    /// when given, receives a [`Trim`] if this assignment is later
    /// stolen from — process-mode handlers forward it to the worker as
    /// a `trim` frame; in-process workers share the [`SharedRange`]
    /// and need no channel.
    pub fn request(&self, worker: usize, notify: Option<Sender<Trim>>) -> Option<Assignment> {
        let mut inner = self.inner.lock().expect("ledger lock");
        loop {
            if inner.dead.contains(&worker) {
                return None;
            }
            if let Some(r) = inner.pending.pop() {
                return Some(self.dispatch(&mut inner, worker, r.lo, r.hi, notify));
            }
            // Steal half of the largest remaining active range.
            let victim = inner
                .active
                .iter()
                .enumerate()
                .max_by_key(|(_, a)| a.range.remaining())
                .map(|(k, a)| (k, a.range.remaining()));
            if let Some((k, rem)) = victim {
                if rem >= 2 {
                    let (mid, hi) = {
                        let a = &inner.active[k];
                        let pos = a.range.pos();
                        let hi = a.range.hi();
                        // Victim keeps the lower half, thief takes the
                        // upper; the consume/shrink overlap is benign
                        // (see SharedRange docs).
                        (pos + (hi - pos) / 2, hi)
                    };
                    if mid < hi {
                        let a = &inner.active[k];
                        a.range.shrink_to(mid);
                        if let Some(tx) = &a.notify {
                            let _ = tx.send(Trim { id: a.id, hi: mid });
                        }
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(self.dispatch(&mut inner, worker, mid, hi, notify));
                    }
                }
            }
            if inner.active.is_empty() {
                return None;
            }
            // Active ranges exist but none worth stealing: wait for a
            // completion, reclaim, or death to change the picture. The
            // timeout guards against a lost wakeup, not correctness.
            inner = self
                .wake
                .wait_timeout(inner, Duration::from_millis(50))
                .expect("ledger lock")
                .0;
        }
    }

    fn dispatch(
        &self,
        inner: &mut LedgerInner,
        worker: usize,
        lo: usize,
        hi: usize,
        notify: Option<Sender<Trim>>,
    ) -> Assignment {
        inner.next_id += 1;
        let id = inner.next_id;
        let range = Arc::new(SharedRange::new(lo, hi));
        inner.active.push(ActiveEntry {
            id,
            worker,
            range: range.clone(),
            lo,
            notify,
        });
        Assignment {
            id,
            worker,
            range,
            lo,
        }
    }

    /// Marks an assignment finished (its range is drained).
    pub fn complete(&self, id: u64) {
        let mut inner = self.inner.lock().expect("ledger lock");
        inner.active.retain(|a| a.id != id);
        drop(inner);
        self.wake.notify_all();
    }

    /// Reclaims every active assignment of a dead worker: each returns
    /// to pending in full (`[lo, hi)` — conservatively including
    /// whatever the worker may have already executed, because
    /// re-execution is idempotent) and the worker is barred from
    /// further requests. Returns the number of reclaimed assignments.
    pub fn reclaim_worker(&self, worker: usize) -> usize {
        let mut inner = self.inner.lock().expect("ledger lock");
        if !inner.dead.contains(&worker) {
            inner.dead.push(worker);
        }
        let mut reclaimed = Vec::new();
        inner.active.retain(|a| {
            if a.worker == worker {
                let (lo, hi) = (a.lo, a.range.hi());
                if lo < hi {
                    reclaimed.push(ShardRange { lo, hi });
                }
                false
            } else {
                true
            }
        });
        let n = reclaimed.len();
        inner.pending.extend(reclaimed);
        drop(inner);
        self.reclaims.fetch_add(n as u64, Ordering::Relaxed);
        self.wake.notify_all();
        n
    }

    /// True when nothing is pending and nothing is active.
    pub fn drained(&self) -> bool {
        let inner = self.inner.lock().expect("ledger lock");
        inner.pending.is_empty() && inner.active.is_empty()
    }
}

/// Original lower bound of an assignment (exposed for reclaim tests).
impl Assignment {
    /// The assignment's original `[lo, hi)` lower bound.
    pub fn lo(&self) -> usize {
        self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_campaign::IndexSource;

    #[test]
    fn initial_split_is_contiguous_and_covers() {
        let ledger = RangeLedger::new(10, 3);
        let inner = ledger.inner.lock().unwrap();
        let mut ranges = inner.pending.clone();
        ranges.sort_by_key(|r| r.lo);
        assert_eq!(
            ranges,
            vec![
                ShardRange { lo: 0, hi: 4 },
                ShardRange { lo: 4, hi: 7 },
                ShardRange { lo: 7, hi: 10 },
            ]
        );
    }

    #[test]
    fn steal_halves_largest_active_range() {
        let ledger = RangeLedger::new(8, 1);
        let a = ledger.request(0, None).expect("initial range");
        assert_eq!((a.range.pos(), a.range.hi()), (0, 8));
        let b = ledger.request(1, None).expect("stolen range");
        assert_eq!(ledger.steals(), 1);
        // Victim kept [0, 4), thief got [4, 8).
        assert_eq!(a.range.hi(), 4);
        assert_eq!((b.range.pos(), b.range.hi()), (4, 8));
    }

    #[test]
    fn reclaim_returns_full_range_and_bars_worker() {
        let ledger = RangeLedger::new(6, 2);
        let a = ledger.request(0, None).unwrap();
        let _b = ledger.request(1, None).unwrap();
        // Worker 0 consumed part of its range, then died.
        a.range.next();
        a.range.next();
        assert_eq!(ledger.reclaim_worker(0), 1);
        assert_eq!(ledger.reclaims(), 1);
        assert!(ledger.request(0, None).is_none(), "dead worker barred");
        // The reclaimed range comes back in full, partial progress
        // ignored (re-execution is idempotent).
        let c = ledger.request(1, None).unwrap();
        assert_eq!((c.range.pos(), c.range.hi()), (a.lo(), a.range.hi()));
    }

    #[test]
    fn drains_to_none_for_all_workers() {
        let ledger = RangeLedger::new(4, 2);
        let a = ledger.request(0, None).unwrap();
        let b = ledger.request(1, None).unwrap();
        while a.range.next().is_some() {}
        while b.range.next().is_some() {}
        ledger.complete(a.id);
        ledger.complete(b.id);
        assert!(ledger.drained());
        assert!(ledger.request(0, None).is_none());
        assert!(ledger.request(1, None).is_none());
    }

    #[test]
    fn trim_notification_reaches_victim() {
        let ledger = RangeLedger::new(8, 1);
        let (tx, rx) = std::sync::mpsc::channel();
        let a = ledger.request(0, Some(tx)).unwrap();
        let _b = ledger.request(1, None).unwrap();
        let trim = rx.try_recv().expect("victim notified");
        assert_eq!(trim.id, a.id);
        assert_eq!(trim.hi, 4);
    }
}
