//! Per-trial outcome classification (Section IV-C categories).

use serde::{Deserialize, Serialize};
use softft_ir::CheckKind;
use softft_vm::{InjectionRecord, RunEnd, RunResult, TrapKind};
use softft_workloads::Workload;

/// Fine-grained trial outcome. The paper's Fig. 11 columns fold
/// [`Outcome::AcceptableSdc`] into *Masked*; Fig. 13 splits the SDCs back
/// out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Output byte-identical to the fault-free run.
    Masked,
    /// Output differs numerically but fidelity is acceptable (ASDC).
    AcceptableSdc,
    /// Output differs and fidelity is unacceptable (USDC).
    UnacceptableSdc,
    /// A hardware symptom (out-of-bounds, divide-by-zero) fired within
    /// the detection-latency window after injection.
    HwDetect,
    /// A software check fired (duplication mismatch or value check).
    SwDetect(CheckKind),
    /// Abnormal termination outside the window: late symptom, watchdog
    /// (infinite loop), or stack overflow.
    Failure,
}

impl Outcome {
    /// All outcome classes in canonical rendering order: masked first,
    /// then SDCs, then detections (hardware, then software checks in
    /// [`CheckKind`] declaration order), then failures. Reports and
    /// telemetry iterate this array so output ordering is byte-stable.
    pub const CANONICAL: [Outcome; 12] = [
        Outcome::Masked,
        Outcome::AcceptableSdc,
        Outcome::UnacceptableSdc,
        Outcome::HwDetect,
        Outcome::SwDetect(CheckKind::DupMismatch),
        Outcome::SwDetect(CheckKind::ValueSingle),
        Outcome::SwDetect(CheckKind::ValuePair),
        Outcome::SwDetect(CheckKind::ValueRange),
        Outcome::SwDetect(CheckKind::StoreGuard),
        Outcome::SwDetect(CheckKind::BranchGuard),
        Outcome::SwDetect(CheckKind::CfcSignature),
        Outcome::Failure,
    ];

    /// Stable lower-case label (used in JSONL events and ordered count
    /// rendering). Software detections carry their check kind as a
    /// `swdetect.<kind>` suffix, matching
    /// [`softft_telemetry::check_kind_label`].
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::AcceptableSdc => "acceptable-sdc",
            Outcome::UnacceptableSdc => "unacceptable-sdc",
            Outcome::HwDetect => "hwdetect",
            Outcome::SwDetect(k) => match k {
                CheckKind::DupMismatch => "swdetect.dup-mismatch",
                CheckKind::ValueSingle => "swdetect.value-single",
                CheckKind::ValuePair => "swdetect.value-pair",
                CheckKind::ValueRange => "swdetect.value-range",
                CheckKind::StoreGuard => "swdetect.store-guard",
                CheckKind::BranchGuard => "swdetect.branch-guard",
                CheckKind::CfcSignature => "swdetect.cfc-signature",
            },
            Outcome::Failure => "failure",
        }
    }

    /// True for the categories counted as *covered* by the paper
    /// (Masked + acceptable + both detector classes).
    pub fn is_covered(self) -> bool {
        !matches!(self, Outcome::UnacceptableSdc | Outcome::Failure)
    }

    /// True for both SDC flavours (numerically different completed runs).
    pub fn is_sdc(self) -> bool {
        matches!(self, Outcome::AcceptableSdc | Outcome::UnacceptableSdc)
    }

    /// Collapsed label matching the paper's Fig. 11 legend.
    pub fn fig11_bucket(self) -> &'static str {
        match self {
            Outcome::Masked | Outcome::AcceptableSdc => "Masked",
            Outcome::UnacceptableSdc => "USDC",
            Outcome::HwDetect => "HWDetect",
            Outcome::SwDetect(_) => "SWDetect",
            Outcome::Failure => "Failure",
        }
    }
}

/// One classified injection trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The outcome class.
    pub outcome: Outcome,
    /// Fidelity score vs. the golden output (only meaningful for
    /// completed runs).
    pub fidelity: Option<f64>,
    /// What the injection did (absent if the trigger was never reached,
    /// e.g. the run was shorter than planned — counted as Masked).
    pub injection: Option<InjectionRecord>,
    /// Dynamic instructions from injection to the detecting trap, for
    /// [`Outcome::HwDetect`] and [`Outcome::SwDetect`] trials.
    pub detect_latency: Option<u64>,
    /// Dynamic instructions the run executed before completing or
    /// trapping.
    pub dyn_insts: u64,
}

/// Classification parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassifyParams {
    /// Symptoms within this many dynamic instructions of the injection
    /// count as `HWDetect` (the paper uses 1000 cycles).
    pub hw_latency_window: u64,
    /// Relative value change above which an injection counts as a
    /// "large instruction output value change" (Fig. 2 split).
    pub large_change_threshold: f64,
}

impl Default for ClassifyParams {
    fn default() -> Self {
        ClassifyParams {
            hw_latency_window: 1000,
            large_change_threshold: 4.0,
        }
    }
}

/// Classifies one run against the golden output.
pub fn classify_trial(
    workload: &dyn Workload,
    golden: &[u8],
    result: &RunResult,
    output: &[u8],
    params: &ClassifyParams,
) -> TrialRecord {
    let injection = result.injection;
    // Latency from injection to the trap, for detected trials. The trap's
    // `at_dyn` and the injection's are both in the same dynamic-count
    // convention, so the difference is the detection latency.
    let trap_latency = |at_dyn: u64| injection.map(|i| at_dyn.saturating_sub(i.at_dyn));
    let (outcome, detect_latency) = match result.end {
        RunEnd::Completed { .. } => {
            if output == golden {
                (Outcome::Masked, None)
            } else {
                let fidelity = workload.fidelity(golden, output);
                let acceptable = workload.metric().acceptable(fidelity);
                return TrialRecord {
                    outcome: if acceptable {
                        Outcome::AcceptableSdc
                    } else {
                        Outcome::UnacceptableSdc
                    },
                    fidelity: Some(fidelity),
                    injection,
                    detect_latency: None,
                    dyn_insts: result.dyn_insts,
                };
            }
        }
        RunEnd::Trap { kind, at_dyn } => match kind {
            TrapKind::SwDetect(k) => (Outcome::SwDetect(k), trap_latency(at_dyn)),
            TrapKind::Watchdog => (Outcome::Failure, None),
            other => {
                let inj_at = injection.map(|i| i.at_dyn).unwrap_or(0);
                let latency = at_dyn.saturating_sub(inj_at);
                if other.is_hw_symptom() && latency <= params.hw_latency_window {
                    (Outcome::HwDetect, trap_latency(at_dyn))
                } else {
                    (Outcome::Failure, None)
                }
            }
        },
    };
    TrialRecord {
        outcome,
        fidelity: None,
        injection,
        detect_latency,
        dyn_insts: result.dyn_insts,
    }
}

/// True when the injection changed its victim value by a "large" relative
/// amount (Fig. 2's USDC split).
pub fn is_large_change(rec: &InjectionRecord, params: &ClassifyParams) -> bool {
    rec.relative_change() >= params.large_change_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::{FuncId, Type, ValueId};
    use softft_workloads::workload_by_name;

    fn result(end: RunEnd, inj_at: u64) -> RunResult {
        RunResult {
            end,
            dyn_insts: 100,
            injection: Some(InjectionRecord::register(
                inj_at,
                FuncId::new(0),
                ValueId::new(0),
                Type::I64,
                3,
                1,
                9,
                None,
            )),
            check_failures: 0,
        }
    }

    #[test]
    fn identical_output_is_masked() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![1u8, 2, 3];
        let r = result(RunEnd::Completed { ret: Some(0) }, 10);
        let t = classify_trial(&*w, &golden, &r, &golden, &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::Masked);
        assert!(t.outcome.is_covered());
    }

    #[test]
    fn small_label_change_is_acceptable_sdc() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![0u8; 100];
        let mut out = golden.clone();
        out[0] = 1; // 1% mismatch < 10% threshold
        let r = result(RunEnd::Completed { ret: Some(0) }, 10);
        let t = classify_trial(&*w, &golden, &r, &out, &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::AcceptableSdc);
        assert!(t.outcome.is_sdc());
        assert!(t.outcome.is_covered());
        assert_eq!(t.outcome.fig11_bucket(), "Masked");
    }

    #[test]
    fn big_label_change_is_usdc() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![0u8; 100];
        let out = vec![1u8; 100];
        let r = result(RunEnd::Completed { ret: Some(0) }, 10);
        let t = classify_trial(&*w, &golden, &r, &out, &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::UnacceptableSdc);
        assert!(!t.outcome.is_covered());
    }

    #[test]
    fn prompt_symptom_is_hwdetect_late_is_failure() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![0u8; 4];
        let oob = TrapKind::OutOfBounds { addr: 1, size: 4 };
        let prompt = result(
            RunEnd::Trap {
                kind: oob,
                at_dyn: 500,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &prompt, &[], &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::HwDetect);

        let late = result(
            RunEnd::Trap {
                kind: oob,
                at_dyn: 50_000,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &late, &[], &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::Failure);
    }

    #[test]
    fn sw_check_is_swdetect_and_watchdog_is_failure() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![0u8; 4];
        let sw = result(
            RunEnd::Trap {
                kind: TrapKind::SwDetect(CheckKind::DupMismatch),
                at_dyn: 20,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &sw, &[], &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::SwDetect(CheckKind::DupMismatch));
        assert_eq!(t.outcome.fig11_bucket(), "SWDetect");

        let wd = result(
            RunEnd::Trap {
                kind: TrapKind::Watchdog,
                at_dyn: 1_000_000,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &wd, &[], &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::Failure);
    }

    #[test]
    fn canonical_order_is_complete_with_unique_labels() {
        let mut labels: Vec<&str> = Outcome::CANONICAL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 12);
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12, "duplicate outcome labels");
        assert_eq!(Outcome::CANONICAL[0], Outcome::Masked);
        assert_eq!(Outcome::CANONICAL[11], Outcome::Failure);
    }

    #[test]
    fn detection_latency_is_attributed() {
        let w = workload_by_name("kmeans").unwrap();
        let golden = vec![0u8; 4];
        let sw = result(
            RunEnd::Trap {
                kind: TrapKind::SwDetect(CheckKind::ValueRange),
                at_dyn: 35,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &sw, &[], &ClassifyParams::default());
        assert_eq!(t.detect_latency, Some(25));
        assert_eq!(t.dyn_insts, 100);

        let oob = TrapKind::OutOfBounds { addr: 1, size: 4 };
        let hw = result(
            RunEnd::Trap {
                kind: oob,
                at_dyn: 510,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &hw, &[], &ClassifyParams::default());
        assert_eq!(t.outcome, Outcome::HwDetect);
        assert_eq!(t.detect_latency, Some(500));

        // Completed runs and failures have no detection latency.
        let ok = result(RunEnd::Completed { ret: Some(0) }, 10);
        let t = classify_trial(&*w, &golden, &ok, &golden, &ClassifyParams::default());
        assert_eq!(t.detect_latency, None);
        let wd = result(
            RunEnd::Trap {
                kind: TrapKind::Watchdog,
                at_dyn: 99,
            },
            10,
        );
        let t = classify_trial(&*w, &golden, &wd, &[], &ClassifyParams::default());
        assert_eq!(t.detect_latency, None);
    }

    #[test]
    fn large_change_detection() {
        let p = ClassifyParams::default();
        let rec = InjectionRecord::register(
            0,
            FuncId::new(0),
            ValueId::new(0),
            Type::I64,
            40,
            1,
            (1i64 + (1 << 40)) as u64,
            None,
        );
        assert!(is_large_change(&rec, &p));
        let small = InjectionRecord {
            bit: 0,
            old_bits: 1000,
            new_bits: 1001,
            ..rec
        };
        assert!(!is_large_change(&small, &p));
    }
}
