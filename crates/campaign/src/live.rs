//! Streaming campaigns over the run store, and their exact replay.
//!
//! Three pieces close the interrupt/resume loop:
//!
//! * [`run_campaign_to_store`] executes a campaign with a streaming
//!   [`TrialSink`](crate::campaign::TrialSink) that appends each trial
//!   to a [`RunStore`] shard as it completes — losing power mid-run
//!   costs at most the trial that was mid-write;
//! * [`replay`] folds a store back into the exact
//!   ([`CampaignResult`], [`CampaignTelemetry`],
//!   [`CoverageMap`](crate::coverage::CoverageMap)) triple the buffered
//!   path produces, because both paths share one accumulation code path
//!   ([`CampaignResult::fold_record`],
//!   [`build_trial_event`](crate::campaign::build_trial_event),
//!   [`fold_trial_metrics`](crate::campaign::fold_trial_metrics),
//!   [`CoverageAccum`]) — there is no second implementation to drift;
//! * [`plan_hash`] fingerprints everything the fault plan derives from
//!   (seed, trials, fault kind, classification window, golden
//!   instruction count), so a resume refuses to append trials from a
//!   different universe into an existing shard.
//!
//! Trial identity is the *plan index*: [`derive_plans`] is
//! deterministic and thread-count agnostic, and a subset run filters
//! execution order, never the plans — so plan index *i* names the same
//! fault in the original run, the resumed run, and the replay.
//! Deliberately **excluded** from the hash: `snapshot_interval` and
//! `threads`. Results are proven bitwise identical across both knobs
//! (see the snapshot equivalence tests), so resuming a campaign with a
//! different checkpoint spacing or core count is legal and exact.

use crate::campaign::{
    build_trial_event, campaign_core_phased, derive_plans, finalize_campaign_metrics,
    fold_trial_metrics, golden_dyn_insts, CampaignConfig, CampaignResult, CampaignTelemetry,
    TrialTiming,
};
use crate::coverage::{CoverageAccum, CoverageMap};
use crate::outcome::{ClassifyParams, Outcome, TrialRecord};
use crate::prep::{prepare, PreparedBenchmark};
use softft::Technique;
use softft_ir::{FuncId, InstId, Type, ValueId};
use softft_telemetry::{
    check_kind_from_label, check_kind_label, shard_file_name, CheckKindCounts, JsonValue, RunStore,
    ShardMeta, StoreManifest, StoredTrial, TraceObserver, RUNSTORE_SCHEMA_VERSION,
};
use softft_vm::fault::{FaultKind, FaultPlan, InjectionRecord};
use softft_workloads::workload_by_name;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Stable manifest slug for a fault kind (round-trips through
/// [`fault_kind_from_label`]).
pub fn fault_kind_label(k: FaultKind) -> &'static str {
    match k {
        FaultKind::Register => "register",
        FaultKind::BranchTarget => "branch-target",
    }
}

/// Parses a [`fault_kind_label`].
pub fn fault_kind_from_label(s: &str) -> Option<FaultKind> {
    [FaultKind::Register, FaultKind::BranchTarget]
        .into_iter()
        .find(|k| fault_kind_label(*k) == s)
}

/// Stable record slug for a value type.
fn type_label(t: Type) -> &'static str {
    match t {
        Type::I1 => "i1",
        Type::I8 => "i8",
        Type::I16 => "i16",
        Type::I32 => "i32",
        Type::I64 => "i64",
        Type::F64 => "f64",
    }
}

/// Parses a [`type_label`].
fn type_from_label(s: &str) -> Option<Type> {
    [
        Type::I1,
        Type::I8,
        Type::I16,
        Type::I32,
        Type::I64,
        Type::F64,
    ]
    .into_iter()
    .find(|t| type_label(*t) == s)
}

/// Parses an [`Outcome::label`].
fn outcome_from_label(s: &str) -> Option<Outcome> {
    Outcome::CANONICAL.into_iter().find(|o| o.label() == s)
}

fn injection_to_json(inj: &InjectionRecord) -> JsonValue {
    let mut fields = vec![
        ("at_dyn".to_string(), JsonValue::num(inj.at_dyn)),
        ("func".to_string(), JsonValue::num(inj.func.index() as u64)),
        (
            "kind".to_string(),
            JsonValue::str(fault_kind_label(inj.kind)),
        ),
        (
            "value".to_string(),
            JsonValue::num(inj.value.index() as u64),
        ),
        ("ty".to_string(), JsonValue::str(type_label(inj.ty))),
        ("bit".to_string(), JsonValue::num(inj.bit as u64)),
        ("old_bits".to_string(), JsonValue::num(inj.old_bits)),
        ("new_bits".to_string(), JsonValue::num(inj.new_bits)),
    ];
    if let Some(inst) = inj.def_inst {
        fields.push(("def_inst".to_string(), JsonValue::num(inst.index() as u64)));
    }
    JsonValue::Object(fields)
}

fn injection_from_json(v: &JsonValue) -> Option<InjectionRecord> {
    Some(InjectionRecord {
        at_dyn: v.get("at_dyn")?.as_u64()?,
        func: FuncId::new(v.get("func")?.as_u64()? as usize),
        kind: fault_kind_from_label(v.get("kind")?.as_str()?)?,
        value: ValueId::new(v.get("value")?.as_u64()? as usize),
        ty: type_from_label(v.get("ty")?.as_str()?)?,
        bit: v.get("bit")?.as_u64()? as u32,
        old_bits: v.get("old_bits")?.as_u64()?,
        new_bits: v.get("new_bits")?.as_u64()?,
        def_inst: match v.get("def_inst") {
            Some(i) => Some(InstId::new(i.as_u64()? as usize)),
            None => None,
        },
    })
}

/// Serializes a classified trial record for a shard frame. Fidelity is
/// stored as raw IEEE-754 bits (`f64::to_bits`) so the round trip is
/// lossless — replay must rebuild *bitwise* identical aggregates, and a
/// decimal rendering would quantize the classification input.
pub fn record_to_json(rec: &TrialRecord) -> JsonValue {
    let mut fields = vec![("outcome".to_string(), JsonValue::str(rec.outcome.label()))];
    if let Some(f) = rec.fidelity {
        fields.push(("fidelity_bits".to_string(), JsonValue::num(f.to_bits())));
    }
    if let Some(inj) = &rec.injection {
        fields.push(("injection".to_string(), injection_to_json(inj)));
    }
    if let Some(lat) = rec.detect_latency {
        fields.push(("detect_latency".to_string(), JsonValue::num(lat)));
    }
    fields.push(("dyn_insts".to_string(), JsonValue::num(rec.dyn_insts)));
    JsonValue::Object(fields)
}

/// Parses a [`record_to_json`] value.
pub fn record_from_json(v: &JsonValue) -> Option<TrialRecord> {
    Some(TrialRecord {
        outcome: outcome_from_label(v.get("outcome")?.as_str()?)?,
        fidelity: match v.get("fidelity_bits") {
            Some(bits) => Some(f64::from_bits(bits.as_u64()?)),
            None => None,
        },
        injection: match v.get("injection") {
            Some(inj) => Some(injection_from_json(inj)?),
            None => None,
        },
        detect_latency: match v.get("detect_latency") {
            Some(lat) => Some(lat.as_u64()?),
            None => None,
        },
        dyn_insts: v.get("dyn_insts")?.as_u64()?,
    })
}

/// FNV-1a over the plan-determining inputs. Not cryptographic — it
/// guards against *accidental* config mixups (resuming with a different
/// seed or trial count), not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything that determines a shard's fault plans and
/// their classification: benchmark, technique, fault kind, seed, trial
/// count, classification parameters, and the golden-run dynamic
/// instruction count the triggers derive from. `snapshot_interval`,
/// `threads`, `spin_proof`, and `prune` are deliberately excluded —
/// results are bitwise identical across all four scheduling knobs, so
/// resuming with different values is exact.
pub fn plan_hash(
    benchmark: &str,
    technique: Technique,
    cfg: &CampaignConfig,
    golden_dyn_insts: u64,
) -> u64 {
    let key = format!(
        "v1|{}|{}|{}|seed={}|trials={}|hw={}|lct={:016x}|golden={}",
        benchmark,
        technique.slug(),
        fault_kind_label(cfg.fault_kind),
        cfg.seed,
        cfg.trials,
        cfg.classify.hw_latency_window,
        cfg.classify.large_change_threshold.to_bits(),
        golden_dyn_insts,
    );
    fnv1a(key.as_bytes())
}

/// A fresh (shard-less) manifest capturing this config; the campaign
/// VM config and input set are not persisted — replays reconstruct the
/// campaign-default `VmConfig` and test input, which is the only
/// combination the `repro` campaign path ever runs.
pub fn store_manifest(cfg: &CampaignConfig) -> StoreManifest {
    StoreManifest {
        schema_version: RUNSTORE_SCHEMA_VERSION,
        seed: cfg.seed,
        trials: cfg.trials,
        fault_kind: fault_kind_label(cfg.fault_kind).to_string(),
        snapshot_interval: cfg.snapshot_interval,
        threads: cfg.threads,
        hw_latency_window: cfg.classify.hw_latency_window,
        large_change_threshold: cfg.classify.large_change_threshold,
        shards: Vec::new(),
    }
}

/// Reconstructs the campaign config a manifest was written from, so a
/// resume ignores the command line and continues the *recorded* run.
pub fn campaign_config_from_manifest(m: &StoreManifest) -> io::Result<CampaignConfig> {
    Ok(CampaignConfig {
        trials: m.trials,
        seed: m.seed,
        threads: m.threads,
        classify: ClassifyParams {
            hw_latency_window: m.hw_latency_window,
            large_change_threshold: m.large_change_threshold,
        },
        fault_kind: fault_kind_from_label(&m.fault_kind)
            .ok_or_else(|| io_invalid(format!("unknown fault kind {:?}", m.fault_kind)))?,
        snapshot_interval: m.snapshot_interval,
        ..CampaignConfig::default()
    })
}

fn io_invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Builds the persisted form of one completed trial from the streaming
/// sink's arguments. One builder shared by [`run_campaign_to_store`]
/// and the fleet worker's per-worker shard files, so the two cannot
/// drift: a fleet store and a single-process store hold byte-identical
/// records for the same trial (only the observational `t_ms`/`seq`
/// differ, and those never fold into results).
pub fn stored_trial(
    i: usize,
    rec: &TrialRecord,
    obs: &TraceObserver,
    t: &TrialTiming,
    t_ms: u64,
) -> StoredTrial {
    StoredTrial {
        seq: 0, // assigned by the writer
        trial: i as u32,
        t_ms,
        watchdog: t.watchdog,
        exec_ns: t.exec_ns,
        ops: obs
            .opcodes
            .iter_nonzero()
            .map(|(op, n)| (op.to_string(), n))
            .collect(),
        checks: obs
            .checks
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| (check_kind_label(k).to_string(), n))
            .collect(),
        record: record_to_json(rec),
    }
}

/// What one [`run_campaign_to_store`] call did to its shard.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamStats {
    /// Shard label (`"segm/dup-val"`).
    pub label: String,
    /// Planned trials for the shard.
    pub total: u32,
    /// Trials already persisted before this call (resume skips them).
    pub already_done: u32,
    /// Trials this call executed and appended.
    pub executed: u32,
    /// True when the shard now holds every planned trial.
    pub complete: bool,
}

/// Runs (or resumes) one campaign shard, streaming each completed trial
/// into the store. Trials already persisted are skipped *exactly*: the
/// plan list is re-derived deterministically and only missing plan
/// indices execute, so an interrupted-and-resumed campaign is the same
/// set of trials as an uninterrupted one. `trial_cap` bounds how many
/// missing trials this call executes (the interrupt half of the
/// interrupt/resume tests; also a budgeting knob for incremental runs).
///
/// The shard's manifest entry is upserted *before* execution so a
/// concurrent `repro watch` sees the planned totals immediately, and
/// updated with progress after.
pub fn run_campaign_to_store(
    store: &RunStore,
    p: &PreparedBenchmark,
    technique: Technique,
    cfg: &CampaignConfig,
    trial_cap: Option<u32>,
) -> io::Result<StreamStats> {
    let bench = p.workload.name().to_string();
    let label = format!("{}/{}", bench, technique.slug());
    let file = shard_file_name(&label);
    let module = p.module(technique);
    let golden = golden_dyn_insts(&*p.workload, module, cfg);
    let hash = plan_hash(&bench, technique, cfg, golden);
    if let Some(meta) = store.manifest().shard(&label) {
        if meta.plan_hash != hash {
            return Err(io_invalid(format!(
                "{label}: plan hash mismatch (store {:016x}, config {:016x}); \
                 refusing to mix fault plans in one shard",
                meta.plan_hash, hash
            )));
        }
    }

    // The shard files are authoritative for which trials completed; the
    // duplicate-tolerant read also covers a crash that appended a trial
    // but died before the manifest update. A shard previously written
    // by a fleet (per-worker files) resumes exactly: every worker file
    // counts toward `done`.
    let stored = match store.manifest().shard(&label) {
        Some(meta) => store.read_shard_files(meta)?,
        None => store.read_shard(&file)?,
    };
    let mut done: Vec<u32> = stored
        .iter()
        .map(|t| t.trial)
        .filter(|&t| t < cfg.trials)
        .collect();
    done.sort_unstable();
    done.dedup();
    let already_done = done.len() as u32;
    let missing: Vec<usize> = (0..cfg.trials as usize)
        .filter(|i| done.binary_search(&(*i as u32)).is_err())
        .take(trial_cap.map_or(usize::MAX, |c| c as usize))
        .collect();

    store.update_manifest(|m| match m.shards.iter_mut().find(|s| s.label == label) {
        Some(s) => {
            s.completed = already_done;
            s.complete = already_done >= cfg.trials;
        }
        None => m.shards.push(ShardMeta {
            label: label.clone(),
            benchmark: bench.clone(),
            technique: technique.slug().to_string(),
            file: file.clone(),
            plan_hash: hash,
            golden_dyn_insts: golden,
            completed: already_done,
            complete: already_done >= cfg.trials,
            wall_ms: 0,
            worker_files: Vec::new(),
        }),
    })?;

    if missing.is_empty() {
        return Ok(StreamStats {
            label,
            total: cfg.trials,
            already_done,
            executed: 0,
            complete: already_done >= cfg.trials,
        });
    }

    let writer = store.shard_writer(&file)?;
    let start = Instant::now();
    // The sink runs on worker threads and cannot return an error
    // through the campaign core (observation is write-only); the first
    // append failure is parked here and surfaced after the run.
    let sink_err: Mutex<Option<io::Error>> = Mutex::new(None);
    let sink =
        |i: usize, _plan: &FaultPlan, rec: &TrialRecord, obs: &TraceObserver, t: &TrialTiming| {
            let stored = stored_trial(i, rec, obs, t, start.elapsed().as_millis() as u64);
            if let Err(e) = writer.append(stored) {
                let mut slot = sink_err.lock().expect("sink error slot");
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        };

    let (result, _, _) = campaign_core_phased(
        &*p.workload,
        module,
        cfg,
        TraceObserver::new,
        None,
        Some(&missing),
        Some(&sink),
    );
    if let Some(e) = sink_err.into_inner().expect("sink error slot") {
        return Err(e);
    }

    let executed = result.trials;
    let completed = already_done + executed;
    let wall = start.elapsed().as_millis() as u64;
    store.update_manifest(|m| {
        if let Some(s) = m.shards.iter_mut().find(|s| s.label == label) {
            s.completed = completed;
            s.complete = completed >= cfg.trials;
            s.wall_ms += wall;
        }
    })?;
    Ok(StreamStats {
        label,
        total: cfg.trials,
        already_done,
        executed,
        complete: completed >= cfg.trials,
    })
}

/// One shard folded back out of a store: the same aggregate triple the
/// buffered campaign produces.
pub struct ReplayedShard {
    /// Shard label (`"segm/dup-val"`).
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Technique the shard ran under.
    pub technique: Technique,
    /// True when every planned trial is present.
    pub complete: bool,
    /// Campaign aggregate, identical to the buffered run's when the
    /// shard is complete.
    pub result: CampaignResult,
    /// Per-trial events, check totals, and aggregated metrics,
    /// rebuilt through the same attribution path as the buffered run.
    pub telemetry: CampaignTelemetry,
    /// Per-site coverage map.
    pub coverage: CoverageMap,
}

/// Deduplicates stored trials (lowest `seq` wins per plan index, so a
/// resumed run racing a crash cannot double-count) and drops indices
/// past the planned trial count.
fn dedup_trials(mut stored: Vec<StoredTrial>, trials: u32) -> Vec<StoredTrial> {
    stored.retain(|t| t.trial < trials);
    stored.sort_by_key(|t| (t.trial, t.seq));
    stored.dedup_by_key(|t| t.trial);
    stored
}

/// Folds a run store back into per-shard campaign aggregates —
/// [`CampaignResult`], attributed [`CampaignTelemetry`], and
/// [`CoverageMap`] — bitwise identical to what the buffered
/// [`run_campaign_attributed`](crate::campaign::run_campaign_attributed)
/// and [`build_coverage`](crate::coverage::build_coverage) path produces
/// for the same config, because every accumulation step is the same
/// shared function. Incomplete shards replay what they hold (the
/// aggregates cover the persisted subset).
pub fn replay(dir: &Path) -> io::Result<Vec<ReplayedShard>> {
    let store = RunStore::open(dir)?;
    let manifest = store.manifest();
    let cfg = campaign_config_from_manifest(&manifest)?;
    let mut shards = Vec::new();
    for meta in &manifest.shards {
        let technique = Technique::from_slug(&meta.technique)
            .ok_or_else(|| io_invalid(format!("{}: unknown technique", meta.label)))?;
        let workload = workload_by_name(&meta.benchmark)
            .ok_or_else(|| io_invalid(format!("{}: unknown benchmark", meta.label)))?;
        let p = prepare(workload);
        let module = p.module(technique);
        let protection = p.protection(technique);
        let hash = plan_hash(&meta.benchmark, technique, &cfg, meta.golden_dyn_insts);
        if hash != meta.plan_hash {
            return Err(io_invalid(format!(
                "{}: manifest plan hash {:016x} does not match re-derived {:016x}",
                meta.label, meta.plan_hash, hash
            )));
        }
        let stored = dedup_trials(store.read_shard_files(meta)?, manifest.trials);
        let plans = derive_plans(&cfg, meta.golden_dyn_insts);

        let mut result = CampaignResult {
            trials: stored.len() as u32,
            golden_dyn_insts: meta.golden_dyn_insts,
            ..CampaignResult::default()
        };
        let mut telemetry = CampaignTelemetry::default();
        let mut cov = CoverageAccum::new();
        for st in &stored {
            let rec = record_from_json(&st.record).ok_or_else(|| {
                io_invalid(format!(
                    "{}: malformed record in trial {}",
                    meta.label, st.trial
                ))
            })?;
            result.fold_record(&rec, &cfg.classify);
            telemetry.events.push(build_trial_event(
                st.trial,
                &plans[st.trial as usize],
                &rec,
                cfg.fault_kind,
                module,
                Some(protection),
            ));
            let mut checks = CheckKindCounts::new();
            for (k, n) in &st.checks {
                let kind = check_kind_from_label(k).ok_or_else(|| {
                    io_invalid(format!("{}: unknown check kind {k:?}", meta.label))
                })?;
                checks.add(kind, *n);
            }
            telemetry.checks.merge(&checks);
            fold_trial_metrics(
                &mut telemetry.metrics,
                &rec,
                st.ops.iter().map(|(op, n)| (op.as_str(), *n)),
                &checks,
            );
            cov.add(&rec);
            telemetry.records.push(rec);
        }
        finalize_campaign_metrics(&mut telemetry.metrics, &result);
        let coverage = cov.build(
            &meta.benchmark,
            technique,
            module,
            protection,
            result.trials as u64,
            result.trigger_unreached as u64,
        );
        shards.push(ReplayedShard {
            label: meta.label.clone(),
            benchmark: meta.benchmark.clone(),
            technique,
            complete: stored.len() as u32 >= manifest.trials,
            result,
            telemetry,
            coverage,
        });
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign_attributed;
    use crate::coverage::build_coverage;
    use std::path::PathBuf;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softft_live_{}_{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 7,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn labels_round_trip() {
        for k in [FaultKind::Register, FaultKind::BranchTarget] {
            assert_eq!(fault_kind_from_label(fault_kind_label(k)), Some(k));
        }
        for t in [
            Type::I1,
            Type::I8,
            Type::I16,
            Type::I32,
            Type::I64,
            Type::F64,
        ] {
            assert_eq!(type_from_label(type_label(t)), Some(t));
        }
        for o in Outcome::CANONICAL {
            assert_eq!(outcome_from_label(o.label()), Some(o));
        }
    }

    #[test]
    fn record_round_trips_losslessly() {
        let rec = TrialRecord {
            outcome: Outcome::UnacceptableSdc,
            // An irrational-ish fidelity exercises the to_bits path: a
            // decimal rendering would not round-trip bitwise.
            fidelity: Some(0.1 + 0.2),
            injection: Some(InjectionRecord {
                at_dyn: u64::MAX - 3,
                func: FuncId::new(2),
                kind: FaultKind::Register,
                value: ValueId::new(17),
                ty: Type::F64,
                bit: 63,
                old_bits: u64::MAX,
                new_bits: 0x7FF0_0000_0000_0001,
                def_inst: Some(InstId::new(41)),
            }),
            detect_latency: Some(12),
            dyn_insts: 99_999,
        };
        let back = record_from_json(&record_to_json(&rec)).unwrap();
        assert_eq!(back, rec);
        assert_eq!(
            back.fidelity.unwrap().to_bits(),
            rec.fidelity.unwrap().to_bits()
        );

        // Absent options stay absent (branch faults, unreached triggers).
        let bare = TrialRecord {
            outcome: Outcome::Masked,
            fidelity: None,
            injection: None,
            detect_latency: None,
            dyn_insts: 5,
        };
        assert_eq!(record_from_json(&record_to_json(&bare)).unwrap(), bare);
        let json = record_to_json(&bare).to_json();
        assert!(!json.contains("injection") && !json.contains("fidelity_bits"));
    }

    #[test]
    fn plan_hash_tracks_plan_inputs_only() {
        let cfg = small_cfg(40);
        let base = plan_hash("segm", Technique::DupVal, &cfg, 1000);
        assert_eq!(base, plan_hash("segm", Technique::DupVal, &cfg, 1000));
        assert_ne!(base, plan_hash("segm", Technique::DupVal, &cfg, 1001));
        assert_ne!(base, plan_hash("kmeans", Technique::DupVal, &cfg, 1000));
        assert_ne!(base, plan_hash("segm", Technique::DupOnly, &cfg, 1000));
        let mut seeded = cfg.clone();
        seeded.seed = 8;
        assert_ne!(base, plan_hash("segm", Technique::DupVal, &seeded, 1000));
        // Scheduling knobs do not affect the plan: snapshot interval,
        // threads, spin proof, and static pruning are all proven
        // result-invariant, so resuming across any of them is legal.
        let mut knobs = cfg.clone();
        knobs.snapshot_interval = 512;
        knobs.threads = 9;
        knobs.spin_proof = !knobs.spin_proof;
        knobs.prune = !knobs.prune;
        assert_eq!(base, plan_hash("segm", Technique::DupVal, &knobs, 1000));
    }

    #[test]
    fn streamed_store_replays_to_buffered_aggregates() {
        let dir = temp_store_dir("equiv");
        let cfg = small_cfg(25);
        let store = RunStore::create(&dir, store_manifest(&cfg)).unwrap();
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let stats = run_campaign_to_store(&store, &p, Technique::DupVal, &cfg, None).unwrap();
        assert_eq!(stats.executed, 25);
        assert!(stats.complete);

        let (buf_result, buf_tel) = run_campaign_attributed(
            &*p.workload,
            p.module(Technique::DupVal),
            &cfg,
            Some(p.protection(Technique::DupVal)),
        );
        let buf_cov = build_coverage(
            "tiff2bw",
            Technique::DupVal,
            p.module(Technique::DupVal),
            p.protection(Technique::DupVal),
            &buf_result,
            &buf_tel.records,
        );

        let shards = replay(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        let shard = &shards[0];
        assert!(shard.complete);
        assert_eq!(shard.result, buf_result);
        assert_eq!(shard.telemetry.events, buf_tel.events);
        assert_eq!(shard.telemetry.records, buf_tel.records);
        assert_eq!(shard.telemetry.metrics.to_json(), buf_tel.metrics.to_json());
        assert_eq!(shard.coverage, buf_cov);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trial_cap_interrupts_and_resume_completes_exactly() {
        let dir = temp_store_dir("resume");
        let cfg = small_cfg(20);
        let store = RunStore::create(&dir, store_manifest(&cfg)).unwrap();
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let first = run_campaign_to_store(&store, &p, Technique::DupOnly, &cfg, Some(8)).unwrap();
        assert_eq!((first.already_done, first.executed), (0, 8));
        assert!(!first.complete);
        drop(store);

        // Reopen (as `repro campaign --resume` does) and finish.
        let store = RunStore::open(&dir).unwrap();
        let cfg = campaign_config_from_manifest(&store.manifest()).unwrap();
        let second = run_campaign_to_store(&store, &p, Technique::DupOnly, &cfg, None).unwrap();
        assert_eq!((second.already_done, second.executed), (8, 12));
        assert!(second.complete);

        // A third run is a no-op.
        let third = run_campaign_to_store(&store, &p, Technique::DupOnly, &cfg, None).unwrap();
        assert_eq!(third.executed, 0);
        assert!(third.complete);

        let shards = replay(&dir).unwrap();
        let (result, _) = run_campaign_attributed(
            &*p.workload,
            p.module(Technique::DupOnly),
            &cfg,
            Some(p.protection(Technique::DupOnly)),
        );
        assert_eq!(shards[0].result, result);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_wrong_seed_is_refused() {
        let dir = temp_store_dir("hash");
        let cfg = small_cfg(10);
        let store = RunStore::create(&dir, store_manifest(&cfg)).unwrap();
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        run_campaign_to_store(&store, &p, Technique::Original, &cfg, Some(2)).unwrap();
        let mut wrong = cfg.clone();
        wrong.seed ^= 1;
        let err = run_campaign_to_store(&store, &p, Technique::Original, &wrong, None)
            .expect_err("mismatched plans must not mix");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
