//! Per-fault-site coverage maps, USDC attribution, and the
//! protection-gap report.
//!
//! A campaign's aggregate outcome rates (Fig. 11) say *how much*
//! protection a technique buys, not *where* the residual unacceptable
//! SDCs come from. This module joins each trial's [`InjectionRecord`] —
//! which names the victim slot's defining static instruction — with the
//! transform's [`ProtectionMap`] to aggregate outcomes per **fault
//! site**: `(function, defining instruction, bit band)`. Ranking the
//! *unprotected* sites by their USDC contribution yields the
//! protection-gap report: the exact sites "Dup + val chks" still leaves
//! open, and the sites it closes relative to "Dup only".
//!
//! Branch-target corruptions have no victim slot; they are bucketed
//! under a separate `branch` pseudo-site per function so control-flow
//! faults can never be misattributed to register sites. Register faults
//! whose victim is a parameter slot land in a per-function `param`
//! bucket.

use crate::campaign::CampaignResult;
use crate::outcome::{Outcome, TrialRecord};
use serde::{Deserialize, Serialize};
use softft::{ProtClass, ProtectionMap, Technique};
use softft_ir::{FuncId, InstId, Module, Type};
use softft_telemetry::{check_kind_label, Histogram};
use softft_vm::InjectionRecord;
use std::collections::HashMap;

/// Schema stamp written into every [`CoverageMap`]; bump on any
/// backwards-incompatible change.
pub const COVERAGE_SCHEMA_VERSION: u32 = 1;

/// Which half of the victim value's type width the flipped bit fell in.
///
/// The paper's "large vs small value change" split (Fig. 2) is mostly a
/// bit-position effect; banding sites by flipped-bit half makes that
/// visible per site without exploding the map to per-bit granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BitBand {
    /// Bit position below half the type width.
    Lo,
    /// Bit position at or above half the type width.
    Hi,
    /// Whole-width bucket: 1-bit types and faults with no bit position
    /// (branch-target corruptions).
    Full,
}

impl BitBand {
    /// All bands in rendering order.
    pub const ALL: [BitBand; 3] = [BitBand::Lo, BitBand::Hi, BitBand::Full];

    /// The band a register flip of `bit` in a value of type `ty` falls in.
    pub fn of(ty: Type, bit: u32) -> BitBand {
        let w = ty.bits();
        if w <= 1 {
            BitBand::Full
        } else if bit < w / 2 {
            BitBand::Lo
        } else {
            BitBand::Hi
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            BitBand::Lo => "lo",
            BitBand::Hi => "hi",
            BitBand::Full => "full",
        }
    }
}

/// What kind of static site a fault is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiteKind {
    /// The victim slot is the result of a static instruction.
    Inst(InstId),
    /// The victim slot is a function parameter (no defining instruction).
    Param,
    /// A corrupted branch target (no victim slot at all).
    Branch,
}

/// The static fault site of one injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultSite {
    /// Function whose frame was targeted.
    pub func: FuncId,
    /// Site kind (instruction result / parameter slot / branch target).
    pub kind: SiteKind,
    /// Bit band of the flip (always [`BitBand::Full`] for branches).
    pub band: BitBand,
}

/// Derives the static fault site of an injection record.
pub fn fault_site(rec: &InjectionRecord) -> FaultSite {
    match rec.register_fault() {
        Some(r) => FaultSite {
            func: rec.func,
            kind: match r.def_inst {
                Some(i) => SiteKind::Inst(i),
                None => SiteKind::Param,
            },
            band: BitBand::of(r.ty, r.bit),
        },
        None => FaultSite {
            func: rec.func,
            kind: SiteKind::Branch,
            band: BitBand::Full,
        },
    }
}

/// Opcode label for a site: the defining instruction's mnemonic, or the
/// `param` / `branch` pseudo-opcodes.
pub fn site_op_label(module: &Module, site: &FaultSite) -> String {
    match site.kind {
        SiteKind::Inst(i) => module.function(site.func).inst(i).op.mnemonic().to_string(),
        SiteKind::Param => "param".to_string(),
        SiteKind::Branch => "branch".to_string(),
    }
}

/// Protection-class label for a site. Instruction sites read the
/// transform's [`ProtectionMap`]; parameter slots are never protected by
/// the paper's scheme, and branch targets are a control-flow concern
/// (CFCSS territory), not a value-protection one.
pub fn site_protection_label(protection: &ProtectionMap, site: &FaultSite) -> &'static str {
    match site.kind {
        SiteKind::Inst(i) => protection.class_of(site.func, i).label(),
        SiteKind::Param => ProtClass::Unprotected.label(),
        SiteKind::Branch => "control-flow",
    }
}

/// Detection counts for one check kind at one site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckCover {
    /// Check-kind label (see [`softft_telemetry::check_kind_label`]).
    pub check: String,
    /// Trials at this site the kind detected.
    pub count: u64,
}

/// Aggregated outcomes for one `(function, site, bit band)` cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// Function name.
    pub func: String,
    /// Function id (index into the module's function table).
    pub func_id: u64,
    /// Defining static instruction id, for instruction sites.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub inst: Option<u64>,
    /// Opcode mnemonic, or `param` / `branch` for pseudo-sites.
    pub op: String,
    /// Protection class label (`duplicated` / `value-checked` /
    /// `unprotected` / `control-flow`).
    pub protection: String,
    /// Bit band label (`lo` / `hi` / `full`).
    pub band: String,
    /// Injected trials attributed to this cell.
    pub trials: u64,
    /// Masked outcomes.
    pub masked: u64,
    /// Acceptable SDCs.
    pub acceptable_sdc: u64,
    /// Unacceptable SDCs.
    pub unacceptable_sdc: u64,
    /// Hardware detections.
    pub hw_detect: u64,
    /// Software detections (all check kinds).
    pub sw_detect: u64,
    /// Failures.
    pub failure: u64,
    /// USDC fraction of this cell's trials.
    pub usdc_rate: f64,
    /// Detected fraction (hardware + software) of this cell's trials.
    pub detect_rate: f64,
    /// Label of the check kind detecting most trials here, when any
    /// software check fired.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub covered_by: Option<String>,
    /// Per-check-kind detection counts (non-zero kinds only, in
    /// [`Outcome::CANONICAL`] order).
    pub checks: Vec<CheckCover>,
    /// Median detection latency (dynamic instructions), over detected
    /// trials.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub latency_p50: Option<u64>,
    /// 90th-percentile detection latency.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub latency_p90: Option<u64>,
    /// 99th-percentile detection latency.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub latency_p99: Option<u64>,
}

/// One ranked entry of the protection-gap report: an unprotected site
/// (bands folded together) with its USDC contribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GapSite {
    /// Function name.
    pub func: String,
    /// Function id.
    pub func_id: u64,
    /// Defining static instruction id, for instruction sites.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub inst: Option<u64>,
    /// Opcode mnemonic (or pseudo-opcode).
    pub op: String,
    /// Injected trials attributed to the site (all bands).
    pub trials: u64,
    /// USDC trials at the site.
    pub usdc: u64,
    /// USDC fraction of the site's trials.
    pub usdc_rate: f64,
    /// Dominant detecting check kind at the site, when any fired.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub covered_by: Option<String>,
}

/// The full coverage map for one (benchmark, technique) campaign:
/// per-site outcome distributions plus honest denominators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Schema stamp ([`COVERAGE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Benchmark name.
    pub benchmark: String,
    /// Technique label (matches [`Technique::label`]).
    pub technique: String,
    /// Total trials in the campaign.
    pub trials: u64,
    /// Trials that actually injected (attributed to a site below).
    pub injected: u64,
    /// Trials whose trigger was never reached (nothing injected; these
    /// classify as Masked but are excluded from per-site denominators).
    pub trigger_unreached: u64,
    /// Per `(function, site, band)` aggregates, in deterministic site
    /// order.
    pub sites: Vec<SiteReport>,
}

impl CoverageMap {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a serialized coverage map.
    pub fn from_json(s: &str) -> serde_json::Result<CoverageMap> {
        serde_json::from_str(s)
    }

    /// The protection-gap report: unprotected sites (bands folded) that
    /// contributed at least one USDC, ranked by USDC count, then USDC
    /// rate, then site id. `top_n == 0` means all.
    pub fn gap_sites(&self, top_n: usize) -> Vec<GapSite> {
        // Fold bands: key by (func_id, inst, op) over unprotected sites.
        let mut folded: HashMap<(u64, Option<u64>), GapSite> = HashMap::new();
        let mut checks: HashMap<(u64, Option<u64>), HashMap<String, u64>> = HashMap::new();
        for s in &self.sites {
            if s.protection != ProtClass::Unprotected.label() {
                continue;
            }
            let key = (s.func_id, s.inst);
            let e = folded.entry(key).or_insert_with(|| GapSite {
                func: s.func.clone(),
                func_id: s.func_id,
                inst: s.inst,
                op: s.op.clone(),
                trials: 0,
                usdc: 0,
                usdc_rate: 0.0,
                covered_by: None,
            });
            e.trials += s.trials;
            e.usdc += s.unacceptable_sdc;
            let ck = checks.entry(key).or_default();
            for c in &s.checks {
                *ck.entry(c.check.clone()).or_insert(0) += c.count;
            }
        }
        let mut gaps: Vec<GapSite> = folded
            .into_iter()
            .filter(|(_, g)| g.usdc > 0)
            .map(|(key, mut g)| {
                g.usdc_rate = g.usdc as f64 / g.trials.max(1) as f64;
                g.covered_by = checks
                    .get(&key)
                    .and_then(|ck| dominant_check(ck.iter().map(|(k, &v)| (k.clone(), v))));
                g
            })
            .collect();
        gaps.sort_by(|a, b| {
            b.usdc
                .cmp(&a.usdc)
                .then(
                    b.usdc_rate
                        .partial_cmp(&a.usdc_rate)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.func_id.cmp(&b.func_id))
                .then(a.inst.cmp(&b.inst))
        });
        if top_n > 0 {
            gaps.truncate(top_n);
        }
        gaps
    }

    /// Number of distinct unprotected sites (bands folded) with at least
    /// one USDC — the headline "gap count" the techniques are compared on.
    pub fn gap_site_count(&self) -> usize {
        self.gap_sites(0).len()
    }

    /// Sites attributed to branch-target corruptions (the separate
    /// control-flow bucket).
    pub fn branch_sites(&self) -> impl Iterator<Item = &SiteReport> + '_ {
        self.sites.iter().filter(|s| s.op == "branch")
    }
}

/// The label of the check kind with the highest count (ties broken by
/// label order for determinism); `None` when no check fired.
fn dominant_check(counts: impl Iterator<Item = (String, u64)>) -> Option<String> {
    let mut all: Vec<(String, u64)> = counts.filter(|(_, n)| *n > 0).collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.into_iter().next().map(|(k, _)| k)
}

#[derive(Default)]
struct SiteAcc {
    trials: u64,
    outcomes: HashMap<Outcome, u64>,
    latencies: Histogram,
}

/// Streaming accumulator behind [`build_coverage`]: trials fold in one
/// at a time, so the live campaign observatory can aggregate coverage
/// online as shard events arrive. [`CoverageAccum::build`] snapshots
/// exactly the map the buffered path produces — both paths are this
/// accumulator, fed in different orders, and the per-site aggregates
/// are order-insensitive (counts and log-bucketed histograms).
#[derive(Default)]
pub struct CoverageAccum {
    cells: HashMap<FaultSite, SiteAcc>,
    injected: u64,
}

impl CoverageAccum {
    /// An empty accumulator.
    pub fn new() -> CoverageAccum {
        CoverageAccum::default()
    }

    /// Folds one classified trial in. Trials whose trigger never fired
    /// carry no injection record and contribute nothing per-site.
    pub fn add(&mut self, rec: &TrialRecord) {
        let Some(inj) = rec.injection.as_ref() else {
            return;
        };
        self.injected += 1;
        let site = fault_site(inj);
        let acc = self.cells.entry(site).or_default();
        acc.trials += 1;
        *acc.outcomes.entry(rec.outcome).or_insert(0) += 1;
        if let Some(lat) = rec.detect_latency {
            acc.latencies.record(lat);
        }
    }

    /// Trials folded so far that actually injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Snapshots the accumulated cells into a [`CoverageMap`] with the
    /// campaign-level denominators supplied by the caller.
    pub fn build(
        &self,
        benchmark: &str,
        technique: Technique,
        module: &Module,
        protection: &ProtectionMap,
        trials: u64,
        trigger_unreached: u64,
    ) -> CoverageMap {
        let mut keys: Vec<FaultSite> = self.cells.keys().copied().collect();
        keys.sort();
        let sites = keys
            .into_iter()
            .map(|site| self.site_report(site, module, protection))
            .collect();

        CoverageMap {
            schema_version: COVERAGE_SCHEMA_VERSION,
            benchmark: benchmark.to_string(),
            technique: technique.label().to_string(),
            trials,
            injected: self.injected,
            trigger_unreached,
            sites,
        }
    }

    fn site_report(
        &self,
        site: FaultSite,
        module: &Module,
        protection: &ProtectionMap,
    ) -> SiteReport {
        {
            let acc = &self.cells[&site];
            let count = |o: Outcome| acc.outcomes.get(&o).copied().unwrap_or(0);
            let sw_detect: u64 = acc
                .outcomes
                .iter()
                .filter(|(o, _)| matches!(o, Outcome::SwDetect(_)))
                .map(|(_, n)| *n)
                .sum();
            let hw_detect = count(Outcome::HwDetect);
            let usdc = count(Outcome::UnacceptableSdc);
            // Per-kind detection counts in canonical order.
            let checks: Vec<CheckCover> = Outcome::CANONICAL
                .iter()
                .filter_map(|o| match o {
                    Outcome::SwDetect(k) => {
                        let n = count(*o);
                        (n > 0).then(|| CheckCover {
                            check: check_kind_label(*k).to_string(),
                            count: n,
                        })
                    }
                    _ => None,
                })
                .collect();
            let covered_by = dominant_check(checks.iter().map(|c| (c.check.clone(), c.count)));
            let q = |f: f64| (acc.latencies.count() > 0).then(|| acc.latencies.quantile(f));
            SiteReport {
                func: module.function(site.func).name.clone(),
                func_id: site.func.index() as u64,
                inst: match site.kind {
                    SiteKind::Inst(i) => Some(i.index() as u64),
                    _ => None,
                },
                op: site_op_label(module, &site),
                protection: site_protection_label(protection, &site).to_string(),
                band: site.band.label().to_string(),
                trials: acc.trials,
                masked: count(Outcome::Masked),
                acceptable_sdc: count(Outcome::AcceptableSdc),
                unacceptable_sdc: usdc,
                hw_detect,
                sw_detect,
                failure: count(Outcome::Failure),
                usdc_rate: usdc as f64 / acc.trials.max(1) as f64,
                detect_rate: (hw_detect + sw_detect) as f64 / acc.trials.max(1) as f64,
                covered_by,
                checks,
                latency_p50: q(0.50),
                latency_p90: q(0.90),
                latency_p99: q(0.99),
            }
        }
    }
}

/// Aggregates a campaign's per-trial records into a [`CoverageMap`].
///
/// `module` is the module the campaign ran (the transformed variant) —
/// injection records name its functions and instructions; `protection`
/// is the map [`softft::transform_protected`] produced alongside it.
pub fn build_coverage(
    benchmark: &str,
    technique: Technique,
    module: &Module,
    protection: &ProtectionMap,
    result: &CampaignResult,
    records: &[TrialRecord],
) -> CoverageMap {
    let mut accum = CoverageAccum::new();
    for rec in records {
        accum.add(rec);
    }
    accum.build(
        benchmark,
        technique,
        module,
        protection,
        result.trials as u64,
        result.trigger_unreached as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::{BlockId, ValueId};

    #[test]
    fn bit_bands_split_type_width() {
        assert_eq!(BitBand::of(Type::I64, 0), BitBand::Lo);
        assert_eq!(BitBand::of(Type::I64, 31), BitBand::Lo);
        assert_eq!(BitBand::of(Type::I64, 32), BitBand::Hi);
        assert_eq!(BitBand::of(Type::I64, 63), BitBand::Hi);
        assert_eq!(BitBand::of(Type::I8, 3), BitBand::Lo);
        assert_eq!(BitBand::of(Type::I8, 4), BitBand::Hi);
        assert_eq!(BitBand::of(Type::I1, 0), BitBand::Full);
    }

    #[test]
    fn branch_faults_bucket_separately() {
        let br = InjectionRecord::branch(10, FuncId::new(2), BlockId::new(0), BlockId::new(3));
        let site = fault_site(&br);
        assert_eq!(site.kind, SiteKind::Branch);
        assert_eq!(site.band, BitBand::Full);
        let reg = InjectionRecord::register(
            10,
            FuncId::new(2),
            ValueId::new(1),
            Type::I64,
            5,
            0,
            32,
            Some(InstId::new(7)),
        );
        let rsite = fault_site(&reg);
        assert_eq!(rsite.kind, SiteKind::Inst(InstId::new(7)));
        assert_ne!(site, rsite, "branch and register sites must not merge");
        let param = InjectionRecord::register(
            10,
            FuncId::new(2),
            ValueId::new(0),
            Type::I64,
            5,
            0,
            32,
            None,
        );
        assert_eq!(fault_site(&param).kind, SiteKind::Param);
    }

    #[test]
    fn dominant_check_is_deterministic() {
        let counts = vec![
            ("value-range".to_string(), 3),
            ("dup-mismatch".to_string(), 5),
            ("value-single".to_string(), 5),
        ];
        // Tie between dup-mismatch and value-single: label order wins.
        assert_eq!(
            dominant_check(counts.into_iter()),
            Some("dup-mismatch".to_string())
        );
        assert_eq!(dominant_check(std::iter::empty()), None);
    }
}
