#![warn(missing_docs)]

//! # softft-campaign
//!
//! Statistical fault-injection campaigns and the reproduction of every
//! table and figure in the paper's evaluation (Section V):
//!
//! * [`outcome`] — per-trial classification into the paper's categories
//!   (Masked / SWDetect / HWDetect / Failure / SDC, with SDC refined into
//!   acceptable and unacceptable);
//! * [`prep`] — benchmark preparation: profile on the train input,
//!   transform under each technique;
//! * [`campaign`] — the injection loop (randomized in time and space,
//!   seeded, parallelized across threads);
//! * [`engine`] — the same loop split for fleet execution: a
//!   [`ShardEngine`] prepared once per worker executes plan-index
//!   ranges handed out (and stolen back) by a coordinator, through the
//!   identical per-trial body;
//! * [`snapshot`] — golden-run checkpointing so trials resume from the
//!   greatest checkpoint below their trigger instead of re-executing the
//!   fault-free prefix (bitwise-identical results, large speedup);
//! * [`profile`] — campaign phase-time attribution (decode / golden /
//!   checkpoint record / resume / exec / fast-forward, with per-outcome
//!   and watchdog-spin totals), kept off the determinism path;
//! * [`coverage`] — per-fault-site coverage maps, USDC attribution, and
//!   the protection-gap report;
//! * [`live`] — streaming campaigns over the append-only run store:
//!   trials persist as they complete, interrupted campaigns resume
//!   exactly, and [`live::replay`] folds a store back into the same
//!   aggregates the buffered path produces;
//! * [`perf`] — fault-free timing runs for the performance-overhead
//!   figure;
//! * [`falsepos`] — value-check failures with no fault injected;
//! * [`crossval`] — train/test input swap (Section V sensitivity);
//! * [`stats`] — confidence-interval margins (Leveugle et al.);
//! * [`report`] — text renderers for each figure/table.

pub mod campaign;
pub mod coverage;
pub mod crossval;
pub mod engine;
pub mod falsepos;
pub mod live;
pub mod outcome;
pub mod perf;
pub mod prep;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod snapshot;
pub mod stats;

pub use campaign::{
    golden_dyn_insts, run_campaign, run_campaign_attributed, run_campaign_counted,
    run_campaign_profiled, run_campaign_recorded, run_campaign_traced, run_campaign_with_stats,
    CampaignConfig, CampaignResult, CampaignTelemetry, TrialTiming,
};
pub use coverage::{build_coverage, BitBand, CoverageAccum, CoverageMap, GapSite, SiteReport};
pub use engine::{
    neutralized_module, IndexSource, ShardEngine, ShardSink, ShardStats, SharedRange,
};
pub use live::{
    campaign_config_from_manifest, fault_kind_from_label, fault_kind_label, plan_hash,
    record_from_json, record_to_json, replay, run_campaign_to_store, store_manifest, stored_trial,
    ReplayedShard, StreamStats,
};
pub use outcome::{Outcome, TrialRecord};
pub use prep::{prepare, PreparedBenchmark};
pub use profile::{CampaignProfile, OutcomePhase};
pub use snapshot::{Checkpoint, CheckpointStore, SnapshotStats};
