//! Text renderers for the paper's tables and figures.
//!
//! Each `render_*` function takes the data computed by the campaign /
//! perf / static passes and prints the same rows or series the paper's
//! corresponding exhibit reports, plus the cross-benchmark means quoted
//! in the text.

use crate::campaign::CampaignResult;
use crate::coverage::CoverageMap;
use crate::stats::worst_case_margin_95;
use softft::{StaticStats, Technique};
use softft_ir::CheckKind;
use softft_workloads::{FidelityMetric, Workload};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-benchmark campaign results for a set of techniques.
pub type ResultsByTechnique = HashMap<Technique, CampaignResult>;

fn pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Table I: benchmark registry (name, category, fidelity metric,
/// threshold).
pub fn render_table1(workloads: &[Box<dyn Workload>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: benchmarks, domains, and fidelity measures\n\
         {:<10} {:<17} {:<22} threshold",
        "benchmark", "category", "fidelity metric"
    );
    for w in workloads {
        let (metric, thr) = match w.metric() {
            FidelityMetric::Psnr { threshold_db } => ("PSNR", format!("{threshold_db} dB")),
            FidelityMetric::SegmentalSnr { threshold_db } => {
                ("segmental SNR", format!("{threshold_db} dB"))
            }
            FidelityMetric::Mismatch { threshold_frac } => {
                ("matrix mismatch", format!("{:.0}%", threshold_frac * 100.0))
            }
            FidelityMetric::ClassError { threshold_frac } => (
                "classification error",
                format!("{:.0}%", threshold_frac * 100.0),
            ),
        };
        let _ = writeln!(
            out,
            "{:<10} {:<17} {:<22} {}",
            w.name(),
            w.category().label(),
            metric,
            thr
        );
    }
    out
}

/// Table II: the timing model's core configuration.
pub fn render_table2() -> String {
    let cfg = softft_vm::timing::CoreConfig::default();
    format!(
        "Table II: simulated core parameters\n\
         issue width          {}\n\
         reorder buffer       {} entries\n\
         L1 load latency      {} cycles\n\
         integer multiply     {} cycles\n\
         integer divide       {} cycles\n\
         FP op                {} cycles\n\
         FP divide/sqrt       {} cycles\n\
         call overhead        {} cycles\n",
        cfg.issue_width,
        cfg.rob_size,
        cfg.load_latency,
        cfg.mul_latency,
        cfg.div_latency,
        cfg.fp_latency,
        cfg.fdiv_latency,
        cfg.call_overhead,
    )
}

/// Fig. 2: SDC breakdown on the *unmodified* application — acceptable
/// SDCs vs unacceptable, the latter split by large/small injected value
/// change.
pub fn render_fig2(rows: &[(String, CampaignResult)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2: SDC breakdown of unmodified applications (% of injections)\n\
         {:<10} {:>8} {:>8} {:>12} {:>12}",
        "benchmark", "SDC", "ASDC", "USDC-large", "USDC-small"
    );
    let (mut s_sdc, mut s_asdc, mut s_l, mut s_s) = (0.0, 0.0, 0.0, 0.0);
    for (name, r) in rows {
        let asdc = r.frac(crate::outcome::Outcome::AcceptableSdc);
        let large = r.usdc_large as f64 / r.trials.max(1) as f64;
        let small = r.usdc_small as f64 / r.trials.max(1) as f64;
        let sdc = r.sdc_frac();
        let _ = writeln!(
            out,
            "{:<10} {} {} {}  {}",
            name,
            pct(sdc),
            pct(asdc),
            pct(large),
            pct(small)
        );
        s_sdc += sdc;
        s_asdc += asdc;
        s_l += large;
        s_s += small;
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<10} {} {} {}  {}   (paper: ~77% of SDCs acceptable, 14% large-change USDC)",
        "mean",
        pct(s_sdc / n),
        pct(s_asdc / n),
        pct(s_l / n),
        pct(s_s / n)
    );
    out
}

/// Fig. 6 companion: check-type census per benchmark.
pub fn render_fig6(rows: &[(String, StaticStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6: expected-value check flavours inserted (Dup + val chks)\n\
         {:<10} {:>8} {:>8} {:>8}",
        "benchmark", "single", "pair", "range"
    );
    for (name, s) in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}",
            name, s.checks_single, s.checks_pair, s.checks_range
        );
    }
    out
}

/// Fig. 10: state variables, duplicated instructions, and value checks
/// as fractions of static IR instructions.
pub fn render_fig10(rows: &[(String, StaticStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 10: static transformation statistics (fraction of static IR instructions)\n\
         {:<10} {:>8} {:>11} {:>12} {:>12}",
        "benchmark", "insts", "state vars", "duplicated", "value chks"
    );
    let (mut sv, mut dup, mut chk) = (0.0, 0.0, 0.0);
    for (name, s) in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {} {} {}",
            name,
            s.insts_before,
            pct(s.state_var_frac()),
            pct(s.duplicated_frac()),
            pct(s.value_check_frac())
        );
        sv += s.state_var_frac();
        dup += s.duplicated_frac();
        chk += s.value_check_frac();
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<10} {:>8} {} {} {}   (paper: ≤11.4% duplicated, ≤8.3% value-checked)",
        "mean",
        "",
        pct(sv / n),
        pct(dup / n),
        pct(chk / n)
    );
    out
}

/// Fig. 11: fault-outcome classification per benchmark × technique.
pub fn render_fig11(rows: &[(String, ResultsByTechnique)], trials: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 11: fault classification (% of injections; ±{:.1}% at 95% conf.)\n\
         {:<10} {:<17} {:>8} {:>9} {:>9} {:>8} {:>7}",
        worst_case_margin_95(trials) * 100.0,
        "benchmark",
        "technique",
        "Masked",
        "SWDetect",
        "HWDetect",
        "Failure",
        "USDC"
    );
    let techniques = [Technique::Original, Technique::DupOnly, Technique::DupVal];
    let mut means: HashMap<Technique, [f64; 5]> = HashMap::new();
    for (name, by_t) in rows {
        for t in techniques {
            let Some(r) = by_t.get(&t) else { continue };
            let vals = [
                r.masked_frac(),
                r.swdetect_frac(),
                r.hwdetect_frac(),
                r.failure_frac(),
                r.usdc_frac(),
            ];
            let _ = writeln!(
                out,
                "{:<10} {:<17} {} {}  {} {} {}",
                name,
                t.label(),
                pct(vals[0]),
                pct(vals[1]),
                pct(vals[2]),
                pct(vals[3]),
                pct(vals[4])
            );
            let e = means.entry(t).or_insert([0.0; 5]);
            for (i, v) in vals.iter().enumerate() {
                e[i] += v;
            }
        }
    }
    let n = rows.len().max(1) as f64;
    for t in techniques {
        if let Some(m) = means.get(&t) {
            let _ = writeln!(
                out,
                "{:<10} {:<17} {} {}  {} {} {}",
                "mean",
                t.label(),
                pct(m[0] / n),
                pct(m[1] / n),
                pct(m[2] / n),
                pct(m[3] / n),
                pct(m[4] / n)
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper means: USDC 3.4% original → 1.8% dup-only → 1.2% dup+val; full dup 1.4%)"
    );
    out
}

/// Fig. 12: runtime overheads per technique.
pub fn render_fig12(rows: &[(String, Vec<(Technique, f64)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 12: performance overhead vs original (modelled cycles)\n\
         {:<10} {:>10} {:>14} {:>10}",
        "benchmark", "Dup only", "Dup+val chks", "Full dup"
    );
    let mut sums: HashMap<Technique, f64> = HashMap::new();
    for (name, ovs) in rows {
        let get = |t: Technique| {
            ovs.iter()
                .find(|(x, _)| *x == t)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        let (a, b, c) = (
            get(Technique::DupOnly),
            get(Technique::DupVal),
            get(Technique::FullDup),
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>13} {:>9}",
            name,
            pct(a),
            pct(b),
            pct(c)
        );
        *sums.entry(Technique::DupOnly).or_default() += a;
        *sums.entry(Technique::DupVal).or_default() += b;
        *sums.entry(Technique::FullDup).or_default() += c;
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>13} {:>9}   (paper means: 7.6% / 19.5% / 57%)",
        "mean",
        pct(sums.get(&Technique::DupOnly).copied().unwrap_or(0.0) / n),
        pct(sums.get(&Technique::DupVal).copied().unwrap_or(0.0) / n),
        pct(sums.get(&Technique::FullDup).copied().unwrap_or(0.0) / n)
    );
    out
}

/// Fig. 13: SDC totals split into acceptable and unacceptable per
/// technique.
pub fn render_fig13(rows: &[(String, ResultsByTechnique)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 13: SDC breakdown per technique (% of injections)\n\
         {:<10} {:<17} {:>8} {:>8} {:>8}",
        "benchmark", "technique", "SDC", "ASDC", "USDC"
    );
    let techniques = [Technique::Original, Technique::DupOnly, Technique::DupVal];
    let mut means: HashMap<Technique, [f64; 3]> = HashMap::new();
    for (name, by_t) in rows {
        for t in techniques {
            let Some(r) = by_t.get(&t) else { continue };
            let vals = [
                r.sdc_frac(),
                r.frac(crate::outcome::Outcome::AcceptableSdc),
                r.usdc_frac(),
            ];
            let _ = writeln!(
                out,
                "{:<10} {:<17} {} {} {}",
                name,
                t.label(),
                pct(vals[0]),
                pct(vals[1]),
                pct(vals[2])
            );
            let e = means.entry(t).or_insert([0.0; 3]);
            for (i, v) in vals.iter().enumerate() {
                e[i] += v;
            }
        }
    }
    let n = rows.len().max(1) as f64;
    for t in techniques {
        if let Some(m) = means.get(&t) {
            let _ = writeln!(
                out,
                "{:<10} {:<17} {} {} {}",
                "mean",
                t.label(),
                pct(m[0] / n),
                pct(m[1] / n),
                pct(m[2] / n)
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper means: SDC 15% → 9.5% → 7.3%; USDC 3.4% → 1.8% → 1.2%)"
    );
    out
}

/// Detection-latency percentiles per benchmark × technique: dynamic
/// instructions from injection to the detecting check (SW) or trap
/// symptom (HW). Techniques without a result row are skipped; `-`
/// marks empty histograms (no detections of that class).
pub fn render_latency(rows: &[(String, ResultsByTechnique)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Detection latency (dynamic instructions from injection to detection)\n\
         {:<10} {:<17} {:>6} {:>9} {:>9} {:>9} {:>6} {:>9}",
        "benchmark", "technique", "sw-n", "sw-p50", "sw-p90", "sw-p99", "hw-n", "hw-p50"
    );
    let techniques = [
        Technique::Original,
        Technique::DupOnly,
        Technique::DupVal,
        Technique::FullDup,
    ];
    let cell = |h: &softft_telemetry::Histogram, q: f64| {
        if h.count() == 0 {
            format!("{:>9}", "-")
        } else {
            format!("{:>9}", h.quantile(q))
        }
    };
    for (name, by_t) in rows {
        for t in techniques {
            let Some(r) = by_t.get(&t) else { continue };
            let _ = writeln!(
                out,
                "{:<10} {:<17} {:>6} {} {} {} {:>6} {}",
                name,
                t.label(),
                r.sw_latency.count(),
                cell(&r.sw_latency, 0.50),
                cell(&r.sw_latency, 0.90),
                cell(&r.sw_latency, 0.99),
                r.hw_latency.count(),
                cell(&r.hw_latency, 0.50),
            );
        }
    }
    let _ = writeln!(
        out,
        "(duplication checks fire within the producer chain; value checks at the\n\
         next state-variable write — low percentiles justify the paper's short\n\
         hardware detection window)"
    );
    out
}

/// Outcome counts for one campaign in [`crate::Outcome::CANONICAL`]
/// order, zero counts included — byte-stable for identical results.
pub fn render_outcome_counts(r: &CampaignResult) -> String {
    let mut out = String::new();
    for (o, n) in r.ordered_counts() {
        let _ = writeln!(out, "  {:<24} {:>6}", o.label(), n);
    }
    out
}

/// The protection-gap exhibit: per benchmark × technique, the top-N
/// unprotected fault sites ranked by USDC contribution (bands folded),
/// then the gap-count shrinkage between consecutive techniques — the
/// per-site substantiation of the paper's USDC 1.8% → 1.2% step from
/// "Dup only" to "Dup + val chks".
pub fn render_coverage(rows: &[(String, Vec<(Technique, CoverageMap)>)], top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Protection-gap report: unprotected sites ranked by USDC contribution\n\
         (site = function + defining static instruction of the victim slot)"
    );
    for (name, by_t) in rows {
        for (t, cov) in by_t {
            let gaps = cov.gap_sites(top_n);
            let _ = writeln!(
                out,
                "\n{:<10} {:<17} gap-sites {:>4}   injected {:>6}   trigger-unreached {:>4}",
                name,
                t.label(),
                cov.gap_site_count(),
                cov.injected,
                cov.trigger_unreached
            );
            if gaps.is_empty() {
                let _ = writeln!(out, "  (no unprotected site produced an unacceptable SDC)");
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>6} {:<8} {:>6} {:>6} {:>10}  covered-by",
                "func", "site", "op", "trials", "usdc", "usdc-rate"
            );
            for g in gaps {
                let site = g
                    .inst
                    .map(|i| format!("i{i}"))
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  {:<14} {:>6} {:<8} {:>6} {:>6} {:>10}  {}",
                    g.func,
                    site,
                    g.op,
                    g.trials,
                    g.usdc,
                    pct(g.usdc_rate),
                    g.covered_by.as_deref().unwrap_or("-")
                );
            }
        }
        // Gap-count shrinkage across the technique ladder.
        let counts: Vec<(&Technique, usize)> = by_t
            .iter()
            .map(|(t, cov)| (t, cov.gap_site_count()))
            .collect();
        if counts.len() > 1 {
            let ladder: Vec<String> = counts
                .iter()
                .map(|(t, n)| format!("{} {}", t.label(), n))
                .collect();
            let _ = writeln!(
                out,
                "\n{:<10} gap-site ladder: {}",
                name,
                ladder.join(" -> ")
            );
        }
    }
    out
}

/// SWDetect attribution: how much detection each mechanism contributes
/// under `Dup + val chks`.
pub fn render_detection_split(rows: &[(String, CampaignResult)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Detection attribution under Dup + val chks (% of injections)\n\
         {:<10} {:>10} {:>9} {:>8} {:>8}",
        "benchmark", "dup-chk", "single", "pair", "range"
    );
    for (name, r) in rows {
        let _ = writeln!(
            out,
            "{:<10} {} {} {} {}",
            name,
            pct(r.swdetect_kind_frac(CheckKind::DupMismatch)),
            pct(r.swdetect_kind_frac(CheckKind::ValueSingle)),
            pct(r.swdetect_kind_frac(CheckKind::ValuePair)),
            pct(r.swdetect_kind_frac(CheckKind::ValueRange))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;
    use softft_workloads::all_workloads;

    fn fake_result(masked: u32, sw: u32, usdc: u32) -> CampaignResult {
        let mut counts = HashMap::new();
        counts.insert(Outcome::Masked, masked);
        counts.insert(Outcome::SwDetect(CheckKind::DupMismatch), sw);
        counts.insert(Outcome::UnacceptableSdc, usdc);
        CampaignResult {
            trials: masked + sw + usdc,
            counts,
            usdc_large: usdc / 2,
            usdc_small: usdc - usdc / 2,
            golden_dyn_insts: 1000,
            ..CampaignResult::default()
        }
    }

    #[test]
    fn table1_lists_all_benchmarks() {
        let t = render_table1(&all_workloads());
        for name in ["jpegenc", "svm", "tex_synth", "h264dec"] {
            assert!(t.contains(name), "{t}");
        }
        assert!(t.contains("PSNR"));
        assert!(t.contains("segmental SNR"));
    }

    #[test]
    fn table2_reflects_core_config() {
        let t = render_table2();
        assert!(t.contains("issue width          2"));
        assert!(t.contains("192 entries"));
    }

    #[test]
    fn fig11_contains_means() {
        let mut by_t = ResultsByTechnique::new();
        by_t.insert(Technique::Original, fake_result(80, 0, 20));
        by_t.insert(Technique::DupVal, fake_result(80, 15, 5));
        let rows = vec![("demo".to_string(), by_t)];
        let t = render_fig11(&rows, 100);
        assert!(t.contains("demo"));
        assert!(t.contains("mean"));
        assert!(t.contains("Dup + val chks"));
        assert!(t.contains("USDC"));
    }

    #[test]
    fn fig12_renders_percentages() {
        let rows = vec![(
            "demo".to_string(),
            vec![
                (Technique::DupOnly, 0.076),
                (Technique::DupVal, 0.195),
                (Technique::FullDup, 0.57),
            ],
        )];
        let t = render_fig12(&rows);
        assert!(t.contains("7.60%"), "{t}");
        assert!(t.contains("57.00%"), "{t}");
    }

    #[test]
    fn fig2_and_13_render() {
        let rows = vec![("demo".to_string(), fake_result(70, 0, 30))];
        let f2 = render_fig2(&rows);
        assert!(f2.contains("USDC-large"));
        let mut by_t = ResultsByTechnique::new();
        by_t.insert(Technique::Original, fake_result(70, 0, 30));
        let f13 = render_fig13(&[("demo".to_string(), by_t)]);
        assert!(f13.contains("ASDC"));
        let ds = render_detection_split(&rows);
        assert!(ds.contains("dup-chk"));
    }

    #[test]
    fn latency_renders_counts_and_dashes() {
        let mut with_lat = fake_result(50, 10, 0);
        for v in [8u64, 30, 120] {
            with_lat.sw_latency.record(v);
        }
        let mut by_t = ResultsByTechnique::new();
        by_t.insert(Technique::Original, fake_result(60, 0, 0));
        by_t.insert(Technique::DupVal, with_lat);
        let t = render_latency(&[("demo".to_string(), by_t)]);
        assert!(t.contains("sw-p50"), "{t}");
        // Original has no detections: dash cells.
        assert!(t.contains("-"), "{t}");
        // DupVal has 3 recorded latencies.
        assert!(t.contains("Dup + val chks"), "{t}");
    }

    #[test]
    fn coverage_report_ranks_gaps_and_renders_ladder() {
        use crate::coverage::{CheckCover, SiteReport};
        let site = |inst: Option<u64>, op: &str, protection: &str, usdc: u64| SiteReport {
            func: "main".to_string(),
            func_id: 0,
            inst,
            op: op.to_string(),
            protection: protection.to_string(),
            band: "lo".to_string(),
            trials: 10,
            masked: 10 - usdc,
            acceptable_sdc: 0,
            unacceptable_sdc: usdc,
            hw_detect: 0,
            sw_detect: 0,
            failure: 0,
            usdc_rate: usdc as f64 / 10.0,
            detect_rate: 0.0,
            covered_by: None,
            checks: vec![CheckCover {
                check: "dup-mismatch".to_string(),
                count: 0,
            }],
            latency_p50: None,
            latency_p90: None,
            latency_p99: None,
        };
        let cov = |t: Technique, gaps: Vec<SiteReport>| CoverageMap {
            schema_version: 1,
            benchmark: "demo".to_string(),
            technique: t.label().to_string(),
            trials: 100,
            injected: 95,
            trigger_unreached: 5,
            sites: gaps,
        };
        let dup = cov(
            Technique::DupOnly,
            vec![
                site(Some(7), "mul", "unprotected", 3),
                site(Some(9), "add", "unprotected", 1),
                site(Some(2), "shl", "duplicated", 4),
            ],
        );
        let dv = cov(
            Technique::DupVal,
            vec![
                site(Some(7), "mul", "unprotected", 2),
                site(Some(9), "add", "value-checked", 1),
            ],
        );
        let rows = vec![(
            "demo".to_string(),
            vec![(Technique::DupOnly, dup), (Technique::DupVal, dv)],
        )];
        let t = render_coverage(&rows, 5);
        // Gap counts exclude protected sites even when they have USDCs.
        assert!(t.contains("gap-sites    2"), "{t}");
        assert!(t.contains("gap-sites    1"), "{t}");
        assert!(
            t.contains("gap-site ladder: Dup only 2 -> Dup + val chks 1"),
            "{t}"
        );
        // The duplicated site with the highest USDC must not be listed.
        assert!(!t.contains("shl"), "{t}");
        // Deterministic: byte-identical on re-render.
        assert_eq!(t, render_coverage(&rows, 5));
    }

    #[test]
    fn outcome_counts_are_canonically_ordered_and_stable() {
        let r = fake_result(5, 3, 2);
        let a = render_outcome_counts(&r);
        let b = render_outcome_counts(&r.clone());
        assert_eq!(a, b, "must be byte-stable");
        let masked = a.find("masked").unwrap();
        let sw = a.find("swdetect.dup-mismatch").unwrap();
        let fail = a.find("failure").unwrap();
        assert!(masked < sw && sw < fail, "{a}");
        assert_eq!(a.lines().count(), Outcome::CANONICAL.len());
    }
}
