//! Statistical-significance helpers (Leveugle et al., cited by the
//! paper for the 95%-confidence ±3.1% margin of its 1000-trial
//! campaigns).

/// Margin of error at confidence level `z` (e.g. 1.96 for 95%) for an
/// observed proportion `p` over `n` trials: `z * sqrt(p(1-p)/n)`.
pub fn margin_of_error(p: f64, n: u32, z: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let p = p.clamp(0.0, 1.0);
    z * (p * (1.0 - p) / n as f64).sqrt()
}

/// Worst-case (p = 0.5) margin at 95% confidence — the figure the paper
/// quotes for its setup.
pub fn worst_case_margin_95(n: u32) -> f64 {
    margin_of_error(0.5, n, 1.96)
}

/// Trials needed for a worst-case margin of `e` at 95% confidence.
pub fn trials_for_margin_95(e: f64) -> u32 {
    // n = z² p(1-p) / e² with p = 0.5.
    let z: f64 = 1.96;
    ((z * z * 0.25) / (e * e)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_margin_reproduced() {
        // 1000 trials/benchmark at 95% confidence → ~3.1% worst case.
        let m = worst_case_margin_95(1000);
        assert!((m - 0.031).abs() < 0.001, "{m}");
    }

    #[test]
    fn margin_shrinks_with_n() {
        assert!(worst_case_margin_95(4000) < worst_case_margin_95(1000));
        assert_eq!(margin_of_error(0.5, 0, 1.96), 1.0);
    }

    #[test]
    fn margin_is_zero_at_extremes() {
        assert_eq!(margin_of_error(0.0, 100, 1.96), 0.0);
        assert_eq!(margin_of_error(1.0, 100, 1.96), 0.0);
    }

    #[test]
    fn trials_roundtrip() {
        let n = trials_for_margin_95(0.031);
        assert!((950..=1050).contains(&n), "{n}");
    }
}
