//! Fault-free timing runs (Fig. 12 performance overheads).

use softft::Technique;
use softft_ir::Module;
use softft_vm::interp::VmConfig;
use softft_vm::timing::{CoreConfig, TimingModel};
use softft_workloads::runner::run_workload;
use softft_workloads::{InputSet, Workload};

/// Timing of one fault-free run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfSample {
    /// Modelled cycles.
    pub cycles: u64,
    /// Dynamic instructions.
    pub insts: u64,
}

impl PerfSample {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.insts as f64 / self.cycles.max(1) as f64
    }
}

/// Runs `module` fault-free under the timing model.
///
/// # Panics
///
/// Panics if the run does not complete.
pub fn time_module(workload: &dyn Workload, module: &Module, input: InputSet) -> PerfSample {
    let mut timing = TimingModel::new(CoreConfig::default());
    // Checks run in counting mode: a benign train→test profile drift must
    // not abort the timing run (the paper's recovery-suppression rule);
    // the check instructions are still fetched and timed.
    let vm_cfg = VmConfig {
        checks_count_only: true,
        ..VmConfig::default()
    };
    let (result, _) = run_workload(module, &workload.input(input), vm_cfg, &mut timing, None);
    assert!(
        result.completed(),
        "timing run of {} failed: {:?}",
        workload.name(),
        result.end
    );
    PerfSample {
        cycles: timing.cycles(),
        insts: timing.instructions(),
    }
}

/// Runtime overhead of `technique` relative to the original module, as a
/// fraction (0.195 = 19.5%).
pub fn overhead(
    workload: &dyn Workload,
    original: &Module,
    transformed: &Module,
    input: InputSet,
) -> f64 {
    let base = time_module(workload, original, input);
    let t = time_module(workload, transformed, input);
    (t.cycles as f64 - base.cycles as f64) / base.cycles.max(1) as f64
}

/// Overheads for every technique (keyed in [`Technique::ALL`] order,
/// `Original` omitted — it is the baseline).
pub fn all_overheads(
    workload: &dyn Workload,
    modules: &std::collections::HashMap<Technique, Module>,
    input: InputSet,
) -> Vec<(Technique, f64)> {
    let base = time_module(workload, &modules[&Technique::Original], input);
    Technique::ALL
        .iter()
        .filter(|t| **t != Technique::Original)
        .map(|&t| {
            let s = time_module(workload, &modules[&t], input);
            (
                t,
                (s.cycles as f64 - base.cycles as f64) / base.cycles.max(1) as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use softft_workloads::workload_by_name;

    #[test]
    fn overheads_are_ordered_like_the_paper() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let ovs = all_overheads(&*p.workload, &p.modules, InputSet::Test);
        let get = |t: Technique| ovs.iter().find(|(x, _)| *x == t).unwrap().1;
        let dup = get(Technique::DupOnly);
        let dv = get(Technique::DupVal);
        let full = get(Technique::FullDup);
        assert!(dup >= 0.0, "dup {dup}");
        assert!(dv >= dup * 0.5, "dup+val {dv} vs dup {dup}");
        assert!(full > dv, "full {full} !> dup+val {dv}");
        assert!(full > 0.15, "full duplication suspiciously cheap: {full}");
    }

    #[test]
    fn ipc_is_sane() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let s = time_module(&*p.workload, p.module(Technique::Original), InputSet::Test);
        let ipc = s.ipc();
        assert!(ipc > 0.2 && ipc <= 2.0, "ipc {ipc}");
    }
}
