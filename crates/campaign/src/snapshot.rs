//! Golden-run checkpointing for snapshot-accelerated campaigns.
//!
//! Every trial in a campaign re-executes the fault-free prefix of the
//! program up to its trigger `at_dyn` — on average half of
//! `golden_dyn_insts` of pure redundancy, which dominates campaign
//! wall-clock (the observation behind DETOx-style campaign acceleration).
//! A [`CheckpointStore`] records VM [`Snapshot`]s every K dynamic
//! instructions during the golden run, *together with a clone of the
//! trial observer at each boundary*, so a trial can resume from the
//! greatest checkpoint at or below its trigger with bitwise-identical
//! results: the architectural state comes from the snapshot, and the
//! observer state is exactly what a from-scratch run would have
//! accumulated over the skipped prefix.

use softft_vm::interp::Observer;
use softft_vm::{FaultPlan, Resolution, RunResult, Snapshot};
use softft_workloads::runner::WorkloadImage;

/// One golden-run checkpoint: the VM snapshot plus the observer state at
/// the same boundary (cloned per resumed trial).
#[derive(Clone, Debug)]
pub struct Checkpoint<O> {
    /// Architectural state at the boundary.
    pub snap: Snapshot,
    /// Observer state at the boundary (prefix-deterministic: identical to
    /// what any trial's observer would hold at this point, because the
    /// prefix is fault-free and observers never perturb execution).
    pub obs: O,
}

/// Checkpoints from one golden recording run, ordered by boundary.
///
/// Shared read-only across campaign worker threads (via `Arc`); each
/// trial looks up [`CheckpointStore::best_for`] its trigger and clones
/// the observer.
#[derive(Clone, Debug)]
pub struct CheckpointStore<O> {
    interval: u64,
    checkpoints: Vec<Checkpoint<O>>,
    /// Observer state at golden completion — the `end` argument of
    /// [`softft_vm::SuffixObserver::fast_forward`] when a converged
    /// trial absorbs the skipped golden suffix.
    golden_obs: O,
}

impl<O: Observer + Clone> CheckpointStore<O> {
    /// Runs the golden (fault-free) pass over `image`, capturing a
    /// checkpoint every `interval` dynamic instructions. Returns the
    /// store plus the golden run result and output bytes, so campaigns
    /// need no separate golden run.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn record(image: &WorkloadImage<'_>, obs: O, interval: u64) -> (Self, RunResult, Vec<u8>) {
        let (store, result, out, _) = Self::record_timed(image, obs, interval);
        (store, result, out)
    }

    /// Like [`CheckpointStore::record`], but additionally reports the
    /// nanoseconds spent on campaign-side checkpoint capture (observer
    /// clone + store push). The snapshot memory image itself is
    /// materialized inline by the VM recording loop, so its cost is
    /// part of the golden run, not of this figure — see
    /// `softft_campaign::CampaignProfile` for the attribution map.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn record_timed(
        image: &WorkloadImage<'_>,
        mut obs: O,
        interval: u64,
    ) -> (Self, RunResult, Vec<u8>, u64) {
        assert!(interval > 0, "snapshot interval must be positive");
        let mut checkpoints: Vec<Checkpoint<O>> = Vec::new();
        let mut capture_ns = 0u64;
        let (result, out) = image.run_recording(&mut obs, interval, |snap, o| {
            let sw = std::time::Instant::now();
            checkpoints.push(Checkpoint {
                snap,
                obs: o.clone(),
            });
            capture_ns += sw.elapsed().as_nanos() as u64;
        });
        (
            CheckpointStore {
                interval,
                checkpoints,
                golden_obs: obs,
            },
            result,
            out,
            capture_ns,
        )
    }

    /// Like [`CheckpointStore::record_timed`], but also resolves each
    /// register fault plan in `triggers` (sorted by trigger) against the
    /// golden state at its boundary — the input to static fault-space
    /// pruning. An `interval` of zero records *no* checkpoints and only
    /// resolves (used when snapshots were already recorded at a different
    /// interval).
    pub fn record_resolving(
        image: &WorkloadImage<'_>,
        mut obs: O,
        interval: u64,
        triggers: &[FaultPlan],
    ) -> (Self, RunResult, Vec<u8>, Vec<Resolution>, u64) {
        let mut checkpoints: Vec<Checkpoint<O>> = Vec::new();
        let mut capture_ns = 0u64;
        let (result, out, resolutions) =
            image.run_recording_resolving(&mut obs, interval, triggers, |snap, o| {
                let sw = std::time::Instant::now();
                checkpoints.push(Checkpoint {
                    snap,
                    obs: o.clone(),
                });
                capture_ns += sw.elapsed().as_nanos() as u64;
            });
        (
            CheckpointStore {
                interval,
                checkpoints,
                golden_obs: obs,
            },
            result,
            out,
            resolutions,
            capture_ns,
        )
    }

    /// The greatest checkpoint whose boundary is at or below `at_dyn`
    /// (the trial's trigger), or `None` if the trigger falls before the
    /// first checkpoint — the trial then runs from instruction 0.
    pub fn best_for(&self, at_dyn: u64) -> Option<&Checkpoint<O>> {
        let idx = self
            .checkpoints
            .partition_point(|c| c.snap.dyn_count() <= at_dyn);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// The checkpoint whose boundary is exactly `boundary`, if any
    /// (where a converged trial stopped).
    pub fn at_boundary(&self, boundary: u64) -> Option<&Checkpoint<O>> {
        self.checkpoints
            .binary_search_by_key(&boundary, |c| c.snap.dyn_count())
            .ok()
            .map(|i| &self.checkpoints[i])
    }

    /// All checkpoint snapshots in boundary order — the convergence
    /// candidate list for [`softft_vm::Vm::resume_converging`].
    pub fn candidates(&self) -> Vec<&Snapshot> {
        self.checkpoints.iter().map(|c| &c.snap).collect()
    }

    /// Observer state at golden completion.
    pub fn golden_obs(&self) -> &O {
        &self.golden_obs
    }

    /// The recording interval in dynamic instructions.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of checkpoints captured.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// True when the golden run was shorter than one interval.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Total heap footprint of all captured snapshots, in bytes — the
    /// memory side of the memory-vs-speed tradeoff.
    pub fn total_bytes(&self) -> usize {
        self.checkpoints.iter().map(|c| c.snap.size_bytes()).sum()
    }
}

/// How much work the snapshot engine did (and saved) in one campaign.
/// All-zero when snapshots were disabled (`snapshot_interval == 0`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Configured checkpoint spacing (0 = snapshots off).
    pub interval: u64,
    /// Checkpoints captured during the golden run.
    pub checkpoints: u64,
    /// Total bytes held by the checkpoint store (peak, since the store
    /// lives for the whole campaign).
    pub checkpoint_bytes: u64,
    /// Trials that resumed from a checkpoint.
    pub resumed_trials: u64,
    /// Trials that ran from instruction 0 (trigger before the first
    /// checkpoint, or snapshots disabled).
    pub fresh_trials: u64,
    /// Trials that exited early because their state converged with a
    /// golden checkpoint (the suffix was taken from the golden run).
    pub converged_trials: u64,
    /// Dynamic instructions *not* re-executed thanks to resume (sum of
    /// resumed checkpoints' boundaries).
    pub prefix_insts_skipped: u64,
    /// Dynamic instructions *not* executed thanks to convergence
    /// early-exit (sum of `golden_dyn_insts - converged_at`).
    pub suffix_insts_skipped: u64,
    /// Dynamic instructions actually executed across all trials
    /// (post-resume); the VM-throughput numerator for perf benches.
    pub insts_executed: u64,
    /// Trials halted by the spin proof: a diverged trial's full boundary
    /// state recurred, proving an infinite loop, and the watchdog record
    /// was synthesized without running to the bound.
    pub spin_proved_trials: u64,
    /// Dynamic instructions *not* executed thanks to spin proofs (sum of
    /// `max_dyn_insts - halt boundary` across proved trials).
    pub spin_insts_skipped: u64,
    /// Trials skipped entirely by static fault-space pruning (dead or
    /// masked victim bit): the golden record was synthesized.
    pub pruned_trials: u64,
    /// Dynamic instructions *not* executed thanks to pruning (golden
    /// `dyn_insts` per pruned trial, minus nothing — the whole trial).
    pub pruned_insts_skipped: u64,
    /// True when the interval was chosen adaptively from observed
    /// convergence latencies (`CampaignConfig::SNAPSHOT_AUTO`);
    /// `interval` then holds the chosen value.
    pub adaptive: bool,
    /// Trials used to calibrate the adaptive interval (they ran under the
    /// provisional interval; results are identical either way).
    pub calibration_trials: u64,
    /// Median observed convergence latency (trigger → converged boundary)
    /// among calibration trials, in dynamic instructions; 0 when unknown.
    pub conv_latency_p50: u64,
    /// Wall time of trials that ran to completion (no early exit).
    pub exec_ns_executed: u64,
    /// Wall time of trials that exited early via convergence.
    pub exec_ns_converged: u64,
    /// Wall time of trials halted by the spin proof.
    pub exec_ns_spin: u64,
    /// Wall time spent synthesizing statically-pruned trials.
    pub exec_ns_pruned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use softft::Technique;
    use softft_vm::interp::{NoopObserver, VmConfig};
    use softft_workloads::{workload_by_name, InputSet};

    #[test]
    fn record_and_best_for_pick_greatest_checkpoint_at_or_below() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let module = p.module(Technique::Original);
        let input = p.workload.input(InputSet::Test);
        let image = WorkloadImage::new(module, &input, VmConfig::default());
        let (store, golden, out) = CheckpointStore::record(&image, NoopObserver, 1000);

        // The recording run *is* the golden run.
        assert!(golden.completed());
        assert!(!out.is_empty());
        assert_eq!(store.interval(), 1000);
        assert!(!store.is_empty());
        assert_eq!(store.len() as u64, (golden.dyn_insts - 1) / 1000);
        // Every checkpoint carries at least the full memory image.
        assert!(store.total_bytes() >= store.len() * image.module().memory_end() as usize);

        // Lookup semantics: greatest boundary <= trigger.
        assert!(store.best_for(0).is_none());
        assert!(store.best_for(999).is_none());
        assert_eq!(store.best_for(1000).unwrap().snap.dyn_count(), 1000);
        assert_eq!(store.best_for(1999).unwrap().snap.dyn_count(), 1000);
        assert_eq!(store.best_for(2000).unwrap().snap.dyn_count(), 2000);
        assert_eq!(
            store.best_for(u64::MAX).unwrap().snap.dyn_count(),
            store.len() as u64 * 1000
        );
    }
}
