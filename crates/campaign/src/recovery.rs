//! Recovery-cost modelling (Section IV-D).
//!
//! The paper is detection-only and defers recovery to cited mechanisms:
//! Encore-style software re-execution or checkpoint-based rollback of
//! roughly 1000 instructions. This module closes that loop analytically:
//! given a campaign's detections (all of which are transient faults, so
//! deterministic re-execution from a pre-fault point always succeeds),
//! it models the *cost* of recovery under a checkpoint interval and the
//! *net* overhead of detection + recovery at a given fault rate.

use crate::campaign::CampaignResult;
use serde::{Deserialize, Serialize};

/// Parameters of the rollback mechanism.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Instructions between checkpoints (the paper cites ~1000-instruction
    /// rollback windows for aggressive speculation support).
    pub checkpoint_interval: u64,
    /// Fixed instructions charged per checkpoint creation.
    pub checkpoint_cost: u64,
    /// Fixed instructions charged per rollback (state restore).
    pub rollback_cost: u64,
}

impl Default for RecoveryModel {
    fn default() -> Self {
        RecoveryModel {
            checkpoint_interval: 1000,
            checkpoint_cost: 20,
            rollback_cost: 200,
        }
    }
}

/// Modelled recovery economics for one campaign.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCost {
    /// Expected instructions re-executed per recovery (half a checkpoint
    /// interval on average, plus the restore cost).
    pub mean_rollback_insts: f64,
    /// Steady-state checkpointing overhead as a fraction of execution
    /// (checkpoint cost amortized over the interval).
    pub checkpoint_overhead: f64,
    /// Fraction of injected faults that trigger a recovery (software
    /// detections; hardware symptoms within the window also recover).
    pub recovery_trigger_frac: f64,
    /// Fraction of faults that recovery repairs: every detection of a
    /// transient fault re-executes deterministically to the golden
    /// output, so this equals the trigger fraction.
    pub recovered_frac: f64,
}

impl RecoveryCost {
    /// Expected extra instructions per *run* at a given per-run fault
    /// probability (tiny for realistic soft-error rates — the point of
    /// the paper's low-overhead detection is that the common case pays
    /// only detection + checkpointing).
    pub fn expected_recovery_insts_per_run(&self, fault_prob: f64) -> f64 {
        fault_prob * self.recovery_trigger_frac * self.mean_rollback_insts
    }
}

/// Models recovery for `result` under `model`.
pub fn model_recovery(result: &CampaignResult, model: &RecoveryModel) -> RecoveryCost {
    let trigger = result.swdetect_frac() + result.hwdetect_frac();
    RecoveryCost {
        mean_rollback_insts: model.checkpoint_interval as f64 / 2.0 + model.rollback_cost as f64,
        checkpoint_overhead: model.checkpoint_cost as f64 / model.checkpoint_interval as f64,
        recovery_trigger_frac: trigger,
        recovered_frac: trigger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::prep::prepare;
    use softft::Technique;
    use softft_workloads::workload_by_name;

    #[test]
    fn recovery_cost_is_bounded_by_the_window() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let cfg = CampaignConfig {
            trials: 80,
            seed: 5,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&*p.workload, p.module(Technique::DupVal), &cfg);
        let model = RecoveryModel::default();
        let cost = model_recovery(&r, &model);
        assert!(
            cost.mean_rollback_insts <= (model.checkpoint_interval + model.rollback_cost) as f64
        );
        assert!(
            cost.checkpoint_overhead < 0.05,
            "{}",
            cost.checkpoint_overhead
        );
        assert!(cost.recovery_trigger_frac > 0.0, "no detections to recover");
        assert_eq!(cost.recovered_frac, cost.recovery_trigger_frac);
    }

    #[test]
    fn per_run_expected_cost_scales_with_fault_rate() {
        let cost = RecoveryCost {
            mean_rollback_insts: 700.0,
            checkpoint_overhead: 0.02,
            recovery_trigger_frac: 0.2,
            recovered_frac: 0.2,
        };
        let cheap = cost.expected_recovery_insts_per_run(1e-6);
        let dear = cost.expected_recovery_insts_per_run(1e-2);
        assert!(cheap < dear);
        assert!((dear / cheap - 1e4).abs() < 1.0);
    }

    #[test]
    fn detection_plus_reexecution_actually_recovers() {
        // Dynamic confirmation of the model's premise: re-running a
        // detected trial without the fault reproduces the golden output
        // (transient faults are gone on re-execution).
        use softft_vm::interp::{NoopObserver, VmConfig};
        use softft_vm::{FaultPlan, RunEnd, TrapKind};
        use softft_workloads::runner::run_workload;
        use softft_workloads::InputSet;

        let p = prepare(workload_by_name("g721dec").unwrap());
        // Suppress train->test profile-drift checks exactly as campaigns
        // do, so the fault-free golden run completes.
        let mut module = p.module(Technique::DupVal).clone();
        crate::prep::neutralize_false_positives(&mut module, &*p.workload, InputSet::Test);
        let module = &module;
        let input = p.workload.input(InputSet::Test);
        let (golden_r, golden) =
            run_workload(module, &input, VmConfig::default(), &mut NoopObserver, None);
        assert!(golden_r.completed());

        let mut recovered = 0;
        let mut detections = 0;
        for seed in 0..200u64 {
            let plan = FaultPlan::register((seed * 9973) % golden_r.dyn_insts, seed);
            let (r, _) = run_workload(
                module,
                &input,
                VmConfig::default(),
                &mut NoopObserver,
                Some(plan),
            );
            if matches!(
                r.end,
                RunEnd::Trap {
                    kind: TrapKind::SwDetect(_),
                    ..
                }
            ) {
                detections += 1;
                // Re-execute without the fault: the transient is gone.
                let (r2, out2) =
                    run_workload(module, &input, VmConfig::default(), &mut NoopObserver, None);
                if r2.completed() && out2 == golden {
                    recovered += 1;
                }
            }
        }
        assert!(detections > 0, "no detections in the sweep");
        assert_eq!(recovered, detections, "re-execution failed to recover");
    }
}
