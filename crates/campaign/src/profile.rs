//! Campaign phase-time attribution.
//!
//! Answers *where campaign wall-clock goes*: decoding the module,
//! running the golden pass, recording checkpoints, resuming trials,
//! executing them, and fast-forwarding converged suffixes — with
//! per-outcome execution totals so a report can state, e.g., how much
//! of segm's campaign time is burned spinning watchdog-corrupted runs
//! to their 8× dynamic-instruction bound.
//!
//! Attribution boundaries (documented, not hidden): the snapshot memory
//! image is materialized inline by the VM recording loop, so its cost
//! lands in `golden_ns`; `checkpoint_record_ns` covers the campaign-side
//! capture (observer clone + store push). Likewise the in-VM memory
//! restore when resuming is part of `exec_ns`; `resume_ns` covers the
//! checkpoint lookup and observer clone.
//!
//! All timers are wall-clock only: they are accumulated beside the
//! campaign and never read by it, so profiled and unprofiled campaigns
//! produce bitwise-identical results (see DESIGN.md, "Observability
//! invariants").

use crate::outcome::Outcome;
use std::sync::atomic::{AtomicU64, Ordering};

const N_OUTCOMES: usize = Outcome::CANONICAL.len();

/// Lock-free phase accumulator shared across campaign worker threads.
#[derive(Debug, Default)]
pub(crate) struct PhaseAccum {
    pub decode_ns: AtomicU64,
    pub golden_ns: AtomicU64,
    pub checkpoint_record_ns: AtomicU64,
    pub resume_ns: AtomicU64,
    pub exec_ns: AtomicU64,
    pub fastforward_ns: AtomicU64,
    pub per_outcome: [OutcomeAccum; N_OUTCOMES],
}

#[derive(Debug, Default)]
pub(crate) struct OutcomeAccum {
    pub trials: AtomicU64,
    pub exec_ns: AtomicU64,
    pub dyn_insts: AtomicU64,
    pub watchdog_trials: AtomicU64,
    pub watchdog_spin_ns: AtomicU64,
}

impl PhaseAccum {
    pub fn new() -> Self {
        PhaseAccum::default()
    }

    /// Freezes the accumulated atomics into a plain [`CampaignProfile`].
    pub fn snapshot(&self) -> CampaignProfile {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CampaignProfile {
            decode_ns: ld(&self.decode_ns),
            golden_ns: ld(&self.golden_ns),
            checkpoint_record_ns: ld(&self.checkpoint_record_ns),
            resume_ns: ld(&self.resume_ns),
            exec_ns: ld(&self.exec_ns),
            fastforward_ns: ld(&self.fastforward_ns),
            per_outcome: Outcome::CANONICAL
                .iter()
                .zip(&self.per_outcome)
                .map(|(o, a)| OutcomePhase {
                    outcome: *o,
                    trials: ld(&a.trials),
                    exec_ns: ld(&a.exec_ns),
                    dyn_insts: ld(&a.dyn_insts),
                    watchdog_trials: ld(&a.watchdog_trials),
                    watchdog_spin_ns: ld(&a.watchdog_spin_ns),
                })
                .collect(),
        }
    }
}

/// Wall-time breakdown of one campaign, by phase and by outcome class.
/// Produced by [`crate::run_campaign_profiled`]; purely observational
/// (nanosecond values vary run to run, everything else is
/// deterministic).
#[derive(Clone, Debug, Default)]
pub struct CampaignProfile {
    /// Building the [`WorkloadImage`](softft_workloads::runner::WorkloadImage)
    /// (globals + input layout + flat bytecode decode).
    pub decode_ns: u64,
    /// The fault-free golden run (when snapshotting, includes the in-VM
    /// snapshot materialization — see the module docs).
    pub golden_ns: u64,
    /// Campaign-side checkpoint capture during the golden recording run.
    pub checkpoint_record_ns: u64,
    /// Per-trial resume bookkeeping: checkpoint lookup + observer clone.
    pub resume_ns: u64,
    /// Live trial execution (fault injection through run end), summed
    /// across all workers — on a multi-threaded campaign this exceeds
    /// campaign wall-clock.
    pub exec_ns: u64,
    /// Convergence fast-forward: absorbing the skipped golden suffix
    /// into the trial observer and synthesizing the golden result.
    pub fastforward_ns: u64,
    /// Per-outcome execution totals, parallel to [`Outcome::CANONICAL`].
    pub per_outcome: Vec<OutcomePhase>,
}

/// Execution time and volume attributed to one outcome class.
#[derive(Clone, Copy, Debug)]
pub struct OutcomePhase {
    /// Which outcome class this row aggregates.
    pub outcome: Outcome,
    /// Trials that classified into this outcome.
    pub trials: u64,
    /// Live execution nanoseconds across those trials.
    pub exec_ns: u64,
    /// Dynamic instructions reported by those trials.
    pub dyn_insts: u64,
    /// Trials in this outcome that ended in a watchdog trap (ran to the
    /// dynamic-instruction bound without terminating).
    pub watchdog_trials: u64,
    /// Execution nanoseconds of those watchdog-bound trials — the
    /// "watchdog spin" cost.
    pub watchdog_spin_ns: u64,
}

impl CampaignProfile {
    /// Sum of all phase timers (worker-thread execution time is summed,
    /// so this is CPU-time-like, not wall-clock).
    pub fn total_ns(&self) -> u64 {
        self.decode_ns
            + self.golden_ns
            + self.checkpoint_record_ns
            + self.resume_ns
            + self.exec_ns
            + self.fastforward_ns
    }

    /// Total watchdog-spin nanoseconds across all outcomes.
    pub fn watchdog_spin_ns(&self) -> u64 {
        self.per_outcome.iter().map(|o| o.watchdog_spin_ns).sum()
    }

    /// Total watchdog-bound trials.
    pub fn watchdog_trials(&self) -> u64 {
        self.per_outcome.iter().map(|o| o.watchdog_trials).sum()
    }

    /// Fraction of live trial execution time spent spinning
    /// watchdog-bound runs (0 when nothing executed).
    pub fn watchdog_spin_share(&self) -> f64 {
        if self.exec_ns == 0 {
            0.0
        } else {
            self.watchdog_spin_ns() as f64 / self.exec_ns as f64
        }
    }

    /// Phase rows as `(name, ns)` in fixed order, for reports and
    /// folded-stack output.
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("decode", self.decode_ns),
            ("golden", self.golden_ns),
            ("checkpoint_record", self.checkpoint_record_ns),
            ("resume", self.resume_ns),
            ("exec", self.exec_ns),
            ("fastforward", self.fastforward_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_freezes_accumulated_values() {
        let acc = PhaseAccum::new();
        acc.decode_ns.store(10, Ordering::Relaxed);
        acc.exec_ns.store(100, Ordering::Relaxed);
        acc.per_outcome[0].trials.store(5, Ordering::Relaxed);
        acc.per_outcome[0].exec_ns.store(60, Ordering::Relaxed);
        acc.per_outcome[11]
            .watchdog_trials
            .store(2, Ordering::Relaxed);
        acc.per_outcome[11]
            .watchdog_spin_ns
            .store(40, Ordering::Relaxed);
        let p = acc.snapshot();
        assert_eq!(p.decode_ns, 10);
        assert_eq!(p.exec_ns, 100);
        assert_eq!(p.per_outcome.len(), Outcome::CANONICAL.len());
        assert_eq!(p.per_outcome[0].outcome, Outcome::Masked);
        assert_eq!(p.per_outcome[0].trials, 5);
        assert_eq!(p.watchdog_trials(), 2);
        assert_eq!(p.watchdog_spin_ns(), 40);
        assert!((p.watchdog_spin_share() - 0.4).abs() < 1e-12);
        assert_eq!(p.total_ns(), 110);
        assert_eq!(p.phases()[0], ("decode", 10));
        assert_eq!(p.phases()[4], ("exec", 100));
    }

    #[test]
    fn empty_profile_has_zero_share() {
        let p = CampaignProfile::default();
        assert_eq!(p.watchdog_spin_share(), 0.0);
        assert_eq!(p.total_ns(), 0);
    }
}
