//! Train/test input swap (Section V sensitivity analysis).
//!
//! The paper cross-validates on `jpegdec` and `kmeans`: profile on the
//! test input, inject on the train input, and compare the outcome
//! distribution against the standard direction.

use crate::campaign::{run_campaign_counted, CampaignConfig, CampaignResult};
use crate::prep::prepare_with_inputs;
use softft::{Technique, TransformConfig};
use softft_profile::ClassifyConfig;
use softft_telemetry::CheckKindCounts;
use softft_workloads::{workload_by_name, InputSet};

/// Outcome fractions for both fold directions of one benchmark.
#[derive(Clone, Debug)]
pub struct CrossValidation {
    /// Benchmark name.
    pub name: &'static str,
    /// Standard direction: profile on train, inject on test.
    pub forward: CampaignResult,
    /// Swapped direction: profile on test, inject on train.
    pub swapped: CampaignResult,
    /// Check firings by kind across the forward campaign's trials.
    pub forward_checks: CheckKindCounts,
    /// Check firings by kind across the swapped campaign's trials.
    pub swapped_checks: CheckKindCounts,
}

impl CrossValidation {
    /// Maximum absolute difference between the two directions across the
    /// five Fig. 11 buckets (the paper reports ≤ ~0.5% per bucket).
    pub fn max_bucket_delta(&self) -> f64 {
        let buckets = |r: &CampaignResult| {
            [
                r.masked_frac(),
                r.swdetect_frac(),
                r.hwdetect_frac(),
                r.failure_frac(),
                r.usdc_frac(),
            ]
        };
        let a = buckets(&self.forward);
        let b = buckets(&self.swapped);
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs two-fold cross-validation for one benchmark under `DupVal`.
///
/// # Panics
///
/// Panics if `name` is not a registered workload.
pub fn cross_validate(name: &str, cfg: &CampaignConfig) -> CrossValidation {
    let (forward, forward_checks) = {
        let p = prepare_with_inputs(
            workload_by_name(name).expect("known workload"),
            InputSet::Train,
            &ClassifyConfig::default(),
            &TransformConfig::default(),
        );
        let mut c = cfg.clone();
        c.input = InputSet::Test;
        run_campaign_counted(&*p.workload, p.module(Technique::DupVal), &c)
    };
    let (swapped, swapped_checks) = {
        let p = prepare_with_inputs(
            workload_by_name(name).expect("known workload"),
            InputSet::Test,
            &ClassifyConfig::default(),
            &TransformConfig::default(),
        );
        let mut c = cfg.clone();
        c.input = InputSet::Train;
        run_campaign_counted(&*p.workload, p.module(Technique::DupVal), &c)
    };
    CrossValidation {
        name: workload_by_name(name).expect("known workload").name(),
        forward,
        swapped,
        forward_checks,
        swapped_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_folds_are_close() {
        let cfg = CampaignConfig {
            trials: 60,
            seed: 11,
            threads: 2,
            ..CampaignConfig::default()
        };
        let cv = cross_validate("kmeans", &cfg);
        assert_eq!(cv.name, "kmeans");
        assert_eq!(cv.forward.trials, 60);
        assert_eq!(cv.swapped.trials, 60);
        // Check attribution is consistent with the outcome counts: a
        // SWDetect outcome implies at least one firing of that kind.
        for (dir, checks) in [
            (&cv.forward, cv.forward_checks),
            (&cv.swapped, cv.swapped_checks),
        ] {
            for (o, n) in dir.ordered_counts() {
                if let crate::Outcome::SwDetect(k) = o {
                    assert!(
                        checks.get(k) >= n as u64,
                        "{o:?}: {n} outcomes but {} firings",
                        checks.get(k)
                    );
                }
            }
        }
        // With only 60 trials the margin is wide; just require same
        // ballpark (the repro binary runs bigger campaigns).
        assert!(
            cv.max_bucket_delta() < 0.35,
            "fold delta {}",
            cv.max_bucket_delta()
        );
    }

    #[test]
    #[should_panic(expected = "known workload")]
    fn unknown_name_panics() {
        let _ = cross_validate("nope", &CampaignConfig::default());
    }
}
