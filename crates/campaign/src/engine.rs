//! The shard execution engine: a prepared campaign that executes
//! externally-chosen plan indices.
//!
//! [`campaign_core_phased`](crate::campaign) owns the whole trial loop
//! of one campaign: it derives the plans, visits every index, and folds
//! the records. A fleet worker needs the same preparation (golden run,
//! checkpoint store, prune table) but *not* the loop — its indices
//! arrive from a coordinator as shard ranges that can shrink while it
//! runs (work stealing) or be re-dispatched wholesale (dead-worker
//! reclaim). [`ShardEngine`] is that split: `prepare` pays the
//! campaign-preparation cost once, `run_range` executes whatever an
//! [`IndexSource`] hands it, through the *same*
//! [`TrialCtx::run_trial`](crate::campaign) body the single-process
//! campaign uses — bitwise equivalence by construction, not by test
//! alone.
//!
//! Determinism contract: trial *i* derives its fault from `cfg.seed`
//! and *i* alone, and `run_trial` is pure in the index, so any
//! partition of `0..trials` across engines — including overlapping
//! partitions from steal races or reclaimed ranges — yields records
//! that fold identically after per-trial dedup.
//!
//! One deliberate divergence: under
//! [`CampaignConfig::SNAPSHOT_AUTO`] the engine pins the provisional
//! `golden / 32` checkpoint grid instead of re-recording at the
//! calibrated interval, because calibration is a whole-campaign
//! measurement a shard cannot see. The interval is result-invariant
//! (only wall-clock changes), so fleet results still match the
//! single-process campaign bit for bit.

use crate::campaign::{derive_plans, CampaignConfig, PathCounters, TrialCtx, TrialTiming};
use crate::outcome::TrialRecord;
use crate::snapshot::CheckpointStore;
use softft_ir::Module;
use softft_telemetry::TraceObserver;
use softft_vm::fault::{FaultKind, FaultPlan, InjectionRecord};
use softft_vm::interp::NoopObserver;
use softft_vm::{ModuleLiveness, Resolution, RunResult};
use softft_workloads::runner::WorkloadImage;
use softft_workloads::Workload;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Hands out plan indices to engine workers. Implementations decide
/// the schedule (a fixed range, a shrinkable stolen-from range, a
/// queue of reclaimed ranges); the engine only promises to execute
/// every index it receives exactly once per receipt.
pub trait IndexSource: Sync {
    /// The next plan index to execute, or `None` when this source is
    /// (currently) drained. Engines stop on `None`.
    fn next(&self) -> Option<usize>;
}

/// A contiguous, concurrently-consumable plan-index range `[pos, hi)`
/// whose upper bound can shrink while workers drain it — the steal
/// primitive: a coordinator halves a victim's range by storing a new
/// `hi`, and the cut-off suffix becomes a fresh range for the thief.
///
/// The consume/shrink race is deliberately benign: a consumer may take
/// an index at or past a just-lowered `hi`, so the same trial can run
/// on both sides of a steal. Trials are pure in their index, and every
/// downstream fold dedups by trial, so the overlap costs duplicate
/// work, never a different result.
#[derive(Debug)]
pub struct SharedRange {
    pos: AtomicUsize,
    hi: AtomicUsize,
}

impl SharedRange {
    /// A range covering `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> SharedRange {
        SharedRange {
            pos: AtomicUsize::new(lo),
            hi: AtomicUsize::new(hi),
        }
    }

    /// Current consume position (next index that would be handed out).
    pub fn pos(&self) -> usize {
        self.pos.load(Ordering::Relaxed).min(self.hi())
    }

    /// Current exclusive upper bound.
    pub fn hi(&self) -> usize {
        self.hi.load(Ordering::Relaxed)
    }

    /// Indices not yet handed out.
    pub fn remaining(&self) -> usize {
        self.hi().saturating_sub(self.pos.load(Ordering::Relaxed))
    }

    /// Shrinks the upper bound to `new_hi` (no-op if already lower)
    /// and returns the previous bound. The caller owns `[new_hi, old)`
    /// afterwards — modulo the benign overlap documented on the type.
    pub fn shrink_to(&self, new_hi: usize) -> usize {
        self.hi.fetch_min(new_hi, Ordering::Relaxed)
    }
}

impl IndexSource for SharedRange {
    fn next(&self) -> Option<usize> {
        let k = self.pos.fetch_add(1, Ordering::Relaxed);
        (k < self.hi()).then_some(k)
    }
}

/// Per-completion callback for shard execution: same shape as the
/// campaign's internal sink, public so fleet workers can persist each
/// trial to their run-store file as it finishes.
pub type ShardSink<'a> =
    &'a (dyn Fn(usize, &FaultPlan, &TrialRecord, &TraceObserver, &TrialTiming) + Sync);

/// Cumulative scheduling-path tallies of one engine (all `run_range`
/// calls so far) — the fleet's per-worker progress payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Trials that resumed from a checkpoint.
    pub resumed: u64,
    /// Trials that exited early by converging with the golden run.
    pub converged: u64,
    /// Trials halted by the spin proof.
    pub spin_proved: u64,
    /// Trials skipped entirely by static pruning.
    pub pruned: u64,
    /// Dynamic instructions actually executed.
    pub insts_executed: u64,
}

/// Clones `module` and applies the same false-positive neutralization
/// the campaign core applies, returning the module a [`ShardEngine`]
/// must be prepared against. Split from `prepare` so the caller owns
/// the module the engine borrows (the image keeps references into it).
pub fn neutralized_module(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> Module {
    let mut module = module.clone();
    crate::prep::neutralize_false_positives(&mut module, workload, cfg.input);
    module
}

/// A campaign prepared once, executable in externally-scheduled
/// index ranges. See the module docs for the determinism contract.
pub struct ShardEngine<'m> {
    workload: &'m dyn Workload,
    cfg: CampaignConfig,
    image: WorkloadImage<'m>,
    plans: Vec<FaultPlan>,
    pruned: Vec<Option<Option<InjectionRecord>>>,
    store: Option<CheckpointStore<TraceObserver>>,
    golden_result: RunResult,
    golden_out: Vec<u8>,
    counters: PathCounters,
    executed: AtomicU64,
}

impl<'m> ShardEngine<'m> {
    /// Prepares the engine: golden run, checkpoint recording, plan
    /// derivation, trigger resolution, and prune decisions — the same
    /// stages (in the same order) as the campaign core. `module` must
    /// come from [`neutralized_module`]; passing a raw technique module
    /// would silently derive different plans than `run_campaign`.
    ///
    /// # Panics
    ///
    /// Panics if the fault-free run does not complete.
    pub fn prepare(
        workload: &'m dyn Workload,
        module: &'m Module,
        cfg: &CampaignConfig,
    ) -> ShardEngine<'m> {
        let cfg = cfg.clone();
        let input = workload.input(cfg.input);
        let image = WorkloadImage::new(module, &input, cfg.vm);
        let auto = cfg.snapshot_interval == CampaignConfig::SNAPSHOT_AUTO;

        // Golden run. Fixed interval: the recording run is the golden
        // run. Auto: plain run first for the golden length, then record
        // on the pinned provisional grid (resolving triggers in the
        // same pass).
        let (mut store, golden_result, golden_out) = if cfg.snapshot_interval > 0 && !auto {
            let (store, r, out, _capture_ns) =
                CheckpointStore::record_timed(&image, TraceObserver::new(), cfg.snapshot_interval);
            (Some(store), r, out)
        } else {
            let (r, out) = image.run(&mut NoopObserver, None);
            (None, r, out)
        };
        assert!(
            golden_result.completed(),
            "fault-free run of {} must complete: {:?}",
            workload.name(),
            golden_result.end
        );
        let n = golden_result.dyn_insts;
        let plans = derive_plans(&cfg, n);

        let want_prune =
            cfg.prune && cfg.fault_kind == FaultKind::Register && cfg.snapshot_interval > 0;
        let trig_order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..plans.len()).collect();
            idx.sort_by_key(|&i| (plans[i].at_dyn, i));
            idx
        };
        let triggers: Vec<FaultPlan> = if want_prune {
            trig_order.iter().map(|&i| plans[i]).collect()
        } else {
            Vec::new()
        };

        let mut resolutions: Vec<Resolution> = Vec::new();
        if auto {
            let provisional = (n / 32).max(1);
            let (s, r, _out, res, _capture_ns) = CheckpointStore::record_resolving(
                &image,
                TraceObserver::new(),
                provisional,
                &triggers,
            );
            assert_eq!(r, golden_result, "recording run must replay the golden run");
            store = Some(s);
            resolutions = res;
        } else if want_prune {
            let (r, _out, res) =
                image.run_recording_resolving(&mut NoopObserver, 0, &triggers, |_, _| {});
            debug_assert_eq!(r, golden_result);
            resolutions = res;
        }

        let mut pruned: Vec<Option<Option<InjectionRecord>>> = vec![None; plans.len()];
        if want_prune && !resolutions.is_empty() {
            let liveness = ModuleLiveness::compute(module);
            for (k, &i) in trig_order.iter().enumerate() {
                match resolutions[k] {
                    Resolution::NoCandidates => pruned[i] = Some(None),
                    Resolution::Register { rec, block, ip } => {
                        if liveness.dead_or_masked(module, rec.func, block, ip, rec.value, rec.bit)
                        {
                            pruned[i] = Some(Some(rec));
                        }
                    }
                }
            }
        }

        ShardEngine {
            workload,
            cfg,
            image,
            plans,
            pruned,
            store,
            golden_result,
            golden_out,
            counters: PathCounters::default(),
            executed: AtomicU64::new(0),
        }
    }

    /// Total plan count (`cfg.trials`).
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// The derived fault plans, indexed by trial.
    pub fn plans(&self) -> &[FaultPlan] {
        &self.plans
    }

    /// Dynamic instruction count of the fault-free run (the plan-hash
    /// ingredient shared with the run-store manifest).
    pub fn golden_dyn_insts(&self) -> u64 {
        self.golden_result.dyn_insts
    }

    /// Trials executed across all `run_range` calls (duplicates from
    /// overlapping ranges count each execution).
    pub fn trials_executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Cumulative scheduling-path tallies.
    pub fn stats(&self) -> ShardStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ShardStats {
            resumed: load(&self.counters.resumed),
            converged: load(&self.counters.converged),
            spin_proved: load(&self.counters.spin_proved),
            pruned: load(&self.counters.pruned),
            insts_executed: load(&self.counters.insts_executed),
        }
    }

    /// Executes every index `source` yields, on `threads` workers,
    /// streaming each completion to `sink`. Returns the number of
    /// trials executed by this call. Indices at or beyond the plan
    /// count are skipped (a coordinator speaking a newer plan is a
    /// protocol error surfaced elsewhere; the engine just stays safe).
    pub fn run_range(&self, source: &dyn IndexSource, threads: usize, sink: ShardSink<'_>) -> u64 {
        let candidates = self
            .store
            .as_ref()
            .map(|s| s.candidates())
            .unwrap_or_default();
        let spin_grid = match &self.store {
            Some(s) if self.cfg.spin_proof => s.interval().clamp(1, 256),
            _ => 0,
        };
        let make_obs = TraceObserver::new;
        let ctx = TrialCtx {
            workload: self.workload,
            cfg: &self.cfg,
            image: &self.image,
            plans: &self.plans,
            pruned: &self.pruned,
            golden_result: &self.golden_result,
            golden_out: &self.golden_out,
            store: self.store.as_ref(),
            candidates: &candidates,
            spin_grid,
            time_exec: true,
            counters: &self.counters,
            phases: None,
            tracker: None,
            make_obs: &make_obs,
            sink: Some(sink),
            latencies: None,
        };
        let done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                let (ctx, done, source) = (&ctx, &done, source);
                scope.spawn(move || {
                    let mut tvm = ctx.image.trial_vm();
                    while let Some(i) = source.next() {
                        if i >= ctx.plans.len() {
                            continue;
                        }
                        let _ = ctx.run_trial(&mut tvm, i);
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = done.load(Ordering::Relaxed);
        self.executed.fetch_add(n, Ordering::Relaxed);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign_attributed, CampaignConfig};
    use crate::prep::prepare;
    use parking_lot::Mutex;
    use softft::Technique;
    use softft_workloads::workload_by_name;

    fn collect_records(
        engine: &ShardEngine<'_>,
        source: &dyn IndexSource,
        threads: usize,
    ) -> Vec<(usize, TrialRecord)> {
        let got: Mutex<Vec<(usize, TrialRecord)>> = Mutex::new(Vec::new());
        let sink =
            |i: usize, _p: &FaultPlan, rec: &TrialRecord, _o: &TraceObserver, _t: &TrialTiming| {
                got.lock().push((i, rec.clone()));
            };
        engine.run_range(source, threads, &sink);
        let mut v = got.into_inner();
        v.sort_by_key(|(i, _)| *i);
        v
    }

    #[test]
    fn shared_range_drains_and_shrinks() {
        let r = SharedRange::new(3, 11);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.next(), Some(3));
        let old = r.shrink_to(6);
        assert_eq!(old, 11);
        let mut rest = Vec::new();
        while let Some(i) = r.next() {
            rest.push(i);
        }
        assert_eq!(rest, vec![4, 5]);
        assert_eq!(r.remaining(), 0);
        // Shrinking never raises the bound.
        r.shrink_to(100);
        assert_eq!(r.hi(), 6);
    }

    #[test]
    fn engine_matches_campaign_core_across_schedules() {
        // The same 24 trials, once through run_campaign_attributed and
        // once through the shard engine split across two disjoint
        // ranges with different thread counts — records must be
        // bitwise-identical.
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let cfg = CampaignConfig {
            trials: 24,
            seed: 42,
            threads: 2,
            snapshot_interval: CampaignConfig::SNAPSHOT_AUTO,
            ..CampaignConfig::default()
        };
        let (_, telemetry) =
            run_campaign_attributed(&*p.workload, p.module(Technique::DupVal), &cfg, None);

        let module = neutralized_module(&*p.workload, p.module(Technique::DupVal), &cfg);
        let engine = ShardEngine::prepare(&*p.workload, &module, &cfg);
        assert_eq!(engine.plan_count(), 24);
        let mut got = collect_records(&engine, &SharedRange::new(0, 9), 1);
        got.extend(collect_records(&engine, &SharedRange::new(9, 24), 2));
        got.sort_by_key(|(i, _)| *i);

        assert_eq!(got.len(), telemetry.records.len());
        for (i, rec) in &got {
            assert_eq!(rec, &telemetry.records[*i], "trial {i} diverged");
        }
        assert_eq!(engine.trials_executed(), 24);
    }

    #[test]
    fn duplicate_execution_is_idempotent() {
        // Re-running a range (the reclaim path after a worker death)
        // must reproduce records bit for bit.
        let p = prepare(workload_by_name("kmeans").unwrap());
        let cfg = CampaignConfig {
            trials: 10,
            seed: 9,
            threads: 1,
            snapshot_interval: CampaignConfig::SNAPSHOT_AUTO,
            ..CampaignConfig::default()
        };
        let module = neutralized_module(&*p.workload, p.module(Technique::DupOnly), &cfg);
        let engine = ShardEngine::prepare(&*p.workload, &module, &cfg);
        let a = collect_records(&engine, &SharedRange::new(0, 10), 2);
        let b = collect_records(&engine, &SharedRange::new(0, 10), 1);
        assert_eq!(a, b);
    }
}
