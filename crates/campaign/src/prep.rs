//! Benchmark preparation: profile on the train input, transform under
//! every technique.

use softft::{transform_protected, ProtectionMap, StaticStats, Technique, TransformConfig};
use softft_ir::Module;
use softft_profile::{ClassifyConfig, ProfileDb, Profiler};
use softft_vm::interp::VmConfig;
use softft_workloads::runner::run_workload;
use softft_workloads::{InputSet, Workload};
use std::collections::HashMap;

/// A benchmark with all its transformed variants.
pub struct PreparedBenchmark {
    /// The benchmark.
    pub workload: Box<dyn Workload>,
    /// The profile collected on the train input (the paper's offline
    /// value-profiling step).
    pub profile: ProfileDb,
    /// Transformed modules per technique.
    pub modules: HashMap<Technique, Module>,
    /// Static statistics per technique (Fig. 10).
    pub static_stats: HashMap<Technique, StaticStats>,
    /// Protection maps per technique — which sites of each transformed
    /// module are duplicated / value-checked (coverage attribution).
    pub protection: HashMap<Technique, ProtectionMap>,
}

impl PreparedBenchmark {
    /// The module for one technique.
    ///
    /// # Panics
    ///
    /// Panics if the technique was not prepared (all four always are).
    pub fn module(&self, t: Technique) -> &Module {
        &self.modules[&t]
    }

    /// The protection map for one technique (empty for `Original`).
    ///
    /// # Panics
    ///
    /// Panics if the technique was not prepared (all four always are).
    pub fn protection(&self, t: Technique) -> &ProtectionMap {
        &self.protection[&t]
    }
}

/// Profiles `workload` on `profile_input` and builds all four technique
/// variants.
pub fn prepare_with_inputs(
    workload: Box<dyn Workload>,
    profile_input: InputSet,
    classify: &ClassifyConfig,
    config: &TransformConfig,
) -> PreparedBenchmark {
    let module = workload.build_module();
    let input = workload.input(profile_input);
    let mut profiler = Profiler::default();
    let (result, _) = run_workload(&module, &input, VmConfig::default(), &mut profiler, None);
    assert!(
        result.completed(),
        "profiling run of {} failed: {:?}",
        workload.name(),
        result.end
    );
    let profile = ProfileDb::from_profiler(&profiler, classify);

    let mut modules = HashMap::new();
    let mut static_stats = HashMap::new();
    let mut protection = HashMap::new();
    for t in Technique::ALL {
        let (m, s, p) = transform_protected(&module, &profile, t, config);
        modules.insert(t, m);
        static_stats.insert(t, s);
        protection.insert(t, p);
    }
    PreparedBenchmark {
        workload,
        profile,
        modules,
        static_stats,
        protection,
    }
}

/// Standard preparation: profile on [`InputSet::Train`] with default
/// configurations (the paper's setup).
pub fn prepare(workload: Box<dyn Workload>) -> PreparedBenchmark {
    prepare_with_inputs(
        workload,
        InputSet::Train,
        &ClassifyConfig::default(),
        &TransformConfig::default(),
    )
}

/// Observer collecting the static sites of failing checks.
#[derive(Default)]
struct CheckFailSites {
    sites: Vec<(softft_ir::FuncId, softft_ir::InstId)>,
}

impl softft_vm::interp::Observer for CheckFailSites {
    fn on_check_fail(
        &mut self,
        func: softft_ir::FuncId,
        _f: &softft_ir::Function,
        inst: softft_ir::InstId,
    ) {
        self.sites.push((func, inst));
    }
}

/// Disables check sites that fire on a *fault-free* run of `input` —
/// the steady-state behaviour the paper describes: a false-positive
/// check triggers one recovery, fires again after re-execution, and is
/// then suppressed. Returns the number of sites disabled.
///
/// Call this on a transformed module before an injection campaign whose
/// input differs from the profiling input; otherwise benign profile
/// drift would be misclassified as detection.
pub fn neutralize_false_positives(
    module: &mut Module,
    workload: &dyn Workload,
    input: InputSet,
) -> usize {
    let cfg = VmConfig {
        checks_count_only: true,
        ..VmConfig::default()
    };
    let mut sites = CheckFailSites::default();
    let (result, _) = run_workload(module, &workload.input(input), cfg, &mut sites, None);
    assert!(
        result.completed(),
        "fault-free counting run of {} failed: {:?}",
        workload.name(),
        result.end
    );
    let mut unique: Vec<_> = sites.sites;
    unique.sort();
    unique.dedup();
    for &(fid, inst) in &unique {
        let f = module.function_mut(fid);
        let true_c = f.iconst(softft_ir::Type::I1, 1);
        if let softft_ir::Op::Check { cond, .. } = &mut f.inst_mut(inst).op {
            *cond = true_c;
        }
    }
    unique.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_workloads::workload_by_name;

    #[test]
    fn preparation_builds_all_techniques() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        assert_eq!(p.modules.len(), 4);
        for t in Technique::ALL {
            softft_ir::verify::verify_module(p.module(t)).unwrap();
        }
        let dup = p.static_stats[&Technique::DupOnly];
        assert!(dup.state_vars > 0);
        assert!(dup.duplicated > 0);
        let dv = p.static_stats[&Technique::DupVal];
        // Opt 2 may clone fewer instructions than Dup-only, but checks
        // must appear and the module must have grown.
        assert!(dv.insts_after > dv.insts_before);
        assert!(dv.value_checks() > 0);
        assert!(p.profile.num_amenable() > 0);
        assert!(p.protection(Technique::Original).is_empty());
        assert!(!p.protection(Technique::DupOnly).is_empty());
        assert!(!p.protection(Technique::DupVal).is_empty());
    }

    #[test]
    fn transformed_modules_preserve_golden_output() {
        let p = prepare(workload_by_name("segm").unwrap());
        let input = p.workload.input(InputSet::Test);
        let mut outs = Vec::new();
        for t in Technique::ALL {
            // Neutralize train→test profile drift (false positives)
            // exactly as campaigns do.
            let mut m = p.module(t).clone();
            neutralize_false_positives(&mut m, &*p.workload, InputSet::Test);
            let (r, out) = run_workload(
                &m,
                &input,
                VmConfig::default(),
                &mut softft_vm::interp::NoopObserver,
                None,
            );
            assert!(r.completed(), "{t}: {:?}", r.end);
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(o, &outs[0], "technique changed fault-free output");
        }
    }

    #[test]
    fn neutralization_disables_only_firing_checks() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let mut m = p.module(Technique::DupVal).clone();
        let disabled = neutralize_false_positives(&mut m, &*p.workload, InputSet::Test);
        // Re-running must now be clean.
        let again = neutralize_false_positives(&mut m, &*p.workload, InputSet::Test);
        assert_eq!(
            again, 0,
            "neutralization did not converge ({disabled} then {again})"
        );
    }
}
