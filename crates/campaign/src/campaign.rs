//! The statistical fault-injection loop.

use crate::coverage::{fault_site, site_op_label, site_protection_label};
use crate::outcome::{classify_trial, is_large_change, ClassifyParams, Outcome, TrialRecord};
use crate::profile::{CampaignProfile, PhaseAccum};
use crate::snapshot::{CheckpointStore, SnapshotStats};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softft::ProtectionMap;
use softft_ir::{CheckKind, Module};
use softft_telemetry::{
    check_kind_label, CheckCounter, CheckKindCounts, Histogram, MetricsRegistry, ProgressTracker,
    Stopwatch, TraceObserver, TrialEvent,
};
use softft_vm::fault::{FaultKind, FaultPlan, InjectionRecord};
use softft_vm::interp::{NoopObserver, SuffixObserver, VmConfig};
use softft_vm::{ConvergeOutcome, ModuleLiveness, Resolution, RunEnd, RunResult, TrapKind};
use softft_workloads::runner::{TrialVm, WorkloadImage};
use softft_workloads::{InputSet, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Injection trials (the paper runs 1000 per benchmark; scale down
    /// for quick runs).
    pub trials: u32,
    /// Master seed: fault sites and victims derive deterministically.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// VM configuration for trial runs.
    pub vm: VmConfig,
    /// Classification parameters.
    pub classify: ClassifyParams,
    /// Input set faults are injected on (the paper uses the test input).
    pub input: InputSet,
    /// What the injected faults corrupt (register bits by default; branch
    /// targets for the control-flow-checking extension).
    pub fault_kind: FaultKind,
    /// Golden-run checkpoint spacing in dynamic instructions; trials
    /// resume from the greatest checkpoint at or below their trigger
    /// instead of re-executing the fault-free prefix. `0` disables
    /// snapshots (every trial runs from instruction 0);
    /// [`CampaignConfig::SNAPSHOT_AUTO`] derives the interval from
    /// observed convergence latencies. Results are bitwise identical
    /// either way; the knob only trades checkpoint memory for campaign
    /// wall-clock.
    pub snapshot_interval: u64,
    /// Divergence-bounded execution: when a diverged trial's full
    /// boundary state exactly recurs with the fault consumed, the trial
    /// provably loops forever and its watchdog record is synthesized
    /// immediately instead of executing to the bound (see
    /// [`softft_vm::Vm::resume_converging`]). Classification is
    /// bitwise-unchanged; the proof only removes dead spinning. Requires
    /// snapshots (the proof piggybacks on convergence boundaries).
    pub spin_proof: bool,
    /// DETOx-style static fault-space pruning: register-fault trials
    /// whose resolved victim bit is provably dead (overwritten before
    /// read) or masked (above every reader's truncation width) skip
    /// execution entirely — the golden record is synthesized with the
    /// exact injection the trial would have performed. Requires snapshots
    /// and [`FaultKind::Register`]; bitwise-unchanged results.
    pub prune: bool,
}

impl CampaignConfig {
    /// Sentinel for [`CampaignConfig::snapshot_interval`]: choose the
    /// checkpoint spacing adaptively. The campaign records at a
    /// provisional `golden_dyn_insts / 32`, measures convergence
    /// latencies over the first few trials, and re-records at half the
    /// median latency (clamped to a 256 MiB checkpoint budget), so
    /// convergence checks land where trials actually re-join.
    pub const SNAPSHOT_AUTO: u64 = u64::MAX;
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 200,
            seed: 0xF00D,
            threads: 0,
            vm: VmConfig::default(),
            classify: ClassifyParams::default(),
            input: InputSet::Test,
            fault_kind: FaultKind::Register,
            snapshot_interval: 0,
            spin_proof: true,
            prune: true,
        }
    }
}

/// Aggregated campaign results for one (benchmark, technique) pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignResult {
    /// Trials executed.
    pub trials: u32,
    /// Count per outcome class.
    pub counts: HashMap<Outcome, u32>,
    /// USDC trials whose injection made a large value change (Fig. 2).
    pub usdc_large: u32,
    /// USDC trials with a small value change.
    pub usdc_small: u32,
    /// Dynamic instructions of the fault-free run.
    pub golden_dyn_insts: u64,
    /// Detection latency (dynamic instructions from injection to trap)
    /// over software-detected trials.
    pub sw_latency: Histogram,
    /// Detection latency over hardware-detected trials.
    pub hw_latency: Histogram,
    /// Trials whose trigger was never reached (the faulted run ended
    /// before `at_dyn`, so nothing was injected). These fold into
    /// [`Outcome::Masked`] — the hardware state the flip would have hit
    /// was dead — but are counted explicitly so coverage denominators
    /// stay honest.
    pub trigger_unreached: u32,
}

impl CampaignResult {
    fn count(&self, o: Outcome) -> u32 {
        self.counts.get(&o).copied().unwrap_or(0)
    }

    /// Folds one classified trial into the aggregate. This is the
    /// single accumulation path shared by the buffered campaign loop
    /// and the run-store replay ([`crate::live::replay`]), which is
    /// what makes the two provably identical: there is no second
    /// implementation to drift.
    pub(crate) fn fold_record(&mut self, rec: &TrialRecord, classify: &ClassifyParams) {
        *self.counts.entry(rec.outcome).or_insert(0) += 1;
        if rec.injection.is_none() {
            self.trigger_unreached += 1;
        }
        if rec.outcome == Outcome::UnacceptableSdc {
            match rec.injection {
                Some(inj) if is_large_change(&inj, classify) => self.usdc_large += 1,
                _ => self.usdc_small += 1,
            }
        }
        if let Some(lat) = rec.detect_latency {
            match rec.outcome {
                Outcome::SwDetect(_) => self.sw_latency.record(lat),
                Outcome::HwDetect => self.hw_latency.record(lat),
                _ => {}
            }
        }
    }

    /// Fraction of trials in the given outcome.
    pub fn frac(&self, o: Outcome) -> f64 {
        self.count(o) as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials collapsed to the Fig. 11 *Masked* bucket
    /// (masked + acceptable SDCs).
    pub fn masked_frac(&self) -> f64 {
        self.frac(Outcome::Masked) + self.frac(Outcome::AcceptableSdc)
    }

    /// Fraction of SWDetect trials (all check kinds).
    pub fn swdetect_frac(&self) -> f64 {
        self.counts
            .iter()
            .filter(|(o, _)| matches!(o, Outcome::SwDetect(_)))
            .map(|(_, c)| *c as f64)
            .sum::<f64>()
            / self.trials.max(1) as f64
    }

    /// SWDetect fraction attributable to one check kind.
    pub fn swdetect_kind_frac(&self, kind: CheckKind) -> f64 {
        self.frac(Outcome::SwDetect(kind))
    }

    /// Fraction of HWDetect trials.
    pub fn hwdetect_frac(&self) -> f64 {
        self.frac(Outcome::HwDetect)
    }

    /// Fraction of Failures.
    pub fn failure_frac(&self) -> f64 {
        self.frac(Outcome::Failure)
    }

    /// Fraction of unacceptable SDCs (the USDC column).
    pub fn usdc_frac(&self) -> f64 {
        self.frac(Outcome::UnacceptableSdc)
    }

    /// Fraction of all SDCs (acceptable + unacceptable; Fig. 13 bars).
    pub fn sdc_frac(&self) -> f64 {
        self.frac(Outcome::AcceptableSdc) + self.frac(Outcome::UnacceptableSdc)
    }

    /// Fault coverage as defined in Section V: Masked (incl. acceptable)
    /// + SWDetect + HWDetect.
    pub fn coverage(&self) -> f64 {
        self.masked_frac() + self.swdetect_frac() + self.hwdetect_frac()
    }

    /// Outcome counts in [`Outcome::CANONICAL`] order (zero counts
    /// included), for byte-stable rendering.
    pub fn ordered_counts(&self) -> impl Iterator<Item = (Outcome, u32)> + '_ {
        Outcome::CANONICAL.iter().map(|&o| (o, self.count(o)))
    }
}

/// Per-trial events and aggregated metrics from a traced campaign
/// ([`run_campaign_traced`]).
#[derive(Clone, Debug, Default)]
pub struct CampaignTelemetry {
    /// One event per trial, in plan order (trial *i* is plan *i*).
    pub events: Vec<TrialEvent>,
    /// Total check firings by kind across all trials (every firing, not
    /// just first detections).
    pub checks: CheckKindCounts,
    /// Aggregated counters and histograms: per-opcode dynamic
    /// instruction counts (`vm.ops.*`), check firings by kind
    /// (`checks.fired.*`), outcome counts (`outcome.*`), run lengths
    /// (`vm.dyn_insts`), and detection latencies (`latency.*`).
    pub metrics: MetricsRegistry,
    /// Per-trial classification records, in plan order — the raw input
    /// of [`crate::coverage::build_coverage`].
    pub records: Vec<TrialRecord>,
}

/// Wall-clock observations about one completed trial, handed to a
/// streaming [`TrialSink`] alongside the classified record.
#[derive(Clone, Copy, Debug)]
pub struct TrialTiming {
    /// True when the trial ended in a watchdog trap (ran to the
    /// dynamic-instruction bound).
    pub watchdog: bool,
    /// Live execution nanoseconds of the trial (0 when no sink or
    /// profiler requested timing).
    pub exec_ns: u64,
}

/// Per-completion callback for streaming campaigns: receives the plan
/// index, plan, classified record, trial observer, and timing as each
/// trial finishes (worker-thread order, not plan order). Write-only
/// like every observation hook: the campaign never reads anything back
/// from the sink, so streamed and unstreamed runs are bitwise
/// identical.
pub(crate) type TrialSink<'a, O> =
    Option<&'a (dyn Fn(usize, &FaultPlan, &TrialRecord, &O, &TrialTiming) + Sync)>;

/// Per-path trial tallies, shared across worker threads and across the
/// calibration / main execution slices of one campaign (or one fleet
/// shard engine, which reports them per worker).
#[derive(Default)]
pub(crate) struct PathCounters {
    pub(crate) resumed: AtomicU64,
    pub(crate) converged: AtomicU64,
    pub(crate) prefix_skipped: AtomicU64,
    pub(crate) suffix_skipped: AtomicU64,
    pub(crate) insts_executed: AtomicU64,
    pub(crate) spin_proved: AtomicU64,
    pub(crate) spin_skipped: AtomicU64,
    pub(crate) pruned: AtomicU64,
    pub(crate) pruned_skipped: AtomicU64,
    pub(crate) ns_executed: AtomicU64,
    pub(crate) ns_converged: AtomicU64,
    pub(crate) ns_spin: AtomicU64,
    pub(crate) ns_pruned: AtomicU64,
}

/// Which scheduling path produced a trial's record.
#[derive(Clone, Copy)]
enum TrialPath {
    Executed,
    Converged,
    SpinProved,
    Pruned,
}

/// Everything one trial execution borrows from a prepared campaign:
/// the plans, prune decisions, golden baseline, checkpoint store, and
/// observation hooks. [`TrialCtx::run_trial`] is the single per-trial
/// implementation behind both the buffered campaign loop
/// ([`campaign_core_phased`]) and the fleet shard engine
/// ([`crate::engine::ShardEngine`]); sharing the body — not a copy of
/// it — is what makes fleet results bitwise-identical to single-process
/// campaigns by construction.
pub(crate) struct TrialCtx<'a, O> {
    pub(crate) workload: &'a dyn Workload,
    pub(crate) cfg: &'a CampaignConfig,
    pub(crate) image: &'a WorkloadImage<'a>,
    pub(crate) plans: &'a [FaultPlan],
    pub(crate) pruned: &'a [Option<Option<InjectionRecord>>],
    pub(crate) golden_result: &'a RunResult,
    pub(crate) golden_out: &'a Vec<u8>,
    pub(crate) store: Option<&'a CheckpointStore<O>>,
    pub(crate) candidates: &'a [&'a softft_vm::Snapshot],
    pub(crate) spin_grid: u64,
    pub(crate) time_exec: bool,
    pub(crate) counters: &'a PathCounters,
    pub(crate) phases: Option<&'a PhaseAccum>,
    pub(crate) tracker: Option<&'a ProgressTracker>,
    pub(crate) make_obs: &'a (dyn Fn() -> O + Sync),
    pub(crate) sink: TrialSink<'a, O>,
    pub(crate) latencies: Option<&'a Mutex<Vec<u64>>>,
}

impl<O: SuffixObserver> TrialCtx<'_, O> {
    /// Executes plan index `i` on the worker's VM and returns the
    /// classified record plus the trial observer. Pure in the plan
    /// index: visit order, thread assignment, and duplicate executions
    /// cannot change the record (only the write-only timing/progress
    /// observations), which is what makes fleet steal races and
    /// dead-worker re-dispatch idempotent.
    pub(crate) fn run_trial(&self, tvm: &mut TrialVm<'_, '_>, i: usize) -> (TrialRecord, O) {
        let (workload, cfg, plans, pruned) = (self.workload, self.cfg, self.plans, self.pruned);
        let (golden_result, golden_out) = (self.golden_result, self.golden_out);
        let (store, candidates, spin_grid, time_exec) =
            (self.store, self.candidates, self.spin_grid, self.time_exec);
        let (counters, phases, tracker) = (self.counters, self.phases, self.tracker);
        let (make_obs, sink, latencies) = (self.make_obs, self.sink, self.latencies);
        let plan = plans[i];
        // Live-execution time of this trial; attributed per path / per
        // outcome after classification.
        let mut trial_exec_ns = 0u64;
        let mut path = TrialPath::Executed;
        let (obs, result, out) = if let Some(s) = store {
            if let Some(inj) = pruned[i] {
                // Statically pruned: the resolved flip is provably
                // invisible, so the trial executes the golden run bit
                // for bit and its record is synthesized. The observer
                // is the golden-final state plus the injection hook
                // (which commutes with every other event).
                path = TrialPath::Pruned;
                let sw = time_exec.then(Stopwatch::start);
                counters.pruned.fetch_add(1, Ordering::Relaxed);
                counters
                    .pruned_skipped
                    .fetch_add(golden_result.dyn_insts, Ordering::Relaxed);
                let mut obs = s.golden_obs().clone();
                if let Some(rec) = inj {
                    obs.on_inject(&rec);
                }
                let r = RunResult {
                    end: golden_result.end,
                    dyn_insts: golden_result.dyn_insts,
                    injection: inj,
                    check_failures: golden_result.check_failures,
                };
                let out = golden_out.clone();
                if let Some(sw) = sw {
                    trial_exec_ns = sw.elapsed_ns();
                }
                (obs, r, out)
            } else {
                let sw = phases.map(|_| Stopwatch::start());
                let cp = s.best_for(plan.at_dyn);
                let (mut obs, start) = match cp {
                    Some(cp) => {
                        counters.resumed.fetch_add(1, Ordering::Relaxed);
                        counters
                            .prefix_skipped
                            .fetch_add(cp.snap.dyn_count(), Ordering::Relaxed);
                        (cp.obs.clone(), cp.snap.dyn_count())
                    }
                    None => (make_obs(), 0),
                };
                if let (Some(ph), Some(sw)) = (phases, sw) {
                    ph.resume_ns.fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
                }
                let sw = time_exec.then(Stopwatch::start);
                let outcome = match cp {
                    Some(cp) => {
                        tvm.resume_converging(&cp.snap, &mut obs, Some(plan), candidates, spin_grid)
                    }
                    None => tvm.run_converging(&mut obs, Some(plan), candidates, spin_grid),
                };
                if let Some(sw) = sw {
                    trial_exec_ns = sw.elapsed_ns();
                }
                match outcome {
                    ConvergeOutcome::Done(r) => {
                        counters
                            .insts_executed
                            .fetch_add(r.dyn_insts - start, Ordering::Relaxed);
                        let out = tvm.output();
                        (obs, r, out)
                    }
                    ConvergeOutcome::Converged {
                        at,
                        executed,
                        injection,
                    } => {
                        // State equals the golden checkpoint at `at`, so
                        // the rest of the run is the golden suffix: take
                        // the golden result and fast-forward the
                        // observer.
                        path = TrialPath::Converged;
                        counters.converged.fetch_add(1, Ordering::Relaxed);
                        counters
                            .suffix_skipped
                            .fetch_add(golden_result.dyn_insts - at, Ordering::Relaxed);
                        counters
                            .insts_executed
                            .fetch_add(executed, Ordering::Relaxed);
                        if let Some(l) = latencies {
                            l.lock().push(at - plan.at_dyn);
                        }
                        let sw = phases.map(|_| Stopwatch::start());
                        let cp_at = s.at_boundary(at).expect("converged at a known checkpoint");
                        obs.fast_forward(&cp_at.obs, s.golden_obs());
                        let r = RunResult {
                            end: golden_result.end,
                            dyn_insts: golden_result.dyn_insts,
                            injection,
                            check_failures: golden_result.check_failures,
                        };
                        let out = golden_out.clone();
                        if let (Some(ph), Some(sw)) = (phases, sw) {
                            ph.fastforward_ns
                                .fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
                        }
                        (obs, r, out)
                    }
                    ConvergeOutcome::SpinProven { result, executed } => {
                        // The boundary state recurred with the fault
                        // consumed: the trial provably spins to the
                        // watchdog bound. The record was synthesized at
                        // the proof point; memory at the halt boundary
                        // is cycle-congruent with memory at the bound,
                        // so the output read is exact.
                        path = TrialPath::SpinProved;
                        counters.spin_proved.fetch_add(1, Ordering::Relaxed);
                        counters
                            .insts_executed
                            .fetch_add(executed, Ordering::Relaxed);
                        counters
                            .spin_skipped
                            .fetch_add(result.dyn_insts - start - executed, Ordering::Relaxed);
                        let out = tvm.output();
                        (obs, result, out)
                    }
                }
            }
        } else {
            let mut obs = make_obs();
            let sw = time_exec.then(Stopwatch::start);
            let (r, out) = tvm.run(&mut obs, Some(plan));
            if let Some(sw) = sw {
                trial_exec_ns = sw.elapsed_ns();
            }
            counters
                .insts_executed
                .fetch_add(r.dyn_insts, Ordering::Relaxed);
            (obs, r, out)
        };
        match path {
            TrialPath::Executed => &counters.ns_executed,
            TrialPath::Converged => &counters.ns_converged,
            TrialPath::SpinProved => &counters.ns_spin,
            TrialPath::Pruned => &counters.ns_pruned,
        }
        .fetch_add(trial_exec_ns, Ordering::Relaxed);
        // Watchdog traps mark trials that spun to the dynamic-
        // instruction bound — the expensive kind (unless the spin proof
        // caught them).
        let watchdog = matches!(
            result.end,
            RunEnd::Trap {
                kind: TrapKind::Watchdog,
                ..
            }
        );
        let rec = classify_trial(workload, golden_out, &result, &out, &cfg.classify);
        if phases.is_some() || tracker.is_some() {
            let idx = Outcome::CANONICAL
                .iter()
                .position(|o| *o == rec.outcome)
                .expect("every outcome is canonical");
            if let Some(ph) = phases {
                ph.exec_ns.fetch_add(trial_exec_ns, Ordering::Relaxed);
                let oa = &ph.per_outcome[idx];
                oa.trials.fetch_add(1, Ordering::Relaxed);
                oa.exec_ns.fetch_add(trial_exec_ns, Ordering::Relaxed);
                oa.dyn_insts.fetch_add(rec.dyn_insts, Ordering::Relaxed);
                if watchdog {
                    oa.watchdog_trials.fetch_add(1, Ordering::Relaxed);
                    oa.watchdog_spin_ns
                        .fetch_add(trial_exec_ns, Ordering::Relaxed);
                }
            }
            if let Some(t) = tracker {
                t.trial_done(idx);
            }
        }
        if let Some(sink) = sink {
            sink(
                i,
                &plan,
                &rec,
                &obs,
                &TrialTiming {
                    watchdog,
                    exec_ns: trial_exec_ns,
                },
            );
        }
        (rec, obs)
    }
}

/// Derives the full fault-plan list for a config and golden
/// instruction count. Deterministic and thread-count agnostic — the
/// foundation of exact interrupt/resume: a resumed campaign re-derives
/// the identical plans and executes only the missing indices.
pub(crate) fn derive_plans(cfg: &CampaignConfig, golden_dyn_insts: u64) -> Vec<FaultPlan> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.trials)
        .map(|_| FaultPlan {
            at_dyn: rng.gen_range(0..golden_dyn_insts.max(1)),
            seed: rng.gen(),
            kind: cfg.fault_kind,
        })
        .collect()
}

/// Dynamic instruction count of the fault-free run, prepared exactly
/// the way [`campaign_core_phased`] prepares it (false-positive
/// neutralization included), so plan derivation agrees byte for byte.
///
/// # Panics
///
/// Panics if the fault-free run does not complete.
pub fn golden_dyn_insts(workload: &dyn Workload, module: &Module, cfg: &CampaignConfig) -> u64 {
    let mut module = module.clone();
    crate::prep::neutralize_false_positives(&mut module, workload, cfg.input);
    let input = workload.input(cfg.input);
    let image = WorkloadImage::new(&module, &input, cfg.vm);
    let (r, _) = image.run(&mut NoopObserver, None);
    assert!(
        r.completed(),
        "fault-free run of {} must complete: {:?}",
        workload.name(),
        r.end
    );
    r.dyn_insts
}

/// Shared campaign core: golden run, deterministic plan derivation, and
/// the threaded trial loop. Generic over the per-trial [`Observer`] so
/// the [`NoopObserver`] path ([`run_campaign`]) monomorphizes to the
/// untraced loop while [`run_campaign_traced`] gets a full trace per
/// trial. Returns per-trial `(plan, record, observer)` in plan order.
///
/// With `cfg.snapshot_interval > 0`, the golden run doubles as a
/// recording run feeding a [`CheckpointStore`] shared across worker
/// threads, and trials resume from the greatest checkpoint at or below
/// their trigger. Past the trigger, each trial watches for *state
/// convergence* with the remaining golden checkpoints and exits early
/// with the golden result once its state provably rejoins the golden
/// run's (see [`softft_vm::Vm::resume_converging`]). Trials are
/// *visited* in trigger order for checkpoint locality, but results stay
/// keyed by plan index, so output is bit-identical to the direct path
/// regardless of interval or thread count.
fn campaign_core<O: SuffixObserver + Send + Sync>(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
    make_obs: impl Fn() -> O + Sync,
) -> (
    CampaignResult,
    Vec<(FaultPlan, TrialRecord, O)>,
    SnapshotStats,
) {
    campaign_core_phased(workload, module, cfg, make_obs, None, None, None)
}

/// [`campaign_core`] plus optional phase-time attribution. When `phases`
/// is `Some`, wall-time stopwatches bracket each campaign phase and
/// accumulate into the shared [`PhaseAccum`]; when `None` (every
/// pre-existing entry point), no clock is ever read. Timing is
/// write-only — the campaign never branches on a timer value — so both
/// modes produce bitwise-identical results. If a progress sink is
/// installed (see [`softft_telemetry::set_progress_sink`]), trial
/// completions additionally stream to it; progress is equally
/// write-only.
///
/// `subset`, when given, restricts execution to those plan *indices*
/// (the full plan list is still derived, so index *i* means the same
/// fault regardless of which subset runs — the resume path depends on
/// this). `sink` streams each completion as it happens; see
/// [`TrialSink`].
pub(crate) fn campaign_core_phased<O: SuffixObserver + Send + Sync>(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
    make_obs: impl Fn() -> O + Sync,
    phases: Option<&PhaseAccum>,
    subset: Option<&[usize]>,
    sink: TrialSink<O>,
) -> (
    CampaignResult,
    Vec<(FaultPlan, TrialRecord, O)>,
    SnapshotStats,
) {
    // Steady-state model: checks that fire with no fault on this input
    // (profile drift between train and test) have exhausted their one
    // recovery and are suppressed — see the paper's false-positive
    // discussion and `prep::neutralize_false_positives`.
    let mut module = module.clone();
    crate::prep::neutralize_false_positives(&mut module, workload, cfg.input);
    let module = &module;
    let input = workload.input(cfg.input);
    // Build the pristine globals+input image once; every trial clones it.
    let sw = phases.map(|_| Stopwatch::start());
    let image = WorkloadImage::new(module, &input, cfg.vm);
    if let (Some(ph), Some(sw)) = (phases, sw) {
        ph.decode_ns.fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
    }
    let auto = cfg.snapshot_interval == CampaignConfig::SNAPSHOT_AUTO;
    // Folds one golden-side stage's wall time into the golden phase,
    // reporting campaign-side checkpoint capture separately.
    let golden_stage = |sw: Option<Stopwatch>, capture_ns: u64| {
        if let (Some(ph), Some(sw)) = (phases, sw) {
            ph.checkpoint_record_ns
                .fetch_add(capture_ns, Ordering::Relaxed);
            ph.golden_ns.fetch_add(
                sw.elapsed_ns().saturating_sub(capture_ns),
                Ordering::Relaxed,
            );
        }
    };

    // Stage 1: the golden run. With a fixed interval the recording run
    // *is* the golden run, carrying a real trial observer so each
    // checkpoint captures the observer state a from-scratch trial would
    // have accumulated over the prefix (prefix-deterministic: the prefix
    // is fault-free and observers never perturb execution).
    // SNAPSHOT_AUTO first needs the golden length to place the
    // provisional grid — and the fault plans, so trigger resolution can
    // piggyback on the recording run — so it starts with a plain run.
    let sw = phases.map(|_| Stopwatch::start());
    let (mut store, golden_result, golden_out) = if cfg.snapshot_interval > 0 && !auto {
        let (store, r, out, capture_ns) =
            CheckpointStore::record_timed(&image, make_obs(), cfg.snapshot_interval);
        golden_stage(sw, capture_ns);
        (Some(store), r, out)
    } else {
        let (r, out) = image.run(&mut NoopObserver, None);
        golden_stage(sw, 0);
        (None, r, out)
    };
    assert!(
        golden_result.completed(),
        "fault-free run of {} must complete: {:?}",
        workload.name(),
        golden_result.end
    );
    let n = golden_result.dyn_insts;

    // Pre-derive all fault plans (deterministic, thread-count agnostic).
    let plans: Vec<FaultPlan> = derive_plans(cfg, n);

    // Static fault-space pruning resolves each plan's victim against the
    // golden state at its trigger boundary; the resolving pass wants the
    // triggers sorted (ties keep plan order — both resolve at the same
    // boundary with their own seeds, so the tiebreak is cosmetic).
    let want_prune =
        cfg.prune && cfg.fault_kind == FaultKind::Register && cfg.snapshot_interval > 0;
    let trig_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..plans.len()).collect();
        idx.sort_by_key(|&i| (plans[i].at_dyn, i));
        idx
    };
    let triggers: Vec<FaultPlan> = if want_prune {
        trig_order.iter().map(|&i| plans[i]).collect()
    } else {
        Vec::new()
    };

    let mut resolutions: Vec<Resolution> = Vec::new();
    if auto {
        // Stage 1b (SNAPSHOT_AUTO): record on the provisional grid,
        // resolving triggers along the way. The recording run replays
        // the golden run bit for bit.
        let provisional = (n / 32).max(1);
        let sw = phases.map(|_| Stopwatch::start());
        let (s, r, _out, res, capture_ns) =
            CheckpointStore::record_resolving(&image, make_obs(), provisional, &triggers);
        golden_stage(sw, capture_ns);
        assert_eq!(r, golden_result, "recording run must replay the golden run");
        store = Some(s);
        resolutions = res;
    } else if want_prune {
        // Fixed interval: snapshots were recorded before the plans
        // existed, so resolution takes a dedicated pass (interval 0 =
        // resolve only, no checkpoint capture).
        let sw = phases.map(|_| Stopwatch::start());
        let (r, _out, res) =
            image.run_recording_resolving(&mut NoopObserver, 0, &triggers, |_, _| {});
        golden_stage(sw, 0);
        debug_assert_eq!(r, golden_result);
        resolutions = res;
    }

    // Pruning decisions. A trial whose resolved flip is provably dead or
    // masked — or that injects nothing at all — executes the golden run
    // bit for bit, so its record is synthesized without running it:
    // `pruned[i]` of `Some(inj)` means "synthesize golden with injection
    // `inj`", `None` means run normally.
    let mut pruned: Vec<Option<Option<InjectionRecord>>> = vec![None; plans.len()];
    if want_prune && !resolutions.is_empty() {
        let liveness = ModuleLiveness::compute(module);
        for (k, &i) in trig_order.iter().enumerate() {
            match resolutions[k] {
                Resolution::NoCandidates => pruned[i] = Some(None),
                Resolution::Register { rec, block, ip } => {
                    if liveness.dead_or_masked(module, rec.func, block, ip, rec.value, rec.bit) {
                        pruned[i] = Some(Some(rec));
                    }
                }
            }
        }
    }

    // Visit order: by trigger when resuming (neighboring trials share a
    // checkpoint, keeping its memory image hot), plan order otherwise.
    // A subset (resumed campaign) filters the order, never the plans —
    // plan index i always names the same fault.
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = match subset {
            Some(subset) => subset
                .iter()
                .copied()
                .filter(|&i| i < plans.len())
                .collect(),
            None => (0..plans.len()).collect(),
        };
        if store.is_some() {
            idx.sort_by_key(|&i| (plans[i].at_dyn, i));
        }
        idx
    };

    let counters = PathCounters::default();

    let records: Mutex<Vec<(usize, TrialRecord, O)>> = Mutex::new(Vec::with_capacity(order.len()));
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };

    // Stream trial completions when a progress sink is installed
    // (repro `--progress`). Like phase timing, this is write-only
    // observation: nothing the campaign computes ever reads it.
    let progress = ProgressTracker::for_registered(
        workload.name(),
        order.len() as u64,
        Outcome::CANONICAL.iter().map(|o| o.label()).collect(),
    );
    let tracker = progress.as_ref();

    let mut calibration_trials = 0u64;
    let mut conv_p50 = 0u64;
    {
        // One slice of the trial loop. The adaptive path calls this twice
        // (calibration under the provisional store, remainder under the
        // re-recorded one); everything else calls it once. `latencies`,
        // when given, collects convergence latencies (trigger → boundary)
        // for interval calibration.
        let run_slice = |order_slice: &[usize],
                         store: Option<&CheckpointStore<O>>,
                         candidates: &[&softft_vm::Snapshot],
                         latencies: Option<&Mutex<Vec<u64>>>| {
            // Spin detection is site-locked (boundaries are graded
            // against the anchor's instruction site, not sampled on a
            // grid), so the grid only paces anchor management: first
            // capture two spans after the fault resolves, Brent window
            // doubling in span units. Capping it keeps re-anchoring
            // responsive when the adaptive checkpoint interval grows
            // large; any positive grid yields bit-identical results.
            let spin_grid = match store {
                Some(s) if cfg.spin_proof => s.interval().clamp(1, 256),
                _ => 0,
            };
            // Trial-exec stopwatches run for the profiler, for streaming
            // sinks (the run store persists per-trial exec time), and for
            // the per-path wall-time breakdown whenever snapshots are on;
            // all write-only, so timing on/off cannot change results.
            let time_exec = phases.is_some() || sink.is_some() || store.is_some();
            let ctx = TrialCtx {
                workload,
                cfg,
                image: &image,
                plans: &plans,
                pruned: &pruned,
                golden_result: &golden_result,
                golden_out: &golden_out,
                store,
                candidates,
                spin_grid,
                time_exec,
                counters: &counters,
                phases,
                tracker,
                make_obs: &make_obs,
                sink,
                latencies,
            };
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let (records, next, ctx) = (&records, &next, &ctx);
                for _ in 0..threads.min(order_slice.len().max(1)) {
                    scope.spawn(move || {
                        // One VM per worker: trials overwrite its memory
                        // image in place instead of re-allocating ~1 MiB
                        // per trial.
                        let mut tvm = ctx.image.trial_vm();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= order_slice.len() {
                                break;
                            }
                            let i = order_slice[k];
                            let (rec, obs) = ctx.run_trial(&mut tvm, i);
                            records.lock().push((i, rec, obs));
                        }
                    });
                }
            });
        };

        if auto {
            // Stage 2 (SNAPSHOT_AUTO): run the first trials under the
            // provisional grid, collecting convergence latencies; then
            // re-record at half the median latency — convergence checks
            // land about where trials actually re-join — clamped to a
            // 256 MiB checkpoint budget and at most one check per 8
            // golden intervals. Calibration trials are ordinary trials
            // (bit-identical results); only their wall-clock differs.
            let cal = order.len().min(32);
            let lat = Mutex::new(Vec::new());
            {
                let s0 = store.as_ref().expect("auto recording built a store");
                let cands0 = s0.candidates();
                run_slice(&order[..cal], Some(s0), &cands0, Some(&lat));
            }
            calibration_trials = cal as u64;
            let mut lats = lat.into_inner();
            lats.sort_unstable();
            if !lats.is_empty() {
                conv_p50 = lats[lats.len() / 2];
                let s0 = store.as_ref().expect("auto recording built a store");
                let per_ck = (s0.total_bytes() as u64 / s0.len().max(1) as u64).max(1);
                let max_cks = ((256u64 << 20) / per_ck).clamp(8, 256);
                let lo = (n / max_cks).max(1);
                let hi = (n / 8).max(1);
                let chosen = (conv_p50 / 2).clamp(lo.min(hi), hi).max(1);
                if chosen != s0.interval() {
                    let sw = phases.map(|_| Stopwatch::start());
                    let (s1, r1, _out1, capture_ns) =
                        CheckpointStore::record_timed(&image, make_obs(), chosen);
                    golden_stage(sw, capture_ns);
                    assert_eq!(r1, golden_result, "re-recording must replay the golden run");
                    store = Some(s1);
                }
            }
            let s = store.as_ref().expect("auto recording built a store");
            let cands = s.candidates();
            run_slice(&order[cal..], Some(s), &cands, None);
        } else {
            // Convergence candidates: every checkpoint is a potential
            // early-exit boundary once a trial's state matches the
            // golden run's.
            let s = store.as_ref();
            let cands: Vec<&softft_vm::Snapshot> = s.map(|s| s.candidates()).unwrap_or_default();
            run_slice(&order, s, &cands, None);
        }
    }

    if let Some(t) = &progress {
        t.finish();
    }

    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let stats = SnapshotStats {
        interval: store.as_ref().map_or(0, |s| s.interval()),
        checkpoints: store.as_ref().map_or(0, |s| s.len() as u64),
        checkpoint_bytes: store.as_ref().map_or(0, |s| s.total_bytes() as u64),
        resumed_trials: load(&counters.resumed),
        fresh_trials: order.len() as u64 - load(&counters.resumed) - load(&counters.pruned),
        converged_trials: load(&counters.converged),
        prefix_insts_skipped: load(&counters.prefix_skipped),
        suffix_insts_skipped: load(&counters.suffix_skipped),
        insts_executed: load(&counters.insts_executed),
        spin_proved_trials: load(&counters.spin_proved),
        spin_insts_skipped: load(&counters.spin_skipped),
        pruned_trials: load(&counters.pruned),
        pruned_insts_skipped: load(&counters.pruned_skipped),
        adaptive: auto,
        calibration_trials,
        conv_latency_p50: conv_p50,
        exec_ns_executed: load(&counters.ns_executed),
        exec_ns_converged: load(&counters.ns_converged),
        exec_ns_spin: load(&counters.ns_spin),
        exec_ns_pruned: load(&counters.ns_pruned),
    };

    let mut per_trial = records.into_inner();
    per_trial.sort_by_key(|(i, _, _)| *i);

    let mut result = CampaignResult {
        // Equal to cfg.trials for full runs; a subset run reports only
        // what it executed.
        trials: per_trial.len() as u32,
        golden_dyn_insts: n,
        ..CampaignResult::default()
    };
    for (_, rec, _) in &per_trial {
        result.fold_record(rec, &cfg.classify);
    }
    (
        result,
        per_trial
            .into_iter()
            .map(|(i, rec, obs)| (plans[i], rec, obs))
            .collect(),
        stats,
    )
}

/// Runs one campaign: `trials` injections into `module` running
/// `workload` on the configured input, classified against the fault-free
/// golden output.
///
/// Deterministic in (`module`, `cfg`): trial *i* derives its fault plan
/// from `cfg.seed` and `i` regardless of thread scheduling.
///
/// # Panics
///
/// Panics if the fault-free run does not complete (a workload bug, not a
/// fault effect).
pub fn run_campaign(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> CampaignResult {
    campaign_core(workload, module, cfg, || NoopObserver).0
}

/// Like [`run_campaign`], but additionally attributes campaign
/// wall-clock to phases — decode, golden run, checkpoint record, resume
/// bookkeeping, live trial execution, convergence fast-forward — with
/// per-outcome execution totals (watchdog-spin time included). The
/// `CampaignResult` is bitwise identical to [`run_campaign`] for the
/// same config: timing is write-only (see DESIGN.md, "Observability
/// invariants"); only the nanosecond values in the returned
/// [`CampaignProfile`] vary run to run. The [`SnapshotStats`] report
/// what the scheduling optimizations did (including the chosen interval
/// under [`CampaignConfig::SNAPSHOT_AUTO`]).
pub fn run_campaign_profiled(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> (CampaignResult, CampaignProfile, SnapshotStats) {
    let accum = PhaseAccum::new();
    let (result, _, stats) = campaign_core_phased(
        workload,
        module,
        cfg,
        || NoopObserver,
        Some(&accum),
        None,
        None,
    );
    (result, accum.snapshot(), stats)
}

/// Like [`run_campaign`], but also returns the [`SnapshotStats`]
/// describing how much prefix work the checkpoint engine skipped (all
/// zero when `cfg.snapshot_interval == 0`). The `CampaignResult` itself
/// is bitwise identical to [`run_campaign`] for the same config.
pub fn run_campaign_with_stats(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> (CampaignResult, SnapshotStats) {
    let (result, _, stats) = campaign_core(workload, module, cfg, || NoopObserver);
    (result, stats)
}

/// Like [`run_campaign`], but counts which [`CheckKind`]s fired across
/// all trials. Cheaper than [`run_campaign_traced`]: the per-trial
/// observer only does work when a check fails.
pub fn run_campaign_counted(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> (CampaignResult, CheckKindCounts) {
    let (result, per_trial, _) = campaign_core(workload, module, cfg, CheckCounter::default);
    let mut checks = CheckKindCounts::new();
    for (_, _, obs) in &per_trial {
        checks.merge(&obs.counts);
    }
    (result, checks)
}

/// Like [`run_campaign`], but also returns the per-trial
/// [`TrialRecord`]s (in plan order) so callers can build a
/// [`crate::coverage::CoverageMap`] without paying for full tracing.
pub fn run_campaign_recorded(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> (CampaignResult, Vec<TrialRecord>) {
    let (result, per_trial, _) = campaign_core(workload, module, cfg, || NoopObserver);
    (
        result,
        per_trial.into_iter().map(|(_, rec, _)| rec).collect(),
    )
}

/// Like [`run_campaign`], but traces every trial with a
/// [`TraceObserver`] and additionally returns per-trial events and
/// aggregated metrics. Trial outcomes are identical to the untraced
/// run for the same config (observation never perturbs execution).
pub fn run_campaign_traced(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> (CampaignResult, CampaignTelemetry) {
    run_campaign_attributed(workload, module, cfg, None)
}

/// [`run_campaign_traced`] with fault-site attribution: every injected
/// trial's event names the victim's function, defining static
/// instruction, opcode, and bit band, and — when the transform's
/// [`ProtectionMap`] is supplied — the site's protection class.
pub fn run_campaign_attributed(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
    protection: Option<&ProtectionMap>,
) -> (CampaignResult, CampaignTelemetry) {
    let (result, per_trial, _) = campaign_core(workload, module, cfg, TraceObserver::new);

    let mut telemetry = CampaignTelemetry::default();
    for (i, (plan, rec, obs)) in per_trial.iter().enumerate() {
        telemetry.events.push(build_trial_event(
            i as u32,
            plan,
            rec,
            cfg.fault_kind,
            module,
            protection,
        ));
        telemetry.checks.merge(&obs.checks);
        fold_trial_metrics(
            &mut telemetry.metrics,
            rec,
            obs.opcodes.iter_nonzero(),
            &obs.checks,
        );
    }
    finalize_campaign_metrics(&mut telemetry.metrics, &result);
    telemetry.records = per_trial.into_iter().map(|(_, rec, _)| rec).collect();
    (result, telemetry)
}

/// Builds the attributed [`TrialEvent`] for one classified trial. One
/// code path serves the buffered campaign ([`run_campaign_attributed`])
/// and the run-store replay ([`crate::live::replay`]): replay rebuilds
/// events from persisted records through this same function, so the
/// two event streams cannot drift.
pub(crate) fn build_trial_event(
    trial: u32,
    plan: &FaultPlan,
    rec: &TrialRecord,
    fault_kind: FaultKind,
    module: &Module,
    protection: Option<&ProtectionMap>,
) -> TrialEvent {
    let site = rec.injection.as_ref().map(fault_site);
    TrialEvent {
        trial,
        at_dyn: plan.at_dyn,
        fault_seed: plan.seed,
        injected: rec.injection.is_some(),
        bit: match (fault_kind, rec.injection) {
            (FaultKind::Register, Some(inj)) => Some(inj.bit),
            _ => None,
        },
        outcome: rec.outcome.label().to_string(),
        detected_by: match rec.outcome {
            Outcome::SwDetect(k) => Some(check_kind_label(k).to_string()),
            _ => None,
        },
        detect_latency: rec.detect_latency,
        dyn_insts: rec.dyn_insts,
        fidelity: rec.fidelity,
        victim_func: site.map(|s| s.func.index() as u64),
        victim_inst: site.and_then(|s| match s.kind {
            crate::coverage::SiteKind::Inst(inst) => Some(inst.index() as u64),
            _ => None,
        }),
        victim_op: site.map(|s| site_op_label(module, &s)),
        bit_band: site.map(|s| s.band.label().to_string()),
        protection: match (protection, site) {
            (Some(map), Some(s)) => Some(site_protection_label(map, &s).to_string()),
            _ => None,
        },
    }
}

/// Folds one trial's trace into the aggregated metrics registry.
/// Shared by the buffered path (iterating live observers) and replay
/// (iterating persisted `(label, count)` pairs); the registry is
/// BTreeMap-backed, so fold order cannot change its serialized form.
pub(crate) fn fold_trial_metrics<'a>(
    m: &mut MetricsRegistry,
    rec: &TrialRecord,
    ops: impl Iterator<Item = (&'a str, u64)>,
    checks: &CheckKindCounts,
) {
    for (op, n) in ops {
        m.counter(&format!("vm.ops.{op}")).add(n);
    }
    for (kind, n) in checks.iter() {
        if n > 0 {
            m.counter(&format!("checks.fired.{}", check_kind_label(kind)))
                .add(n);
        }
    }
    m.counter(&format!("outcome.{}", rec.outcome.label())).inc();
    m.histogram("vm.dyn_insts").record(rec.dyn_insts);
    if let Some(lat) = rec.detect_latency {
        let name = match rec.outcome {
            Outcome::SwDetect(_) => "latency.swdetect",
            _ => "latency.hwdetect",
        };
        m.histogram(name).record(lat);
    }
}

/// Campaign-level metrics recorded once per campaign, after the
/// per-trial fold.
pub(crate) fn finalize_campaign_metrics(m: &mut MetricsRegistry, result: &CampaignResult) {
    m.gauge("campaign.golden_dyn_insts")
        .set(result.golden_dyn_insts as f64);
    m.counter("campaign.trials_trigger_unreached")
        .add(result.trigger_unreached as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use softft::Technique;
    use softft_workloads::workload_by_name;

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 7,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_counts_sum_to_trials() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let r = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(40));
        let total: u32 = r.counts.values().sum();
        assert_eq!(total, 40);
        assert_eq!(r.trials, 40);
        assert!(r.golden_dyn_insts > 1000);
        let fracs = r.masked_frac()
            + r.swdetect_frac()
            + r.hwdetect_frac()
            + r.failure_frac()
            + r.usdc_frac();
        assert!((fracs - 1.0).abs() < 1e-9, "{fracs}");
    }

    #[test]
    fn protection_produces_swdetects() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let orig = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(60));
        let dup = run_campaign(&*p.workload, p.module(Technique::DupVal), &small_cfg(60));
        assert_eq!(orig.swdetect_frac(), 0.0, "no checks in the original");
        assert!(dup.swdetect_frac() > 0.0, "protected binary never detected");
    }

    #[test]
    fn campaign_is_deterministic() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let a = run_campaign(&*p.workload, p.module(Technique::DupOnly), &small_cfg(30));
        let b = run_campaign(&*p.workload, p.module(Technique::DupOnly), &small_cfg(30));
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.usdc_large, b.usdc_large);
    }

    #[test]
    fn usdc_split_sums() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let r = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(80));
        assert_eq!(
            r.usdc_large + r.usdc_small,
            r.counts
                .get(&Outcome::UnacceptableSdc)
                .copied()
                .unwrap_or(0)
        );
    }

    #[test]
    fn traced_campaign_matches_untraced() {
        // Tracing must never perturb results: the traced run's
        // CampaignResult (counts, USDC split, latency histograms) is
        // identical to the NoopObserver run for the same config.
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let cfg = small_cfg(30);
        let plain = run_campaign(&*p.workload, p.module(Technique::DupVal), &cfg);
        let (traced, telemetry) =
            run_campaign_traced(&*p.workload, p.module(Technique::DupVal), &cfg);
        assert_eq!(plain, traced);

        // One event per trial, in plan order.
        assert_eq!(telemetry.events.len(), 30);
        for (i, e) in telemetry.events.iter().enumerate() {
            assert_eq!(e.trial, i as u32);
            assert_eq!(e.detected_by.is_some(), e.outcome.starts_with("swdetect."));
        }
        // The trace saw real work: opcode counters and run lengths exist.
        // Terminators are split by class since the observer started
        // consuming the VM's shared OpCounts bins (br/condbr/ret, not a
        // lumped "term").
        assert!(telemetry.metrics.get("vm.ops.condbr").is_some());
        assert!(telemetry.metrics.get("vm.ops.ret").is_some());
        assert!(telemetry.metrics.get("vm.ops.term").is_none());
        assert_eq!(
            telemetry.metrics.clone().histogram("vm.dyn_insts").count(),
            30
        );
        // Event latencies agree with the aggregated histograms.
        let sw_lat: Vec<u64> = telemetry
            .events
            .iter()
            .filter(|e| e.outcome.starts_with("swdetect."))
            .filter_map(|e| e.detect_latency)
            .collect();
        assert_eq!(sw_lat.len() as u64, traced.sw_latency.count());
    }

    #[test]
    fn attribution_and_trigger_unreached_agree() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let t = Technique::DupVal;
        let cfg = small_cfg(40);
        let (result, telemetry) =
            run_campaign_attributed(&*p.workload, p.module(t), &cfg, Some(p.protection(t)));

        // The counter, the result field, and the per-event flags all
        // report the same number of never-injected trials.
        let unreached = telemetry.events.iter().filter(|e| !e.injected).count() as u32;
        assert_eq!(result.trigger_unreached, unreached);
        assert_eq!(
            telemetry
                .metrics
                .clone()
                .counter("campaign.trials_trigger_unreached")
                .get(),
            unreached as u64
        );

        // Attribution is present exactly on injected trials, and the
        // raw records align with the events in plan order.
        assert_eq!(telemetry.records.len(), telemetry.events.len());
        for (e, rec) in telemetry.events.iter().zip(&telemetry.records) {
            assert_eq!(e.injected, rec.injection.is_some());
            assert_eq!(e.victim_func.is_some(), e.injected);
            assert_eq!(e.victim_op.is_some(), e.injected);
            assert_eq!(e.bit_band.is_some(), e.injected);
            assert_eq!(e.protection.is_some(), e.injected);
        }
        assert!(
            telemetry.events.iter().any(|e| e.injected),
            "campaign must inject at least once for this test to mean anything"
        );
    }

    #[test]
    fn branch_faults_detected_by_cfcss_and_bucketed_separately() {
        use crate::coverage::build_coverage;

        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let t = Technique::DupVal;
        let mut signed = p.module(t).clone();
        softft::cfcss::insert_cfc_signatures(&mut signed);
        let mut cfg = small_cfg(60);
        cfg.fault_kind = FaultKind::BranchTarget;
        let (result, records) = run_campaign_recorded(&*p.workload, &signed, &cfg);

        // Wild branches land on blocks with a foreign signature: the
        // entry check must catch at least some of them.
        assert!(
            result.swdetect_kind_frac(CheckKind::CfcSignature) > 0.0,
            "CFCSS never fired on branch-target faults: {:?}",
            result.counts
        );

        // Coverage buckets every branch fault under the per-function
        // branch pseudo-site, never a register site.
        let cov = build_coverage("tiff2bw", t, &signed, p.protection(t), &result, &records);
        assert!(cov.branch_sites().count() > 0, "no branch sites aggregated");
        assert_eq!(cov.branch_sites().count(), cov.sites.len());
        for s in &cov.sites {
            assert_eq!(s.op, "branch");
            assert_eq!(s.protection, "control-flow");
            assert_eq!(s.band, "full");
            assert!(s.inst.is_none());
        }
        let injected: u64 = cov.sites.iter().map(|s| s.trials).sum();
        assert_eq!(injected, cov.injected);
        assert_eq!(
            cov.injected,
            (result.trials - result.trigger_unreached) as u64
        );
    }

    #[test]
    fn profiled_campaign_is_bitwise_identical_and_attributes_time() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let t = Technique::DupVal;
        let plain = run_campaign(&*p.workload, p.module(t), &small_cfg(40));
        let (profiled, prof, _) = run_campaign_profiled(&*p.workload, p.module(t), &small_cfg(40));
        assert_eq!(plain, profiled, "phase timing perturbed campaign results");

        // The timers saw the campaign happen.
        assert!(prof.decode_ns > 0, "decode phase untimed");
        assert!(prof.golden_ns > 0, "golden phase untimed");
        assert!(prof.exec_ns > 0, "exec phase untimed");
        // No snapshots in this config: those phases stay zero.
        assert_eq!(prof.checkpoint_record_ns, 0);
        assert_eq!(prof.resume_ns, 0);
        assert_eq!(prof.fastforward_ns, 0);
        // Per-outcome rows cover the canonical order and account for
        // every trial and all of exec time.
        assert_eq!(prof.per_outcome.len(), Outcome::CANONICAL.len());
        for (row, o) in prof.per_outcome.iter().zip(Outcome::CANONICAL) {
            assert_eq!(row.outcome, o);
            assert_eq!(
                row.trials as u32,
                plain.counts.get(&o).copied().unwrap_or(0)
            );
            assert!(row.watchdog_trials <= row.trials);
            assert!(row.watchdog_spin_ns <= row.exec_ns);
        }
        let row_exec: u64 = prof.per_outcome.iter().map(|r| r.exec_ns).sum();
        assert_eq!(row_exec, prof.exec_ns);
        assert!(prof.watchdog_spin_share() <= 1.0);

        // With snapshotting on, the snapshot-only phases light up and
        // results still match bit for bit.
        let mut cfg = small_cfg(40);
        cfg.snapshot_interval = 1000;
        let (snap, sprof, _) = run_campaign_profiled(&*p.workload, p.module(t), &cfg);
        assert_eq!(plain, snap);
        assert!(sprof.checkpoint_record_ns > 0, "checkpoint capture untimed");
        assert!(sprof.resume_ns > 0, "resume bookkeeping untimed");
    }

    #[test]
    fn snapshot_campaign_is_bitwise_identical_to_direct() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let t = Technique::DupVal;
        let direct = run_campaign(&*p.workload, p.module(t), &small_cfg(50));
        for interval in [500, 2000] {
            let mut cfg = small_cfg(50);
            cfg.snapshot_interval = interval;
            let (snap, stats) = run_campaign_with_stats(&*p.workload, p.module(t), &cfg);
            assert_eq!(direct, snap, "interval {interval} diverged from direct");
            assert_eq!(stats.interval, interval);
            assert!(stats.checkpoints > 0);
            assert!(stats.checkpoint_bytes > 0);
            assert!(stats.resumed_trials > 0, "no trial ever resumed");
            assert_eq!(
                stats.resumed_trials + stats.fresh_trials + stats.pruned_trials,
                50
            );
            assert!(stats.prefix_insts_skipped >= stats.resumed_trials * interval);
        }
    }

    #[test]
    fn snapshot_stats_are_zero_when_disabled() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let (result, stats) =
            run_campaign_with_stats(&*p.workload, p.module(Technique::Original), &small_cfg(20));
        assert_eq!(result.trials, 20);
        assert_eq!(stats.interval, 0);
        assert_eq!(stats.checkpoints, 0);
        assert_eq!(stats.resumed_trials, 0);
        assert_eq!(stats.fresh_trials, 20);
        assert_eq!(stats.prefix_insts_skipped, 0);
        assert!(stats.insts_executed > 0);
    }

    #[test]
    fn ordered_counts_cover_all_trials() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let r = run_campaign(&*p.workload, p.module(Technique::DupVal), &small_cfg(25));
        let ordered: Vec<(Outcome, u32)> = r.ordered_counts().collect();
        assert_eq!(ordered.len(), Outcome::CANONICAL.len());
        let total: u32 = ordered.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 25, "canonical order must cover every outcome");
    }
}
