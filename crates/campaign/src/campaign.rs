//! The statistical fault-injection loop.

use crate::outcome::{classify_trial, is_large_change, ClassifyParams, Outcome, TrialRecord};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softft_ir::{CheckKind, Module};
use softft_vm::interp::{NoopObserver, VmConfig};
use softft_vm::fault::{FaultKind, FaultPlan};
use softft_workloads::runner::run_workload;
use softft_workloads::{InputSet, Workload};
use std::collections::HashMap;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Injection trials (the paper runs 1000 per benchmark; scale down
    /// for quick runs).
    pub trials: u32,
    /// Master seed: fault sites and victims derive deterministically.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// VM configuration for trial runs.
    pub vm: VmConfig,
    /// Classification parameters.
    pub classify: ClassifyParams,
    /// Input set faults are injected on (the paper uses the test input).
    pub input: InputSet,
    /// What the injected faults corrupt (register bits by default; branch
    /// targets for the control-flow-checking extension).
    pub fault_kind: FaultKind,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 200,
            seed: 0xF00D,
            threads: 0,
            vm: VmConfig::default(),
            classify: ClassifyParams::default(),
            input: InputSet::Test,
            fault_kind: FaultKind::Register,
        }
    }
}

/// Aggregated campaign results for one (benchmark, technique) pair.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// Trials executed.
    pub trials: u32,
    /// Count per outcome class.
    pub counts: HashMap<Outcome, u32>,
    /// USDC trials whose injection made a large value change (Fig. 2).
    pub usdc_large: u32,
    /// USDC trials with a small value change.
    pub usdc_small: u32,
    /// Dynamic instructions of the fault-free run.
    pub golden_dyn_insts: u64,
}

impl CampaignResult {
    fn count(&self, o: Outcome) -> u32 {
        self.counts.get(&o).copied().unwrap_or(0)
    }

    /// Fraction of trials in the given outcome.
    pub fn frac(&self, o: Outcome) -> f64 {
        self.count(o) as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials collapsed to the Fig. 11 *Masked* bucket
    /// (masked + acceptable SDCs).
    pub fn masked_frac(&self) -> f64 {
        self.frac(Outcome::Masked) + self.frac(Outcome::AcceptableSdc)
    }

    /// Fraction of SWDetect trials (all check kinds).
    pub fn swdetect_frac(&self) -> f64 {
        self.counts
            .iter()
            .filter(|(o, _)| matches!(o, Outcome::SwDetect(_)))
            .map(|(_, c)| *c as f64)
            .sum::<f64>()
            / self.trials.max(1) as f64
    }

    /// SWDetect fraction attributable to one check kind.
    pub fn swdetect_kind_frac(&self, kind: CheckKind) -> f64 {
        self.frac(Outcome::SwDetect(kind))
    }

    /// Fraction of HWDetect trials.
    pub fn hwdetect_frac(&self) -> f64 {
        self.frac(Outcome::HwDetect)
    }

    /// Fraction of Failures.
    pub fn failure_frac(&self) -> f64 {
        self.frac(Outcome::Failure)
    }

    /// Fraction of unacceptable SDCs (the USDC column).
    pub fn usdc_frac(&self) -> f64 {
        self.frac(Outcome::UnacceptableSdc)
    }

    /// Fraction of all SDCs (acceptable + unacceptable; Fig. 13 bars).
    pub fn sdc_frac(&self) -> f64 {
        self.frac(Outcome::AcceptableSdc) + self.frac(Outcome::UnacceptableSdc)
    }

    /// Fault coverage as defined in Section V: Masked (incl. acceptable)
    /// + SWDetect + HWDetect.
    pub fn coverage(&self) -> f64 {
        self.masked_frac() + self.swdetect_frac() + self.hwdetect_frac()
    }
}

/// Runs one campaign: `trials` injections into `module` running
/// `workload` on the configured input, classified against the fault-free
/// golden output.
///
/// Deterministic in (`module`, `cfg`): trial *i* derives its fault plan
/// from `cfg.seed` and `i` regardless of thread scheduling.
///
/// # Panics
///
/// Panics if the fault-free run does not complete (a workload bug, not a
/// fault effect).
pub fn run_campaign(
    workload: &dyn Workload,
    module: &Module,
    cfg: &CampaignConfig,
) -> CampaignResult {
    // Steady-state model: checks that fire with no fault on this input
    // (profile drift between train and test) have exhausted their one
    // recovery and are suppressed — see the paper's false-positive
    // discussion and `prep::neutralize_false_positives`.
    let mut module = module.clone();
    crate::prep::neutralize_false_positives(&mut module, workload, cfg.input);
    let module = &module;
    let input = workload.input(cfg.input);
    let (golden_result, golden_out) =
        run_workload(module, &input, cfg.vm, &mut NoopObserver, None);
    assert!(
        golden_result.completed(),
        "fault-free run of {} must complete: {:?}",
        workload.name(),
        golden_result.end
    );
    let n = golden_result.dyn_insts;

    // Pre-derive all fault plans (deterministic, thread-count agnostic).
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plans: Vec<FaultPlan> = (0..cfg.trials)
        .map(|_| FaultPlan {
            at_dyn: rng.gen_range(0..n.max(1)),
            seed: rng.gen(),
            kind: cfg.fault_kind,
        })
        .collect();

    let records: Mutex<Vec<TrialRecord>> = Mutex::new(Vec::with_capacity(plans.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.min(plans.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= plans.len() {
                    break;
                }
                let (result, out) = run_workload(
                    module,
                    &input,
                    cfg.vm,
                    &mut NoopObserver,
                    Some(plans[i]),
                );
                let rec = classify_trial(workload, &golden_out, &result, &out, &cfg.classify);
                records.lock().push(rec);
            });
        }
    });

    let mut result = CampaignResult {
        trials: cfg.trials,
        golden_dyn_insts: n,
        ..CampaignResult::default()
    };
    for rec in records.into_inner() {
        *result.counts.entry(rec.outcome).or_insert(0) += 1;
        if rec.outcome == Outcome::UnacceptableSdc {
            match rec.injection {
                Some(inj) if is_large_change(&inj, &cfg.classify) => result.usdc_large += 1,
                _ => result.usdc_small += 1,
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use softft::Technique;
    use softft_workloads::workload_by_name;

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 7,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_counts_sum_to_trials() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let r = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(40));
        let total: u32 = r.counts.values().sum();
        assert_eq!(total, 40);
        assert_eq!(r.trials, 40);
        assert!(r.golden_dyn_insts > 1000);
        let fracs = r.masked_frac()
            + r.swdetect_frac()
            + r.hwdetect_frac()
            + r.failure_frac()
            + r.usdc_frac();
        assert!((fracs - 1.0).abs() < 1e-9, "{fracs}");
    }

    #[test]
    fn protection_produces_swdetects() {
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let orig = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(60));
        let dup = run_campaign(&*p.workload, p.module(Technique::DupVal), &small_cfg(60));
        assert_eq!(orig.swdetect_frac(), 0.0, "no checks in the original");
        assert!(dup.swdetect_frac() > 0.0, "protected binary never detected");
    }

    #[test]
    fn campaign_is_deterministic() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let a = run_campaign(&*p.workload, p.module(Technique::DupOnly), &small_cfg(30));
        let b = run_campaign(&*p.workload, p.module(Technique::DupOnly), &small_cfg(30));
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.usdc_large, b.usdc_large);
    }

    #[test]
    fn usdc_split_sums() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let r = run_campaign(&*p.workload, p.module(Technique::Original), &small_cfg(80));
        assert_eq!(
            r.usdc_large + r.usdc_small,
            r.counts.get(&Outcome::UnacceptableSdc).copied().unwrap_or(0)
        );
    }
}
