//! False-positive measurement (Section V): value checks firing on a
//! fault-free run of the *test* input after profiling on the *train*
//! input.

use softft_ir::Module;
use softft_telemetry::{CheckCounter, CheckKindCounts};
use softft_vm::interp::VmConfig;
use softft_workloads::runner::run_workload;
use softft_workloads::{InputSet, Workload};

/// False-positive statistics for one transformed module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FalsePositives {
    /// Check failures during the fault-free run.
    pub failures: u64,
    /// Dynamic instructions executed.
    pub insts: u64,
    /// Which check kinds fired (attribution of `failures`).
    pub by_kind: CheckKindCounts,
}

impl FalsePositives {
    /// Instructions per false positive (`None` when there were none —
    /// the best case; the paper reports an average of one per 235K
    /// instructions across benchmarks).
    pub fn insts_per_failure(&self) -> Option<u64> {
        self.insts.checked_div(self.failures)
    }
}

/// Runs `module` fault-free on `input` with checks in counting mode.
///
/// # Panics
///
/// Panics if the run does not complete (with counting checks nothing
/// should trap on a fault-free run).
pub fn measure_false_positives(
    workload: &dyn Workload,
    module: &Module,
    input: InputSet,
) -> FalsePositives {
    let cfg = VmConfig {
        checks_count_only: true,
        ..VmConfig::default()
    };
    let mut counter = CheckCounter::default();
    let (result, _) = run_workload(module, &workload.input(input), cfg, &mut counter, None);
    assert!(
        result.completed(),
        "fault-free counting run of {} failed: {:?}",
        workload.name(),
        result.end
    );
    FalsePositives {
        failures: result.check_failures,
        insts: result.dyn_insts,
        by_kind: counter.counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use softft::Technique;
    use softft_workloads::workload_by_name;

    #[test]
    fn train_input_has_no_false_positives() {
        // Checks were derived from the train input, so running the train
        // input again must not fire any (coverage is exact by
        // construction plus padding).
        let p = prepare(workload_by_name("tiff2bw").unwrap());
        let fp =
            measure_false_positives(&*p.workload, p.module(Technique::DupVal), InputSet::Train);
        assert_eq!(fp.failures, 0, "{fp:?}");
        assert!(fp.insts > 0);
        assert_eq!(fp.insts_per_failure(), None);
        assert_eq!(fp.by_kind.total(), 0);
    }

    #[test]
    fn test_input_false_positives_are_rare() {
        let p = prepare(workload_by_name("g721dec").unwrap());
        let fp = measure_false_positives(&*p.workload, p.module(Technique::DupVal), InputSet::Test);
        // The paper reports ~1 per 235K instructions; demand rarity, not
        // zero (different inputs may step slightly outside ranges).
        let rate = fp.failures as f64 / fp.insts.max(1) as f64;
        assert!(rate < 1.0 / 10_000.0, "false positive rate {rate} ({fp:?})");
        // Every counted failure is attributed to some check kind, and
        // false positives can only come from profile-derived value checks.
        assert_eq!(fp.by_kind.total(), fp.failures, "{fp:?}");
        for (kind, n) in fp.by_kind.iter() {
            assert!(n == 0 || kind.is_value_check(), "{kind:?} fired {n}x");
        }
    }

    #[test]
    fn original_module_has_no_checks_to_fire() {
        let p = prepare(workload_by_name("kmeans").unwrap());
        let fp =
            measure_false_positives(&*p.workload, p.module(Technique::Original), InputSet::Test);
        assert_eq!(fp.failures, 0);
    }
}
