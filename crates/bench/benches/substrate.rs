//! Criterion benchmarks for the substrate itself: interpreter
//! throughput, timing-model runs, pass-pipeline cost, profiling rates,
//! and end-to-end campaign trials per technique.
//!
//! These complement the `repro` binary (which regenerates the paper's
//! tables/figures): `cargo bench` answers "how fast is the
//! reproduction's own machinery", one group per subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softft::{transform, Technique, TransformConfig};
use softft_campaign::prep::prepare;
use softft_profile::{ClassifyConfig, OnlineHistogram, ProfileDb, Profiler};
use softft_vm::interp::{NoopObserver, Vm, VmConfig};
use softft_vm::timing::{CoreConfig, TimingModel};
use softft_vm::FaultPlan;
use softft_workloads::runner::run_workload;
use softft_workloads::{workload_by_name, InputSet};

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    for name in ["tiff2bw", "g721dec", "kmeans"] {
        let w = workload_by_name(name).expect("known workload");
        let module = w.build_module();
        let input = w.input(InputSet::Test);
        group.bench_with_input(BenchmarkId::new("run", name), &module, |b, m| {
            b.iter(|| {
                let (r, _) = run_workload(m, &input, VmConfig::default(), &mut NoopObserver, None);
                assert!(r.completed());
                r.dyn_insts
            })
        });
    }
    group.finish();
}

fn bench_timing_model(c: &mut Criterion) {
    let w = workload_by_name("tiff2bw").expect("known workload");
    let module = w.build_module();
    let input = w.input(InputSet::Test);
    c.bench_function("timing_model/tiff2bw", |b| {
        b.iter(|| {
            let mut t = TimingModel::new(CoreConfig::default());
            let (r, _) = run_workload(&module, &input, VmConfig::default(), &mut t, None);
            assert!(r.completed());
            t.cycles()
        })
    });
}

fn bench_transform_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    let w = workload_by_name("jpegdec").expect("known workload");
    let module = w.build_module();
    let input = w.input(InputSet::Train);
    let mut profiler = Profiler::default();
    run_workload(&module, &input, VmConfig::default(), &mut profiler, None);
    let profile = ProfileDb::from_profiler(&profiler, &ClassifyConfig::default());
    for t in [Technique::DupOnly, Technique::DupVal, Technique::FullDup] {
        group.bench_with_input(BenchmarkId::new("jpegdec", t.label()), &t, |b, &t| {
            b.iter(|| {
                let (m, stats) = transform(&module, &profile, t, &TransformConfig::default());
                assert!(stats.insts_after >= stats.insts_before);
                m.static_inst_count()
            })
        });
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.bench_function("histogram_insert_10k", |b| {
        b.iter(|| {
            let mut h = OnlineHistogram::new(OnlineHistogram::DEFAULT_BINS);
            for i in 0..10_000u64 {
                h.insert(((i * 2654435761) % 4099) as f64);
            }
            h.total()
        })
    });
    let w = workload_by_name("g721enc").expect("known workload");
    let module = w.build_module();
    let input = w.input(InputSet::Train);
    group.bench_function("profiled_run/g721enc", |b| {
        b.iter(|| {
            let mut p = Profiler::default();
            let (r, _) = run_workload(&module, &input, VmConfig::default(), &mut p, None);
            assert!(r.completed());
            p.stats().len()
        })
    });
    group.finish();
}

fn bench_injection_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection_trial");
    let p = prepare(workload_by_name("tiff2bw").expect("known workload"));
    let input = p.workload.input(InputSet::Test);
    for t in [Technique::Original, Technique::DupVal] {
        let module = p.module(t).clone();
        group.bench_with_input(BenchmarkId::new("tiff2bw", t.label()), &module, |b, m| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let (r, _) = run_workload(
                    m,
                    &input,
                    VmConfig::default(),
                    &mut NoopObserver,
                    Some(FaultPlan::register((seed * 9973) % 100_000, seed)),
                );
                r.dyn_insts
            })
        });
    }
    group.finish();
}

fn bench_full_vm_construction(c: &mut Criterion) {
    let w = workload_by_name("h264dec").expect("known workload");
    let module = w.build_module();
    c.bench_function("vm_construction/h264dec", |b| {
        b.iter(|| Vm::new(&module, VmConfig::default()).mem.len())
    });
    c.bench_function("module_build/h264dec", |b| {
        b.iter(|| w.build_module().static_inst_count())
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_timing_model,
    bench_transform_pipeline,
    bench_profiling,
    bench_injection_trial,
    bench_full_vm_construction
);
criterion_main!(benches);
