//! Self-contained HTML pages: the coverage heatmap and the campaign
//! observatory (`repro watch --html`) status page.
//!
//! One single file each, no external assets, scripts, or stylesheets
//! beyond an inline `<style>` block — they must open from a CI artifact
//! or an `file://` URL with no network. Per benchmark × technique the
//! heatmap renders a site × bit-band grid; each cell is coloured by the
//! USDC rate of that `(site, band)` bucket, so residual-corruption hot
//! spots and the sites a technique closes stand out at a glance. The
//! watch page prepends a per-shard progress table (done/total,
//! throughput, outcome mix, watchdog-spin share) and reuses the same
//! grids for the coverage folded so far.

use softft::Technique;
use softft_campaign::coverage::{CoverageMap, SiteReport};
use std::path::Path;

const BANDS: [&str; 3] = ["lo", "hi", "full"];

/// Minimal HTML escaping for text nodes and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// White→red background for a USDC rate in `[0, 1]`.
fn cell_color(usdc_rate: f64) -> String {
    let level = (255.0 - usdc_rate.clamp(0.0, 1.0) * 255.0).round() as u8;
    format!("#ff{level:02x}{level:02x}")
}

/// CSS class for a protection label (colour chip in the site column).
fn prot_class(label: &str) -> &'static str {
    match label {
        "duplicated" => "p-dup",
        "value-checked" => "p-val",
        "control-flow" => "p-cfc",
        _ => "p-none",
    }
}

/// One site row key: everything identifying a site except the band.
fn site_key(s: &SiteReport) -> (u64, Option<u64>, &str, &str) {
    (s.func_id, s.inst, s.op.as_str(), s.protection.as_str())
}

fn grid(out: &mut String, bench: &str, tech: Technique, cov: &CoverageMap) {
    out.push_str(&format!(
        "<h2>{} &mdash; {}</h2>\n<p class=\"meta\">{} trials, {} injected, {} trigger-unreached, {} gap sites</p>\n",
        esc(bench),
        esc(tech.label()),
        cov.trials,
        cov.injected,
        cov.trigger_unreached,
        cov.gap_site_count(),
    ));
    // Unique site rows in the map's deterministic order (sites are
    // sorted by function, site kind, band — dedup keeps first).
    let mut keys: Vec<(u64, Option<u64>, &str, &str)> = Vec::new();
    for s in &cov.sites {
        let k = site_key(s);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    out.push_str(
        "<table>\n<tr><th>site</th><th>op</th><th>protection</th>\
         <th>lo</th><th>hi</th><th>full</th></tr>\n",
    );
    for (func_id, inst, op, protection) in keys {
        let site_label = match inst {
            Some(i) => format!("f{func_id}/i{i}"),
            None => format!("f{func_id}/{op}"),
        };
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td><span class=\"chip {}\">{}</span></td>",
            esc(&site_label),
            esc(op),
            prot_class(protection),
            esc(protection),
        ));
        for band in BANDS {
            let cell = cov
                .sites
                .iter()
                .find(|s| site_key(s) == (func_id, inst, op, protection) && s.band == band);
            match cell {
                Some(s) => out.push_str(&format!(
                    "<td class=\"c\" style=\"background:{}\" \
                     title=\"{} trials: {} usdc, {} detected\">{:.0}%</td>",
                    cell_color(s.usdc_rate),
                    s.trials,
                    s.unacceptable_sdc,
                    s.hw_detect + s.sw_detect,
                    s.usdc_rate * 100.0,
                )),
                None => out.push_str("<td class=\"c empty\"></td>"),
            }
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

/// Renders the full heatmap document for the given coverage maps.
pub fn render_heatmap(rows: &[(String, Vec<(Technique, CoverageMap)>)]) -> String {
    let mut out = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>soft-ft coverage heatmap</title>\n<style>\n\
         body{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222}\n\
         h1{font-size:1.4em}h2{font-size:1.1em;margin:1.2em 0 0.2em}\n\
         .meta{color:#666;margin:0 0 0.4em;font-size:0.9em}\n\
         table{border-collapse:collapse;margin-bottom:1em}\n\
         th,td{border:1px solid #ccc;padding:2px 8px;text-align:left;font-size:0.85em}\n\
         td.c{text-align:right;min-width:3em}td.empty{background:#f4f4f4}\n\
         .chip{padding:0 6px;border-radius:8px;font-size:0.85em}\n\
         .p-dup{background:#cdeccd}.p-val{background:#cfe2f8}\n\
         .p-none{background:#fbd9b5}.p-cfc{background:#e4d5f2}\n\
         </style>\n</head>\n<body>\n\
         <h1>Per-fault-site coverage heatmap</h1>\n\
         <p class=\"meta\">Cells are (site &times; flipped-bit band) buckets coloured by the\n\
         fraction of injections that ended as unacceptable SDCs (white = 0%, red = 100%).</p>\n",
    );
    for (bench, by_t) in rows {
        for (t, cov) in by_t {
            grid(&mut out, bench, *t, cov);
        }
    }
    out.push_str("</body>\n</html>\n");
    out
}

/// Writes the heatmap to `path` as one self-contained file.
pub fn write_heatmap(
    path: &Path,
    rows: &[(String, Vec<(Technique, CoverageMap)>)],
) -> std::io::Result<()> {
    write_page(path, render_heatmap(rows))
}

/// One per-shard status row of the `repro watch --html` page.
pub struct WatchRow {
    /// Shard label (`"segm/dup-val"`).
    pub label: String,
    /// Trials persisted so far.
    pub done: u64,
    /// Planned trials.
    pub total: u64,
    /// Observed appending throughput, trials per second.
    pub rate: f64,
    /// True once every planned trial is present.
    pub complete: bool,
    /// Fraction of live execution time spent in watchdog-spin trials.
    pub watchdog_share: f64,
    /// Nonzero outcome counts in canonical order.
    pub outcomes: Vec<(String, u64)>,
}

/// Renders the observatory page: a progress table over every shard,
/// then the per-shard coverage grids folded from the trials persisted
/// so far. Self-contained like the heatmap (same constraints).
pub fn render_watch(
    store: &str,
    rows: &[WatchRow],
    grids: &[(String, Vec<(Technique, CoverageMap)>)],
) -> String {
    let mut out = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>soft-ft campaign observatory</title>\n<style>\n\
         body{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222}\n\
         h1{font-size:1.4em}h2{font-size:1.1em;margin:1.2em 0 0.2em}\n\
         .meta{color:#666;margin:0 0 0.4em;font-size:0.9em}\n\
         table{border-collapse:collapse;margin-bottom:1em}\n\
         th,td{border:1px solid #ccc;padding:2px 8px;text-align:left;font-size:0.85em}\n\
         td.c{text-align:right;min-width:3em}td.empty{background:#f4f4f4}\n\
         td.n{text-align:right}\n\
         .chip{padding:0 6px;border-radius:8px;font-size:0.85em}\n\
         .p-dup{background:#cdeccd}.p-val{background:#cfe2f8}\n\
         .p-none{background:#fbd9b5}.p-cfc{background:#e4d5f2}\n\
         .done{background:#cdeccd}.running{background:#fdf3cd}\n\
         </style>\n</head>\n<body>\n\
         <h1>Campaign observatory</h1>\n",
    );
    out.push_str(&format!(
        "<p class=\"meta\">run store: {}</p>\n",
        esc(store)
    ));
    out.push_str(
        "<table>\n<tr><th>shard</th><th>done</th><th>total</th>\
         <th>trials/s</th><th>watchdog-spin</th><th>status</th><th>outcomes</th></tr>\n",
    );
    for r in rows {
        let mix = r
            .outcomes
            .iter()
            .map(|(label, n)| format!("{} {}", esc(label), n))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
             <td class=\"n\">{:.1}</td><td class=\"n\">{:.1}%</td>\
             <td><span class=\"chip {}\">{}</span></td><td>{}</td></tr>\n",
            esc(&r.label),
            r.done,
            r.total,
            r.rate,
            r.watchdog_share * 100.0,
            if r.complete { "done" } else { "running" },
            if r.complete { "complete" } else { "running" },
            mix,
        ));
    }
    out.push_str("</table>\n");
    for (bench, by_t) in grids {
        for (t, cov) in by_t {
            grid(&mut out, bench, *t, cov);
        }
    }
    out.push_str("</body>\n</html>\n");
    out
}

/// Writes the observatory page to `path` as one self-contained file.
pub fn write_watch(
    path: &Path,
    store: &str,
    rows: &[WatchRow],
    grids: &[(String, Vec<(Technique, CoverageMap)>)],
) -> std::io::Result<()> {
    write_page(path, render_watch(store, rows, grids))
}

fn write_page(path: &Path, html: String) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, html)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_map() -> CoverageMap {
        CoverageMap {
            schema_version: 1,
            benchmark: "demo".to_string(),
            technique: Technique::DupVal.label().to_string(),
            trials: 20,
            injected: 18,
            trigger_unreached: 2,
            sites: vec![
                SiteReport {
                    func: "main".to_string(),
                    func_id: 0,
                    inst: Some(3),
                    op: "mul".to_string(),
                    protection: "unprotected".to_string(),
                    band: "lo".to_string(),
                    trials: 9,
                    masked: 6,
                    acceptable_sdc: 0,
                    unacceptable_sdc: 3,
                    hw_detect: 0,
                    sw_detect: 0,
                    failure: 0,
                    usdc_rate: 3.0 / 9.0,
                    detect_rate: 0.0,
                    covered_by: None,
                    checks: Vec::new(),
                    latency_p50: None,
                    latency_p90: None,
                    latency_p99: None,
                },
                SiteReport {
                    func: "main".to_string(),
                    func_id: 0,
                    inst: Some(3),
                    op: "mul".to_string(),
                    protection: "unprotected".to_string(),
                    band: "hi".to_string(),
                    trials: 9,
                    masked: 9,
                    acceptable_sdc: 0,
                    unacceptable_sdc: 0,
                    hw_detect: 0,
                    sw_detect: 0,
                    failure: 0,
                    usdc_rate: 0.0,
                    detect_rate: 0.0,
                    covered_by: None,
                    checks: Vec::new(),
                    latency_p50: None,
                    latency_p90: None,
                    latency_p99: None,
                },
            ],
        }
    }

    #[test]
    fn heatmap_is_single_self_contained_document() {
        let rows = vec![("demo".to_string(), vec![(Technique::DupVal, tiny_map())])];
        let html = render_heatmap(&rows);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // No external references of any kind.
        for banned in ["http://", "https://", "<script", "<link", "src="] {
            assert!(!html.contains(banned), "found {banned}");
        }
        // Both bands of the one site render; the gap cell is tinted.
        assert!(html.contains("f0/i3"));
        assert!(html.contains(&cell_color(3.0 / 9.0)));
        assert!(html.contains("demo"));
        // Deterministic.
        assert_eq!(html, render_heatmap(&rows));
    }

    #[test]
    fn watch_page_is_single_self_contained_document() {
        let rows = vec![WatchRow {
            label: "demo/dup-val".to_string(),
            done: 120,
            total: 200,
            rate: 45.3,
            complete: false,
            watchdog_share: 0.123,
            outcomes: vec![
                ("masked".to_string(), 80),
                ("swdetect.dup-mismatch".to_string(), 40),
            ],
        }];
        let grids = vec![("demo".to_string(), vec![(Technique::DupVal, tiny_map())])];
        let html = render_watch("runs/demo", &rows, &grids);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        for banned in ["http://", "https://", "<script", "<link", "src="] {
            assert!(!html.contains(banned), "found {banned}");
        }
        // Status table and the reused coverage grid both render.
        assert!(html.contains("demo/dup-val"));
        assert!(html.contains("running"));
        assert!(html.contains("f0/i3"));
        assert_eq!(html, render_watch("runs/demo", &rows, &grids));
    }

    #[test]
    fn colors_span_white_to_red() {
        assert_eq!(cell_color(0.0), "#ffffff");
        assert_eq!(cell_color(1.0), "#ff0000");
        assert_eq!(cell_color(0.5), "#ff8080");
    }

    #[test]
    fn escaping_covers_html_metacharacters() {
        assert_eq!(esc("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
    }
}
