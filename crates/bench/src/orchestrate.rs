//! Orchestration for the `repro` binary: runs campaigns / timing /
//! static analyses across benchmarks and feeds the report renderers.

use softft::Technique;
use softft_campaign::campaign::{
    run_campaign, run_campaign_attributed, run_campaign_recorded, run_campaign_with_stats,
    CampaignConfig, CampaignResult, CampaignTelemetry,
};
use softft_campaign::coverage::{build_coverage, CoverageAccum, CoverageMap};
use softft_campaign::crossval::cross_validate;
use softft_campaign::falsepos::measure_false_positives;
use softft_campaign::live::{
    campaign_config_from_manifest, fault_kind_label, record_from_json, replay,
    run_campaign_to_store, store_manifest,
};
use softft_campaign::outcome::Outcome;
use softft_campaign::perf::all_overheads;
use softft_campaign::prep::{prepare, PreparedBenchmark};
use softft_campaign::report;
use softft_campaign::snapshot::SnapshotStats;
use softft_fleet::{run_fleet_campaign, run_worker, FleetConfig, WorkerOpts};
use softft_telemetry::wire::FrameDecoder;
use softft_telemetry::{
    JsonValue, Logger, RunManifest, RunStore, ShardMeta, ShardTail, StoreManifest, Verbosity,
    TRIAL_SCHEMA_VERSION,
};
use softft_workloads::{all_workloads, workload_by_name, InputSet};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which exhibit to regenerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exhibit {
    /// Table I: benchmark registry.
    Table1,
    /// Table II: core configuration.
    Table2,
    /// Fig. 1: example jpegdec injections (none / acceptable / USDC).
    Fig1,
    /// Fig. 2: SDC breakdown of unmodified applications.
    Fig2,
    /// Fig. 6: check-flavour census.
    Fig6,
    /// Fig. 10: static transformation statistics.
    Fig10,
    /// Fig. 11: fault classification per technique.
    Fig11,
    /// Fig. 12: performance overheads.
    Fig12,
    /// Fig. 13: SDC split per technique.
    Fig13,
    /// Detection attribution by mechanism.
    Detect,
    /// Detection-latency percentiles per technique.
    Latency,
    /// False positives per benchmark.
    FalsePos,
    /// Cross-validation (train/test swap).
    CrossVal,
    /// Ablation of Optimizations 1 and 2 (static cost + runtime overhead).
    Ablate,
    /// Branch-target faults with/without CFCSS signatures (the companion
    /// mechanism the paper's fault-model section defers to).
    Cfc,
    /// Recovery-cost model (Section IV-D economics).
    Recovery,
    /// Per-fault-site coverage maps and the protection-gap report.
    Coverage,
    /// Campaign performance bench: direct vs snapshot-resume wall clock,
    /// with a bitwise-equivalence check and a `BENCH_campaign.json`
    /// artifact. Not part of `all` (timing-noisy; run explicitly).
    PerfBench,
    /// Interpreter throughput bench: tree-walking reference vs the
    /// pre-decoded engine on golden (fault-free) runs, with a bitwise
    /// result/output equivalence check and a `BENCH_interp.json`
    /// artifact. Not part of `all` (timing-noisy; run explicitly).
    InterpBench,
    /// Execution profiler: per-opcode/digram heat with estimated
    /// fused-dispatch savings, campaign phase-time attribution
    /// (including the watchdog-spin share), and a profiling-on/off
    /// bitwise-equivalence check. Writes `BENCH_profile.json` plus a
    /// flamegraph-compatible `.folded` sibling. Not part of `all`
    /// (timing-noisy; run explicitly).
    Profile,
    /// Persistent streaming campaign over an append-only run store:
    /// `--store DIR` creates (or continues) one, `--resume DIR`
    /// continues one using the config recorded in its manifest,
    /// `--trial-cap N` bounds this invocation's appends (interrupt
    /// simulation / budgeting), and `--verify` re-runs the buffered
    /// campaigns and prints the replay-equivalence verdict. Not part
    /// of `all` (stateful; run explicitly).
    Campaign,
    /// Campaign observatory: renders a run store's live (or archived)
    /// status — per-shard progress, throughput, ETA, outcome mix,
    /// watchdog-spin share, top protection gaps — as text or JSONL
    /// (`--format`), optionally following a live store (`--follow`)
    /// and writing a self-contained HTML page (`--html`). With
    /// `--connect ADDR` it renders a fleet coordinator's observatory
    /// socket instead of store files. Not part of `all`.
    Watch,
    /// Fleet campaign: splits each shard's fault plan across a
    /// work-stealing pool of workers (`--workers N`, in-process by
    /// default; `--processes` spawns `repro fleet worker` children)
    /// appending to one shared run store — results bitwise identical
    /// to the single-process `campaign` exhibit. `--serve ADDR`
    /// exposes the live observatory socket for `watch --connect`;
    /// `--verify` replays the store afterwards. `repro fleet worker`
    /// (internal) is the child-process entry point. Not part of `all`.
    Fleet,
    /// Fleet scaling bench: runs the same fleet campaign at 1/2/4
    /// workers, reports trials/s and scaling efficiency with steal and
    /// reclaim counts, checks bitwise equivalence against the buffered
    /// single-process campaign, and writes `BENCH_fleet.json`
    /// (`--bench-out`) with host-adaptive scaling floors. Not part of
    /// `all` (timing-noisy; run explicitly).
    FleetBench,
    /// Everything, in paper order.
    All,
}

/// Every exhibit subcommand name, paired with its variant — the single
/// source for [`Exhibit::parse`], the `repro` usage string, and the
/// `repro` doc comment (a test fails if any of them drift).
pub const EXHIBITS: [(&str, Exhibit); 25] = [
    ("table1", Exhibit::Table1),
    ("table2", Exhibit::Table2),
    ("fig1", Exhibit::Fig1),
    ("fig2", Exhibit::Fig2),
    ("fig6", Exhibit::Fig6),
    ("fig10", Exhibit::Fig10),
    ("fig11", Exhibit::Fig11),
    ("fig12", Exhibit::Fig12),
    ("fig13", Exhibit::Fig13),
    ("detect", Exhibit::Detect),
    ("latency", Exhibit::Latency),
    ("falsepos", Exhibit::FalsePos),
    ("crossval", Exhibit::CrossVal),
    ("ablate", Exhibit::Ablate),
    ("cfc", Exhibit::Cfc),
    ("recovery", Exhibit::Recovery),
    ("coverage", Exhibit::Coverage),
    ("perfbench", Exhibit::PerfBench),
    ("interpbench", Exhibit::InterpBench),
    ("profile", Exhibit::Profile),
    ("campaign", Exhibit::Campaign),
    ("watch", Exhibit::Watch),
    ("fleet", Exhibit::Fleet),
    ("fleetbench", Exhibit::FleetBench),
    ("all", Exhibit::All),
];

impl Exhibit {
    /// Parses a subcommand name (see [`EXHIBITS`]).
    pub fn parse(s: &str) -> Option<Exhibit> {
        EXHIBITS.iter().find(|(n, _)| *n == s).map(|&(_, e)| e)
    }

    /// All subcommand names, space-separated — the `exhibits:` line of
    /// the usage string.
    pub fn names_joined() -> String {
        EXHIBITS
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Reproduction settings.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Injection trials per (benchmark, technique). The paper uses 1000;
    /// the default keeps a full `repro all` run to a few minutes.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
    /// Benchmarks to include (empty = all thirteen).
    pub benchmarks: Vec<String>,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Stderr chatter level (`-v` / `-q`).
    pub verbosity: Verbosity,
    /// When set, every campaign is traced and writes
    /// `<bench>.<technique>.{trials.jsonl,manifest.json,metrics.json}`
    /// into this directory. `None` runs campaigns untraced (the
    /// zero-cost default).
    pub telemetry: Option<PathBuf>,
    /// When set, `repro coverage` additionally writes a self-contained
    /// HTML heatmap (site × bit-band grids coloured by USDC rate) to
    /// this path. Ignored by other exhibits.
    pub html: Option<PathBuf>,
    /// Golden-run checkpoint spacing in dynamic instructions for
    /// campaigns (`--snapshot-interval N|auto`). `0` disables snapshots;
    /// `auto` ([`CampaignConfig::SNAPSHOT_AUTO`]) derives the interval
    /// from observed convergence latencies. For `repro perfbench` and
    /// `repro profile`, `0` also means auto; other exhibits take the
    /// value as-is. Results are bitwise identical regardless.
    pub snapshot_interval: u64,
    /// Divergence-bounded execution (`--no-spin-proof` clears): prove
    /// infinite loops at convergence boundaries and synthesize the
    /// watchdog record instead of spinning to the bound. Results are
    /// bitwise identical either way.
    pub spin_proof: bool,
    /// Static fault-space pruning (`--no-prune` clears): skip trials
    /// whose resolved flip is provably dead or masked, synthesizing the
    /// golden record. Results are bitwise identical either way.
    pub prune: bool,
    /// Where `repro perfbench` writes its JSON artifact
    /// (`--bench-out`; default `BENCH_campaign.json`).
    pub bench_out: Option<PathBuf>,
    /// Run-store directory for `repro campaign --store` (create or
    /// continue) and `repro watch` (a bare `DIR` argument also lands
    /// here).
    pub store: Option<PathBuf>,
    /// Run-store directory for `repro campaign --resume`: must exist;
    /// the campaign config comes from its manifest, not the command
    /// line.
    pub resume: Option<PathBuf>,
    /// Upper bound on trials this `repro campaign` invocation appends
    /// across all shards (`--trial-cap`); `None` runs to completion.
    pub trial_cap: Option<u32>,
    /// `repro watch --follow`: keep tailing a live store, printing a
    /// status frame to stderr each poll, until every shard completes.
    pub follow: bool,
    /// `repro campaign --verify`: after running/resuming, replay the
    /// store and compare against fresh buffered campaigns, printing a
    /// `replay_equivalent: true|false` verdict line (CI greps it).
    pub verify: bool,
    /// `repro watch --format`: `"text"` (human) or `"jsonl"` (one
    /// object per shard per frame).
    pub watch_format: String,
    /// `repro interpbench --engine`: execution tiers to compare, by
    /// label (`tree`, `decoded`, `fused`). Empty = all three.
    pub engines: Vec<String>,
    /// `repro perfbench --floor`: minimum acceptable `min_speedup`;
    /// `floor_ok` in the report and JSON artifact reflects it. The
    /// default 1.0 only asserts "scheduling never loses"; CI passes a
    /// stricter value.
    pub floor: f64,
    /// `repro fleet --workers`: worker count (pools or processes).
    pub workers: usize,
    /// `repro fleet --worker-threads`: threads inside each worker's
    /// shard engine.
    pub worker_threads: usize,
    /// `repro fleet --processes`: spawn `repro fleet worker` OS
    /// processes instead of in-process pools.
    pub processes: bool,
    /// `repro fleet --serve`: bind the live observatory socket on this
    /// address (e.g. `127.0.0.1:7070`) for `watch --connect`.
    pub serve: Option<String>,
    /// `repro watch --connect`: render a fleet coordinator's
    /// observatory socket instead of reading store files.
    pub connect: Option<String>,
    /// `repro fleet --heartbeat-ms`: process-mode liveness interval
    /// (a worker silent for three intervals is reclaimed).
    pub heartbeat_ms: u64,
    /// `repro fleet --fail-after W:N[,W:N..]` (coordinator) or
    /// `--fail-after N` (worker, stored as worker 0): make worker `W`
    /// exit abruptly after `N` trials — the reclaim-path test knob.
    pub fail_after: Vec<(usize, u64)>,
    /// True when invoked as `repro fleet worker` (internal child-
    /// process mode; serves assignments over stdio).
    pub fleet_worker: bool,
    /// `repro fleet worker --label`: the shard this worker serves.
    pub label: Option<String>,
    /// `repro fleet worker --worker-id`: the worker's index (selects
    /// its append-only store file).
    pub worker_id: usize,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            trials: 200,
            seed: 0x5EED,
            benchmarks: Vec::new(),
            threads: 0,
            verbosity: Verbosity::default(),
            telemetry: None,
            html: None,
            snapshot_interval: 0,
            spin_proof: true,
            prune: true,
            bench_out: None,
            store: None,
            resume: None,
            trial_cap: None,
            follow: false,
            verify: false,
            watch_format: "text".to_string(),
            engines: Vec::new(),
            floor: 1.0,
            workers: 2,
            worker_threads: 1,
            processes: false,
            serve: None,
            connect: None,
            heartbeat_ms: 1000,
            fail_after: Vec::new(),
            fleet_worker: false,
            label: None,
            worker_id: 0,
        }
    }
}

impl ReproConfig {
    fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            trials: self.trials,
            seed: self.seed,
            threads: self.threads,
            snapshot_interval: self.snapshot_interval,
            spin_proof: self.spin_proof,
            prune: self.prune,
            ..CampaignConfig::default()
        }
    }

    fn selected(&self) -> Vec<PreparedBenchmark> {
        all_workloads()
            .into_iter()
            .filter(|w| self.benchmarks.is_empty() || self.benchmarks.iter().any(|b| b == w.name()))
            .map(prepare)
            .collect()
    }
}

/// Runs one exhibit, returning its textual report.
pub fn run_exhibit(ex: Exhibit, cfg: &ReproConfig) -> String {
    match ex {
        Exhibit::Table1 => report::render_table1(&all_workloads()),
        Exhibit::Table2 => report::render_table2(),
        Exhibit::Fig1 => fig1(cfg),
        Exhibit::Fig2 => fig2(cfg),
        Exhibit::Fig6 => static_report(cfg, report::render_fig6),
        Exhibit::Fig10 => static_report(cfg, report::render_fig10),
        Exhibit::Fig11 => fig11_13(cfg, true),
        Exhibit::Fig12 => fig12(cfg),
        Exhibit::Fig13 => fig11_13(cfg, false),
        Exhibit::Detect => detect(cfg),
        Exhibit::Latency => latency(cfg),
        Exhibit::FalsePos => falsepos(cfg),
        Exhibit::CrossVal => crossval(cfg),
        Exhibit::Ablate => ablate(cfg),
        Exhibit::Cfc => cfc(cfg),
        Exhibit::Recovery => recovery(cfg),
        Exhibit::Coverage => coverage(cfg),
        Exhibit::PerfBench => perfbench(cfg),
        Exhibit::InterpBench => interpbench(cfg),
        Exhibit::Profile => profile(cfg),
        Exhibit::Campaign => campaign(cfg),
        Exhibit::Watch => watch(cfg),
        Exhibit::Fleet => fleet(cfg),
        Exhibit::FleetBench => fleetbench(cfg),
        Exhibit::All => {
            let mut out = String::new();
            for ex in [
                Exhibit::Table1,
                Exhibit::Table2,
                Exhibit::Fig1,
                Exhibit::Fig2,
                Exhibit::Fig6,
                Exhibit::Fig10,
                Exhibit::Fig11,
                Exhibit::Fig12,
                Exhibit::Fig13,
                Exhibit::Detect,
                Exhibit::Latency,
                Exhibit::FalsePos,
                Exhibit::CrossVal,
                Exhibit::Ablate,
                Exhibit::Cfc,
                Exhibit::Recovery,
                Exhibit::Coverage,
            ] {
                out.push_str(&run_exhibit(ex, cfg));
                out.push('\n');
            }
            out
        }
    }
}

/// File-name slug for a technique (lower-case, no spaces).
fn tech_slug(t: Technique) -> &'static str {
    t.slug()
}

/// Runs one campaign through the configured observability: a progress
/// line at `-v`, and — when `--telemetry <dir>` is set — a traced run
/// that writes per-trial JSONL, a run manifest, and aggregated metrics
/// for this (benchmark, technique) pair. Without telemetry this is
/// exactly [`run_campaign`] (the `NoopObserver` fast path).
fn campaign_run(
    cfg: &ReproConfig,
    ccfg: &CampaignConfig,
    p: &PreparedBenchmark,
    t: Technique,
) -> CampaignResult {
    let log = Logger::new(cfg.verbosity);
    let name = p.workload.name();
    log.debug(format!(
        "[repro] campaign: {name} x {} ({} trials, {} faults)",
        t.label(),
        ccfg.trials,
        fault_kind_label(ccfg.fault_kind)
    ));
    let result = match &cfg.telemetry {
        None => run_campaign(&*p.workload, p.module(t), ccfg),
        Some(dir) => {
            let start = Instant::now();
            let (result, telemetry) =
                run_campaign_attributed(&*p.workload, p.module(t), ccfg, Some(p.protection(t)));
            let wall_ms = start.elapsed().as_millis() as u64;
            let cov = build_coverage(
                name,
                t,
                p.module(t),
                p.protection(t),
                &result,
                &telemetry.records,
            );
            if let Err(e) = write_telemetry(dir, name, t, ccfg, &result, &telemetry, &cov, wall_ms)
            {
                // Telemetry is a side channel: report the failure, keep the run.
                log.error(format!(
                    "[repro] failed to write telemetry for {name}.{}: {e}",
                    tech_slug(t)
                ));
            }
            result
        }
    };
    if log.is_verbose() {
        log.debug(report::render_outcome_counts(&result));
        log.debug(format!(
            "  {:<24} {:>6}",
            "trigger-unreached", result.trigger_unreached
        ));
    }
    result
}

/// Writes the four telemetry artifacts for one campaign into `dir`:
/// trial JSONL, run manifest, aggregated metrics, and the per-fault-site
/// coverage map.
#[allow(clippy::too_many_arguments)]
fn write_telemetry(
    dir: &Path,
    bench: &str,
    t: Technique,
    ccfg: &CampaignConfig,
    result: &CampaignResult,
    telemetry: &CampaignTelemetry,
    cov: &CoverageMap,
    wall_ms: u64,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("{bench}.{}", tech_slug(t));
    let io_err = |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e);

    let mut jsonl = String::new();
    for e in &telemetry.events {
        jsonl.push_str(&e.to_jsonl().map_err(io_err)?);
        jsonl.push('\n');
    }
    std::fs::write(dir.join(format!("{stem}.trials.jsonl")), jsonl)?;

    let manifest = RunManifest {
        schema_version: TRIAL_SCHEMA_VERSION,
        benchmark: bench.to_string(),
        technique: t.label().to_string(),
        fault_kind: fault_kind_label(ccfg.fault_kind).to_string(),
        trials: ccfg.trials,
        master_seed: ccfg.seed,
        threads: ccfg.threads,
        golden_dyn_insts: result.golden_dyn_insts,
        wall_ms,
    };
    std::fs::write(
        dir.join(format!("{stem}.manifest.json")),
        manifest.to_json().map_err(io_err)?,
    )?;

    std::fs::write(
        dir.join(format!("{stem}.metrics.json")),
        telemetry.metrics.to_json(),
    )?;

    std::fs::write(
        dir.join(format!("{stem}.coverage.json")),
        cov.to_json().map_err(io_err)?,
    )?;
    Ok(())
}

/// Runs one campaign keeping per-trial records and builds its coverage
/// map; with `--telemetry` the full attributed artifact set is written
/// too.
fn coverage_run(
    cfg: &ReproConfig,
    ccfg: &CampaignConfig,
    p: &PreparedBenchmark,
    t: Technique,
) -> CoverageMap {
    let log = Logger::new(cfg.verbosity);
    let name = p.workload.name();
    match &cfg.telemetry {
        None => {
            log.debug(format!(
                "[repro] coverage: {name} x {} ({} trials)",
                t.label(),
                ccfg.trials
            ));
            let (result, records) = run_campaign_recorded(&*p.workload, p.module(t), ccfg);
            build_coverage(name, t, p.module(t), p.protection(t), &result, &records)
        }
        Some(dir) => {
            log.debug(format!(
                "[repro] coverage (traced): {name} x {} ({} trials)",
                t.label(),
                ccfg.trials
            ));
            let start = Instant::now();
            let (result, telemetry) =
                run_campaign_attributed(&*p.workload, p.module(t), ccfg, Some(p.protection(t)));
            let wall_ms = start.elapsed().as_millis() as u64;
            let cov = build_coverage(
                name,
                t,
                p.module(t),
                p.protection(t),
                &result,
                &telemetry.records,
            );
            if let Err(e) = write_telemetry(dir, name, t, ccfg, &result, &telemetry, &cov, wall_ms)
            {
                log.error(format!(
                    "[repro] failed to write telemetry for {name}.{}: {e}",
                    tech_slug(t)
                ));
            }
            cov
        }
    }
}

/// The `coverage` exhibit: protection-gap report over the two selective
/// techniques, optional JSON artifacts via `--telemetry`, optional HTML
/// heatmap via `--html`.
fn coverage(cfg: &ReproConfig) -> String {
    let ccfg = cfg.campaign_config();
    let log = Logger::new(cfg.verbosity);
    let rows: Vec<(String, Vec<(Technique, CoverageMap)>)> = cfg
        .selected()
        .iter()
        .map(|p| {
            let by_t: Vec<(Technique, CoverageMap)> = [Technique::DupOnly, Technique::DupVal]
                .into_iter()
                .map(|t| (t, coverage_run(cfg, &ccfg, p, t)))
                .collect();
            (p.workload.name().to_string(), by_t)
        })
        .collect();
    if let Some(path) = &cfg.html {
        match crate::html::write_heatmap(path, &rows) {
            Ok(()) => log.info(format!(
                "[repro] coverage heatmap written to {}",
                path.display()
            )),
            Err(e) => log.error(format!(
                "[repro] failed to write coverage heatmap {}: {e}",
                path.display()
            )),
        }
    }
    report::render_coverage(&rows, 10)
}

/// One timed campaign leg of the perf bench.
struct BenchLeg {
    wall_ms: f64,
    result: CampaignResult,
    stats: SnapshotStats,
}

fn bench_leg(p: &PreparedBenchmark, t: Technique, ccfg: &CampaignConfig) -> BenchLeg {
    let start = Instant::now();
    let (result, stats) = run_campaign_with_stats(&*p.workload, p.module(t), ccfg);
    BenchLeg {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        result,
        stats,
    }
}

/// Throughput helpers tolerant of sub-millisecond legs.
fn per_sec(count: u64, wall_ms: f64) -> f64 {
    count as f64 / (wall_ms / 1e3).max(1e-9)
}

/// The `perfbench` exhibit: for each selected benchmark, runs the same
/// campaign twice — scheduling optimizations off (direct), then
/// snapshots + spin proof + static pruning on — and reports the
/// wall-clock speedup, the chosen (adaptive) checkpoint interval and
/// byte footprint, the per-path trial breakdown (executed /
/// converged-early / spin-proved / statically-pruned with wall time per
/// path), and whether the two results were bitwise identical. Writes
/// `BENCH_campaign.json` (`--bench-out`, schema v2) so CI can track
/// regressions, fail on divergence, and enforce the speedup floor.
///
/// Defaults to the `jpegenc` benchmark (mid-size golden run, ~527K
/// dynamic instructions) when no `--benchmarks` filter is given; the
/// default campaign is DupVal register faults, matching the paper's
/// headline configuration.
fn perfbench(cfg: &ReproConfig) -> String {
    let log = Logger::new(cfg.verbosity);
    let t = Technique::DupVal;
    let selected: Vec<PreparedBenchmark> = if cfg.benchmarks.is_empty() {
        vec![prepare(
            softft_workloads::workload_by_name("jpegenc").expect("jpegenc registered"),
        )]
    } else {
        cfg.selected()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Campaign perf bench: direct vs outcome-aware scheduling ({} trials, {} x register faults)\n\
         {:<10} {:>12} {:>10} {:>10} {:>9} {:>9} {:>5} {:>5} {:>6} {:>8} {:>6}",
        cfg.trials,
        t.label(),
        "benchmark",
        "golden",
        "direct ms",
        "sched ms",
        "interval",
        "ckpt KiB",
        "conv",
        "spin",
        "pruned",
        "speedup",
        "equal"
    );

    let mut entries: Vec<String> = Vec::new();
    let mut all_equivalent = true;
    let mut min_speedup = f64::INFINITY;
    for p in &selected {
        let name = p.workload.name();
        log.debug(format!("[repro] perfbench: {name} direct leg"));
        let mut ccfg = cfg.campaign_config();
        // The direct leg is the honest baseline: no snapshots, no spin
        // proof, no pruning.
        ccfg.snapshot_interval = 0;
        ccfg.spin_proof = false;
        ccfg.prune = false;
        let direct = bench_leg(p, t, &ccfg);
        // Scheduled leg: adaptive interval unless one was pinned on the
        // command line, spin proof and pruning as configured (on unless
        // --no-spin-proof / --no-prune).
        ccfg.snapshot_interval = if cfg.snapshot_interval > 0 {
            cfg.snapshot_interval
        } else {
            CampaignConfig::SNAPSHOT_AUTO
        };
        ccfg.spin_proof = cfg.spin_proof;
        ccfg.prune = cfg.prune;
        log.debug(format!("[repro] perfbench: {name} scheduled leg"));
        let snap = bench_leg(p, t, &ccfg);
        let equivalent = direct.result == snap.result;
        all_equivalent &= equivalent;
        let speedup = direct.wall_ms / snap.wall_ms.max(1e-9);
        min_speedup = min_speedup.min(speedup);
        let s = &snap.stats;
        let executed_trials =
            cfg.trials as u64 - s.converged_trials - s.spin_proved_trials - s.pruned_trials;
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>10.1} {:>10.1} {:>9} {:>9} {:>5} {:>5} {:>6} {:>6.2}x {:>6}",
            name,
            direct.result.golden_dyn_insts,
            direct.wall_ms,
            snap.wall_ms,
            s.interval,
            s.checkpoint_bytes / 1024,
            s.converged_trials,
            s.spin_proved_trials,
            s.pruned_trials,
            speedup,
            if equivalent { "yes" } else { "NO" }
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"golden_dyn_insts\": {},\n",
                "      \"direct\": {{ \"wall_ms\": {:.3}, \"trials_per_sec\": {:.1}, \"dyn_insts_per_sec\": {:.0} }},\n",
                "      \"scheduled\": {{ \"wall_ms\": {:.3}, \"trials_per_sec\": {:.1}, \"dyn_insts_per_sec\": {:.0}, \"interval\": {}, \"adaptive\": {}, \"calibration_trials\": {}, \"conv_latency_p50\": {}, \"checkpoints\": {}, \"checkpoint_bytes\": {}, \"resumed_trials\": {}, \"fresh_trials\": {}, \"prefix_insts_skipped\": {}, \"suffix_insts_skipped\": {}, \"spin_insts_skipped\": {}, \"pruned_insts_skipped\": {} }},\n",
                "      \"paths\": {{ \"executed\": {{ \"trials\": {}, \"wall_ms\": {:.3} }}, \"converged\": {{ \"trials\": {}, \"wall_ms\": {:.3} }}, \"spin_proved\": {{ \"trials\": {}, \"wall_ms\": {:.3} }}, \"pruned\": {{ \"trials\": {}, \"wall_ms\": {:.3} }} }},\n",
                "      \"speedup\": {:.3},\n",
                "      \"equivalent\": {}\n",
                "    }}"
            ),
            name,
            direct.result.golden_dyn_insts,
            direct.wall_ms,
            per_sec(cfg.trials as u64, direct.wall_ms),
            per_sec(direct.stats.insts_executed, direct.wall_ms),
            snap.wall_ms,
            per_sec(cfg.trials as u64, snap.wall_ms),
            per_sec(s.insts_executed, snap.wall_ms),
            s.interval,
            s.adaptive,
            s.calibration_trials,
            s.conv_latency_p50,
            s.checkpoints,
            s.checkpoint_bytes,
            s.resumed_trials,
            s.fresh_trials,
            s.prefix_insts_skipped,
            s.suffix_insts_skipped,
            s.spin_insts_skipped,
            s.pruned_insts_skipped,
            executed_trials,
            ms(s.exec_ns_executed),
            s.converged_trials,
            ms(s.exec_ns_converged),
            s.spin_proved_trials,
            ms(s.exec_ns_spin),
            s.pruned_trials,
            ms(s.exec_ns_pruned),
            speedup,
            equivalent
        ));
    }
    let floor_ok = min_speedup >= cfg.floor;
    let _ = writeln!(
        out,
        "(scheduled path must be bitwise equivalent; 'NO' in the last column is a bug)\n\
         min_speedup: {:.2}x  floor: {:.2}x  floor_ok: {}",
        min_speedup, cfg.floor, floor_ok
    );

    let json = format!(
        "{{\n  \"schema\": \"softft.bench.campaign.v2\",\n  \"trials\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"technique\": \"{}\",\n  \"spin_proof\": {},\n  \"prune\": {},\n  \"benchmarks\": [\n{}\n  ],\n  \"min_speedup\": {:.3},\n  \"floor\": {:.3},\n  \"floor_ok\": {},\n  \"all_equivalent\": {}\n}}\n",
        cfg.trials,
        cfg.seed,
        cfg.threads,
        tech_slug(t),
        cfg.spin_proof,
        cfg.prune,
        entries.join(",\n"),
        min_speedup,
        cfg.floor,
        floor_ok,
        all_equivalent
    );
    let path = cfg
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_campaign.json"));
    match std::fs::write(&path, json) {
        Ok(()) => log.info(format!("[repro] perf bench written to {}", path.display())),
        Err(e) => log.error(format!(
            "[repro] failed to write perf bench {}: {e}",
            path.display()
        )),
    }
    out
}

/// Default benchmark set for `repro interpbench`: a cross-section of
/// golden-run lengths (no `--benchmarks` filter given).
const INTERP_BENCH_SET: [&str; 8] = [
    "jpegenc",
    "jpegdec",
    "tiff2bw",
    "segm",
    "tex_synth",
    "g721enc",
    "mp3enc",
    "kmeans",
];

/// The `interpbench` exhibit: for each selected benchmark, runs the
/// fault-free golden run under every selected execution tier
/// (`--engine tree,decoded,fused`; default all three) and reports
/// interpreter throughput (dynamic instructions per second), the
/// decoded-over-tree and fused-over-decoded speedups, the fusion hit
/// rate (fraction of dynamic instructions retired via
/// superinstructions), and whether all engines produced
/// bitwise-identical results and output bytes. Each leg is run `reps`
/// times and the best wall time is kept, so the numbers measure the
/// engines rather than scheduler noise. Writes `BENCH_interp.json`
/// (`--bench-out`, schema v2) so CI can fail on divergence and track
/// throughput regressions.
fn interpbench(cfg: &ReproConfig) -> String {
    use softft_vm::interp::{Engine, NoopObserver, Vm, VmConfig};
    use softft_vm::outcome::RunResult;
    use softft_workloads::runner::{read_output, write_input, WorkloadImage};
    use softft_workloads::workload_by_name;

    let log = Logger::new(cfg.verbosity);
    let names: Vec<String> = if cfg.benchmarks.is_empty() {
        INTERP_BENCH_SET.iter().map(|s| s.to_string()).collect()
    } else {
        cfg.benchmarks.clone()
    };
    let reps = 5;
    let engines: Vec<Engine> = if cfg.engines.is_empty() {
        vec![Engine::Tree, Engine::Decoded, Engine::Fused]
    } else {
        let mut v = Vec::new();
        for s in &cfg.engines {
            match Engine::parse(s) {
                Some(e) if !v.contains(&e) => v.push(e),
                Some(_) => {}
                None => log.error(format!(
                    "[repro] interpbench: unknown engine {s} (expected tree, decoded, fused)"
                )),
            }
        }
        v
    };
    if engines.is_empty() {
        return "interpbench: no valid engines selected\n".to_string();
    }

    // Best-of-`reps` golden run; the image (and its decode + fusion) is
    // built outside the timed region — decode happens once per module,
    // not per run, which is exactly the cost model campaigns see.
    let leg = |image: &WorkloadImage<'_>| -> (f64, RunResult, Vec<u8>) {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..reps {
            let start = Instant::now();
            let (r, out) = image.run(&mut NoopObserver, None);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            if wall < best {
                best = wall;
            }
            if let Some((prev_r, prev_out)) = &kept {
                assert_eq!((prev_r, prev_out), (&r, &out), "engine is nondeterministic");
            } else {
                kept = Some((r, out));
            }
        }
        let (r, out) = kept.expect("at least one rep");
        (best, r, out)
    };

    let mut out = String::new();
    let mut header = format!(
        "Interpreter bench: {} (golden runs, best of {reps})\n{:<10} {:>12}",
        engines
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(" vs "),
        "benchmark",
        "golden"
    );
    for e in &engines {
        header.push_str(&format!(
            " {:>9} {:>13}",
            format!("{} ms", e.label()),
            "insts/s"
        ));
    }
    header.push_str(&format!(
        " {:>7} {:>7} {:>6} {:>6}",
        "dec-x", "fus-x", "hit%", "equal"
    ));
    let _ = writeln!(out, "{header}");

    let mut entries: Vec<String> = Vec::new();
    let mut all_equivalent = true;
    for name in &names {
        let Some(w) = workload_by_name(name) else {
            log.error(format!("[repro] interpbench: unknown benchmark {name}"));
            continue;
        };
        let module = w.build_module();
        let input = w.input(InputSet::Test);

        // One leg per selected engine, identical golden run.
        let mut legs: Vec<(Engine, f64, RunResult, Vec<u8>)> = Vec::new();
        for &e in &engines {
            log.debug(format!("[repro] interpbench: {name} {} leg", e.label()));
            let vm_cfg = VmConfig {
                engine: e,
                ..VmConfig::default()
            };
            let (ms, r, bytes) = leg(&WorkloadImage::new(&module, &input, vm_cfg));
            legs.push((e, ms, r, bytes));
        }
        let equivalent = legs
            .iter()
            .all(|(_, _, r, b)| *r == legs[0].2 && *b == legs[0].3);
        all_equivalent &= equivalent;
        let insts = legs[0].2.dyn_insts;
        let ms_of = |e: Engine| legs.iter().find(|l| l.0 == e).map(|l| l.1);
        let speedup = match (ms_of(Engine::Tree), ms_of(Engine::Decoded)) {
            (Some(t), Some(d)) => Some(t / d.max(1e-9)),
            _ => None,
        };
        let fused_speedup = match (ms_of(Engine::Decoded), ms_of(Engine::Fused)) {
            (Some(d), Some(f)) => Some(d / f.max(1e-9)),
            _ => None,
        };

        // Fusion hit rate: one extra profiled fused run, untimed. The
        // fused-pair tally is kept off the timed legs so the numbers
        // measure the engine, not the bookkeeping.
        let fusion = engines.contains(&Engine::Fused).then(|| {
            log.debug(format!("[repro] interpbench: {name} fusion stats run"));
            let prof_cfg = VmConfig {
                engine: Engine::Fused,
                profiling: true,
                ..VmConfig::default()
            };
            let main = module.function_by_name("main").expect("kernel has main");
            let mut vm = Vm::new(&module, prof_cfg);
            write_input(&mut vm, &module, &input);
            let r = vm.run(main, &[], &mut NoopObserver, None);
            let bytes = read_output(&vm, &module);
            let vmp = vm.take_profiler().expect("profiling was enabled");
            let fused_ok = legs
                .iter()
                .find(|l| l.0 == Engine::Fused)
                .map(|l| l.2 == r && l.3 == bytes)
                .unwrap_or(true);
            let total = vmp.counts().total();
            let retired = 2 * vmp.fused_pairs().total();
            let pairs = vmp.fused_pairs().top(8, total);
            (fused_ok, total, retired, pairs)
        });
        if let Some((fused_ok, _, _, _)) = &fusion {
            all_equivalent &= fused_ok;
        }
        let hit_rate = fusion
            .as_ref()
            .map(|(_, total, retired, _)| *retired as f64 / (*total).max(1) as f64);

        let mut row = format!("{:<10} {:>12}", name, insts);
        for (_, ms, r, _) in &legs {
            let _ = r;
            row.push_str(&format!(" {:>9.2} {:>13.0}", ms, per_sec(insts, *ms)));
        }
        let fmt_x = |s: Option<f64>| s.map_or("-".to_string(), |v| format!("{v:.2}x"));
        let _ = writeln!(
            out,
            "{row} {:>7} {:>7} {:>6} {:>6}",
            fmt_x(speedup),
            fmt_x(fused_speedup),
            hit_rate.map_or("-".to_string(), |h| format!("{:.1}", h * 100.0)),
            if equivalent { "yes" } else { "NO" }
        );

        // JSON entry: v1 fields (`tree`/`decoded`/`speedup`) keep their
        // exact shape; `fused`, `fused_speedup` and `fusion` are the v2
        // additions.
        let mut entry = format!(
            "    {{\n      \"name\": \"{}\",\n      \"golden_dyn_insts\": {},\n",
            name, insts
        );
        for (e, ms, _, _) in &legs {
            entry.push_str(&format!(
                "      \"{}\": {{ \"wall_ms\": {:.3}, \"dyn_insts_per_sec\": {:.0} }},\n",
                e.label(),
                ms,
                per_sec(insts, *ms)
            ));
        }
        if let Some(s) = speedup {
            entry.push_str(&format!("      \"speedup\": {s:.3},\n"));
        }
        if let Some(s) = fused_speedup {
            entry.push_str(&format!("      \"fused_speedup\": {s:.3},\n"));
        }
        if let Some((_, total, retired, pairs)) = &fusion {
            let pairs_json = pairs
                .iter()
                .map(|d| {
                    format!(
                        "          {{ \"first\": \"{}\", \"second\": \"{}\", \"count\": {}, \"retired_frac\": {:.6} }}",
                        d.first.label(),
                        d.second.label(),
                        d.count,
                        (2 * d.count) as f64 / (*total).max(1) as f64
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            entry.push_str(&format!(
                concat!(
                    "      \"fusion\": {{\n",
                    "        \"dyn_insts\": {},\n",
                    "        \"retired_fused\": {},\n",
                    "        \"retired_frac\": {:.6},\n",
                    "        \"pairs\": [\n{}\n        ]\n",
                    "      }},\n"
                ),
                total,
                retired,
                *retired as f64 / (*total).max(1) as f64,
                pairs_json
            ));
        }
        entry.push_str(&format!("      \"equivalent\": {equivalent}\n    }}"));
        entries.push(entry);
    }
    let _ = writeln!(
        out,
        "(every engine must be bitwise equivalent; 'NO' in the last column is a bug)"
    );

    let json = format!(
        "{{\n  \"schema\": \"softft.bench.interp.v2\",\n  \"seed\": {},\n  \"reps\": {},\n  \"engines\": [{}],\n  \"benchmarks\": [\n{}\n  ],\n  \"all_equivalent\": {}\n}}\n",
        cfg.seed,
        reps,
        engines
            .iter()
            .map(|e| format!("\"{}\"", e.label()))
            .collect::<Vec<_>>()
            .join(", "),
        entries.join(",\n"),
        all_equivalent
    );
    let path = cfg
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_interp.json"));
    match std::fs::write(&path, json) {
        Ok(()) => log.info(format!(
            "[repro] interp bench written to {}",
            path.display()
        )),
        Err(e) => log.error(format!(
            "[repro] failed to write interp bench {}: {e}",
            path.display()
        )),
    }
    out
}

/// Default benchmark set for `repro profile`: one short campaign
/// (tiff2bw) plus segm, whose corrupted runs frequently spin to the
/// watchdog bound — the case the phase-time table is about.
const PROFILE_BENCH_SET: [&str; 2] = ["tiff2bw", "segm"];

/// The `profile` exhibit. Three measurements per selected benchmark
/// (DupVal, matching the paper's headline configuration):
///
/// 1. a fault-free golden run with [`VmConfig::profiling`] on — exact
///    per-opcode and opcode-digram counts plus sampled wall-time
///    attribution, ranked by estimated fused-dispatch savings (the
///    input for a superinstruction tier);
/// 2. the hard invariant, checked: the same golden run and a full
///    campaign with profiling *off* must be bitwise identical to the
///    profiling-on runs (`all_equivalent` in the JSON; CI greps it);
/// 3. a snapshot-resume campaign under phase-time attribution
///    ([`run_campaign_profiled`]) — where wall-clock goes per phase and
///    per outcome, including the watchdog-spin share.
///
/// Writes `BENCH_profile.json` (`--bench-out`) plus a
/// flamegraph-compatible folded-stack `.folded` sibling.
fn profile(cfg: &ReproConfig) -> String {
    use softft_campaign::campaign::run_campaign_profiled;
    use softft_vm::interp::{NoopObserver, Vm, VmConfig};
    use softft_workloads::runner::{read_output, write_input};
    use softft_workloads::workload_by_name;

    let log = Logger::new(cfg.verbosity);
    let t = Technique::DupVal;
    let names: Vec<String> = if cfg.benchmarks.is_empty() {
        PROFILE_BENCH_SET.iter().map(|s| s.to_string()).collect()
    } else {
        cfg.benchmarks.clone()
    };

    let mut out = String::new();
    let mut entries: Vec<String> = Vec::new();
    let mut folded = String::new();
    let mut all_equivalent = true;

    for name in &names {
        let Some(w) = workload_by_name(name) else {
            log.error(format!("[repro] profile: unknown benchmark {name}"));
            continue;
        };
        let p = prepare(w);
        let module = p.module(t);
        let input = p.workload.input(InputSet::Test);
        let main = module.function_by_name("main").expect("kernel has main");

        // Golden run, profiling on: opcode/digram heat + sampled time.
        log.debug(format!("[repro] profile: {name} golden profiled run"));
        let prof_cfg = VmConfig {
            profiling: true,
            ..VmConfig::default()
        };
        let mut vm = Vm::new(module, prof_cfg);
        write_input(&mut vm, module, &input);
        let r_on = vm.run(main, &[], &mut NoopObserver, None);
        let out_on = read_output(&vm, module);
        let vmp = vm.take_profiler().expect("profiling was enabled");

        // The invariant's golden leg: profiling off, same run.
        let mut vm = Vm::new(module, VmConfig::default());
        write_input(&mut vm, module, &input);
        let r_off = vm.run(main, &[], &mut NoopObserver, None);
        let out_off = read_output(&vm, module);
        let golden_equiv = r_on == r_off && out_on == out_off;
        all_equivalent &= golden_equiv;

        // The invariant's campaign leg: profiling on vs off.
        log.debug(format!("[repro] profile: {name} campaign equivalence legs"));
        let ccfg = cfg.campaign_config();
        let plain = run_campaign(&*p.workload, module, &ccfg);
        let mut on_cfg = ccfg.clone();
        on_cfg.vm.profiling = true;
        let on = run_campaign(&*p.workload, module, &on_cfg);
        let campaign_equiv = plain == on;
        all_equivalent &= campaign_equiv;

        // Phase-time attribution on the scheduling configuration real
        // campaigns use (adaptive interval unless pinned).
        let mut phcfg = ccfg.clone();
        phcfg.snapshot_interval = if cfg.snapshot_interval > 0 {
            cfg.snapshot_interval
        } else {
            CampaignConfig::SNAPSHOT_AUTO
        };
        log.debug(format!("[repro] profile: {name} phased campaign"));
        let (phased_result, phase, phstats) = run_campaign_profiled(&*p.workload, module, &phcfg);
        all_equivalent &= phased_result == plain;

        // --- Human-readable report. ---
        let dispatches = vmp.counts().total();
        let _ = writeln!(
            out,
            "== {name} ({}) ==\ngolden: {} dyn insts | profiling on/off bitwise equal: {} | campaign equal: {}",
            t.label(),
            r_on.dyn_insts,
            if golden_equiv { "yes" } else { "NO" },
            if campaign_equiv { "yes" } else { "NO" },
        );
        let top = vmp.hot_digrams(8);
        let _ = writeln!(
            out,
            "hot digrams (top {} of {} dispatches; savings = dispatches removed if fused):",
            top.len(),
            dispatches
        );
        for d in &top {
            let _ = writeln!(
                out,
                "  {:>6} -> {:<6} {:>12}  {:>6.2}% of dispatches",
                d.first.label(),
                d.second.label(),
                d.count,
                d.est_dispatch_savings * 100.0
            );
        }
        let fusible = vmp.fusible_digrams(8);
        let _ = writeln!(
            out,
            "fusible digrams (top {}; intra-block fall-through pairs a superinstruction can fuse):",
            fusible.len()
        );
        for d in &fusible {
            let _ = writeln!(
                out,
                "  {:>6} -> {:<6} {:>12}  {:>6.2}% of dispatches",
                d.first.label(),
                d.second.label(),
                d.count,
                d.est_dispatch_savings * 100.0
            );
        }
        let _ = writeln!(
            out,
            "campaign phases ({} trials, interval {}{}):",
            phcfg.trials,
            phstats.interval,
            if phstats.adaptive { " adaptive" } else { "" }
        );
        for (pname, ns) in phase.phases() {
            let _ = writeln!(out, "  {:<18} {:>10.2} ms", pname, ns as f64 / 1e6);
        }
        let _ = writeln!(
            out,
            "watchdog spin: {} trials, {:.1}% of live execution time \
             (spin-proved: {}, pruned: {})\n",
            phase.watchdog_trials(),
            phase.watchdog_spin_share() * 100.0,
            phstats.spin_proved_trials,
            phstats.pruned_trials
        );

        // --- JSON entry. ---
        let digrams_json = top
            .iter()
            .map(|d| {
                format!(
                    "        {{ \"first\": \"{}\", \"second\": \"{}\", \"count\": {}, \"est_dispatch_savings\": {:.6} }}",
                    d.first.label(),
                    d.second.label(),
                    d.count,
                    d.est_dispatch_savings
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let fusible_json = fusible
            .iter()
            .map(|d| {
                format!(
                    "        {{ \"first\": \"{}\", \"second\": \"{}\", \"count\": {}, \"est_dispatch_savings\": {:.6} }}",
                    d.first.label(),
                    d.second.label(),
                    d.count,
                    d.est_dispatch_savings
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let opcodes_json = vmp
            .counts()
            .iter_nonzero()
            .map(|(op, n)| format!("        {{ \"op\": \"{op}\", \"count\": {n} }}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let sampled_json = vmp
            .sampled_times()
            .map(|(c, s)| {
                format!(
                    "        {{ \"op\": \"{}\", \"ns\": {}, \"samples\": {} }}",
                    c.label(),
                    s.ns,
                    s.samples
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let phases_json = phase
            .phases()
            .iter()
            .map(|(pname, ns)| format!("\"{pname}_ns\": {ns}"))
            .collect::<Vec<_>>()
            .join(", ");
        let outcomes_json = phase
            .per_outcome
            .iter()
            .filter(|r| r.trials > 0)
            .map(|r| {
                format!(
                    "          {{ \"outcome\": \"{}\", \"trials\": {}, \"exec_ns\": {}, \"dyn_insts\": {}, \"watchdog_trials\": {}, \"watchdog_spin_ns\": {} }}",
                    r.outcome.label(),
                    r.trials,
                    r.exec_ns,
                    r.dyn_insts,
                    r.watchdog_trials,
                    r.watchdog_spin_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"golden_dyn_insts\": {},\n",
                "      \"golden_equivalent\": {},\n",
                "      \"campaign_equivalent\": {},\n",
                "      \"dispatches\": {},\n",
                "      \"hot_digrams\": [\n{}\n      ],\n",
                "      \"fusible_digrams\": [\n{}\n      ],\n",
                "      \"opcodes\": [\n{}\n      ],\n",
                "      \"sampled_ns\": [\n{}\n      ],\n",
                "      \"campaign\": {{\n",
                "        \"trials\": {},\n",
                "        \"snapshot_interval\": {},\n",
                "        \"adaptive\": {},\n",
                "        \"spin_proved_trials\": {},\n",
                "        \"pruned_trials\": {},\n",
                "        \"phases\": {{ {} }},\n",
                "        \"outcomes\": [\n{}\n        ],\n",
                "        \"watchdog_trials\": {},\n",
                "        \"watchdog_spin_ns\": {},\n",
                "        \"watchdog_spin_share\": {:.6}\n",
                "      }}\n",
                "    }}"
            ),
            name,
            r_on.dyn_insts,
            golden_equiv,
            campaign_equiv,
            dispatches,
            digrams_json,
            fusible_json,
            opcodes_json,
            sampled_json,
            phcfg.trials,
            phstats.interval,
            phstats.adaptive,
            phstats.spin_proved_trials,
            phstats.pruned_trials,
            phases_json,
            outcomes_json,
            phase.watchdog_trials(),
            phase.watchdog_spin_ns(),
            phase.watchdog_spin_share()
        ));

        // --- Folded stacks (flamegraph.pl / inferno compatible). ---
        for (c, s) in vmp.sampled_times() {
            let _ = writeln!(folded, "{name};vm;{} {}", c.label(), s.ns);
        }
        for (pname, ns) in phase.phases() {
            let _ = writeln!(folded, "{name};campaign;{pname} {ns}");
        }
    }
    let _ = writeln!(
        out,
        "(profiling must never perturb results; 'NO' above is a bug)"
    );

    let json = format!(
        "{{\n  \"schema\": \"softft.bench.profile.v1\",\n  \"trials\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"technique\": \"{}\",\n  \"benchmarks\": [\n{}\n  ],\n  \"all_equivalent\": {}\n}}\n",
        cfg.trials,
        cfg.seed,
        cfg.threads,
        tech_slug(t),
        entries.join(",\n"),
        all_equivalent
    );
    let path = cfg
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_profile.json"));
    match std::fs::write(&path, json) {
        Ok(()) => log.info(format!(
            "[repro] profile bench written to {}",
            path.display()
        )),
        Err(e) => log.error(format!(
            "[repro] failed to write profile bench {}: {e}",
            path.display()
        )),
    }
    let folded_path = path.with_extension("folded");
    match std::fs::write(&folded_path, folded) {
        Ok(()) => log.info(format!(
            "[repro] folded stacks written to {}",
            folded_path.display()
        )),
        Err(e) => log.error(format!(
            "[repro] failed to write folded stacks {}: {e}",
            folded_path.display()
        )),
    }
    out
}

fn fig1(cfg: &ReproConfig) -> String {
    use softft_vm::interp::{NoopObserver, VmConfig};
    use softft_vm::FaultPlan;
    use softft_workloads::runner::run_workload;
    use softft_workloads::workload_by_name;

    let w = workload_by_name("jpegdec").expect("jpegdec registered");
    let module = w.build_module();
    let input = w.input(InputSet::Test);
    let (golden_r, golden) = run_workload(
        &module,
        &input,
        VmConfig::default(),
        &mut NoopObserver,
        None,
    );
    let n = golden_r.dyn_insts;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 1: jpegdec outputs under injected faults (PSNR vs fault-free)"
    );
    let _ = writeln!(out, "  (a) no fault:            PSNR = inf (identical)");
    // Scan seeds for one acceptable and one unacceptable completed run.
    let (mut shown_ok, mut shown_bad) = (false, false);
    for seed in 0..2000u64 {
        if shown_ok && shown_bad {
            break;
        }
        let plan = FaultPlan::register(
            (seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(cfg.seed))
                % n.max(1),
            seed,
        );
        let (r, o) = run_workload(
            &module,
            &input,
            VmConfig::default(),
            &mut NoopObserver,
            Some(plan),
        );
        if !r.completed() || o == golden {
            continue;
        }
        let psnr = w.fidelity(&golden, &o);
        // Infinite PSNR with differing bytes means only trailing zero
        // padding changed (e.g. a corrupted length word) — prefer a
        // case with actual pixel differences for the (b) exhibit.
        if psnr >= 30.0 && psnr.is_finite() && !shown_ok {
            let _ = writeln!(
                out,
                "  (b) acceptable fault:    PSNR = {psnr:.1} dB (imperceptible; seed {seed})"
            );
            shown_ok = true;
        } else if psnr < 30.0 && !shown_bad {
            let _ = writeln!(
                out,
                "  (c) unacceptable fault:  PSNR = {psnr:.1} dB (visible corruption; seed {seed})"
            );
            shown_bad = true;
        }
    }
    if !shown_ok || !shown_bad {
        let _ = writeln!(out, "  (insufficient seeds scanned to find both cases)");
    }
    out
}

fn fig2(cfg: &ReproConfig) -> String {
    let ccfg = cfg.campaign_config();
    let rows: Vec<(String, _)> = cfg
        .selected()
        .iter()
        .map(|p| {
            let r = campaign_run(cfg, &ccfg, p, Technique::Original);
            (p.workload.name().to_string(), r)
        })
        .collect();
    report::render_fig2(&rows)
}

fn static_report(
    cfg: &ReproConfig,
    render: fn(&[(String, softft::StaticStats)]) -> String,
) -> String {
    let rows: Vec<(String, softft::StaticStats)> = cfg
        .selected()
        .iter()
        .map(|p| {
            (
                p.workload.name().to_string(),
                p.static_stats[&Technique::DupVal],
            )
        })
        .collect();
    render(&rows)
}

fn fig11_13(cfg: &ReproConfig, fig11: bool) -> String {
    let ccfg = cfg.campaign_config();
    let rows: Vec<(String, report::ResultsByTechnique)> = cfg
        .selected()
        .iter()
        .map(|p| {
            let mut by_t = report::ResultsByTechnique::new();
            for t in [Technique::Original, Technique::DupOnly, Technique::DupVal] {
                by_t.insert(t, campaign_run(cfg, &ccfg, p, t));
            }
            (p.workload.name().to_string(), by_t)
        })
        .collect();
    if fig11 {
        // Also quote the full-duplication comparator line.
        let mut out = report::render_fig11(&rows, cfg.trials);
        let mut usdc = 0.0;
        let mut count = 0usize;
        for p in cfg.selected() {
            let r = campaign_run(cfg, &ccfg, &p, Technique::FullDup);
            usdc += r.usdc_frac();
            count += 1;
        }
        let _ = writeln!(
            out,
            "full duplication mean USDC: {:.2}% (paper: 1.4% at 57% overhead)",
            usdc / count.max(1) as f64 * 100.0
        );
        out
    } else {
        report::render_fig13(&rows)
    }
}

fn fig12(cfg: &ReproConfig) -> String {
    let rows: Vec<(String, Vec<(Technique, f64)>)> = cfg
        .selected()
        .iter()
        .map(|p| {
            (
                p.workload.name().to_string(),
                all_overheads(&*p.workload, &p.modules, InputSet::Test),
            )
        })
        .collect();
    report::render_fig12(&rows)
}

fn detect(cfg: &ReproConfig) -> String {
    let ccfg = cfg.campaign_config();
    let rows: Vec<(String, _)> = cfg
        .selected()
        .iter()
        .map(|p| {
            let r = campaign_run(cfg, &ccfg, p, Technique::DupVal);
            (p.workload.name().to_string(), r)
        })
        .collect();
    report::render_detection_split(&rows)
}

fn latency(cfg: &ReproConfig) -> String {
    let ccfg = cfg.campaign_config();
    let rows: Vec<(String, report::ResultsByTechnique)> = cfg
        .selected()
        .iter()
        .map(|p| {
            let mut by_t = report::ResultsByTechnique::new();
            for t in [
                Technique::Original,
                Technique::DupOnly,
                Technique::DupVal,
                Technique::FullDup,
            ] {
                by_t.insert(t, campaign_run(cfg, &ccfg, p, t));
            }
            (p.workload.name().to_string(), by_t)
        })
        .collect();
    report::render_latency(&rows)
}

fn falsepos(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "False positives: value-check failures on a fault-free test-input run\n\
         {:<10} {:>10} {:>12} {:>18}",
        "benchmark", "failures", "insts", "insts/failure"
    );
    let (mut total_f, mut total_i) = (0u64, 0u64);
    for p in cfg.selected() {
        let fp = measure_false_positives(&*p.workload, p.module(Technique::DupVal), InputSet::Test);
        let per = fp
            .insts_per_failure()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>18}",
            p.workload.name(),
            fp.failures,
            fp.insts,
            per
        );
        total_f += fp.failures;
        total_i += fp.insts;
    }
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>18}   (paper: ~1 per 235K instructions)",
        "total",
        total_f,
        total_i,
        total_i
            .checked_div(total_f)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into())
    );
    out
}

fn ablate(cfg: &ReproConfig) -> String {
    use softft::{transform, TransformConfig};
    use softft_campaign::perf::time_module;
    use softft_profile::ClassifyConfig;
    use softft_workloads::Workload;

    let variants: [(&str, TransformConfig); 4] = [
        (
            "opt1+opt2",
            TransformConfig {
                opt1: true,
                opt2: true,
            },
        ),
        (
            "opt1 only",
            TransformConfig {
                opt1: true,
                opt2: false,
            },
        ),
        (
            "opt2 only",
            TransformConfig {
                opt1: false,
                opt2: true,
            },
        ),
        (
            "neither",
            TransformConfig {
                opt1: false,
                opt2: false,
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: Optimizations 1 (deepest check only) and 2 (check cuts chain)\n\
         {:<10} {:<10} {:>8} {:>8} {:>9} {:>10}",
        "benchmark", "variant", "dup'd", "checks", "insts", "overhead"
    );
    for p in cfg.selected() {
        let w: &dyn Workload = &*p.workload;
        let module = w.build_module();
        let base = time_module(w, &module, InputSet::Test);
        // Rebuild the profile exactly as prepare() does.
        let profile = {
            use softft_profile::Profiler;
            use softft_vm::interp::VmConfig;
            use softft_workloads::runner::run_workload;
            let mut prof = Profiler::default();
            run_workload(
                &module,
                &w.input(InputSet::Train),
                VmConfig::default(),
                &mut prof,
                None,
            );
            softft_profile::ProfileDb::from_profiler(&prof, &ClassifyConfig::default())
        };
        for (label, tc) in &variants {
            let (tm, stats) = transform(&module, &profile, Technique::DupVal, tc);
            let t = time_module(w, &tm, InputSet::Test);
            let ov = (t.cycles as f64 - base.cycles as f64) / base.cycles.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>8} {:>8} {:>9} {:>9.2}%",
                w.name(),
                label,
                stats.duplicated,
                stats.value_checks(),
                stats.insts_after,
                ov * 100.0
            );
        }
    }
    let _ = writeln!(
        out,
        "(both optimizations should reduce checks/instructions vs 'neither')"
    );
    out
}

fn cfc(cfg: &ReproConfig) -> String {
    use softft::cfcss::insert_cfc_signatures;
    use softft_campaign::perf::time_module;
    use softft_vm::fault::FaultKind;

    let mut ccfg = cfg.campaign_config();
    ccfg.fault_kind = FaultKind::BranchTarget;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Branch-target faults: DupVal alone vs DupVal + CFCSS signatures\n\
         {:<10} {:<12} {:>9} {:>9} {:>8} {:>7} {:>9}",
        "benchmark", "variant", "SWDetect", "Failure", "USDC", "Masked", "overhead"
    );
    for p in cfg.selected() {
        let w = &*p.workload;
        let base = time_module(w, p.module(Technique::Original), InputSet::Test);
        let plain = p.module(Technique::DupVal).clone();
        let mut signed = plain.clone();
        insert_cfc_signatures(&mut signed);
        for (label, module) in [("plain", &plain), ("+cfcss", &signed)] {
            let r = run_campaign(w, module, &ccfg);
            let t = time_module(w, module, InputSet::Test);
            let ov = (t.cycles as f64 - base.cycles as f64) / base.cycles.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<10} {:<12} {:>8.1}% {:>8.1}% {:>7.1}% {:>6.1}% {:>8.1}%",
                w.name(),
                label,
                r.swdetect_frac() * 100.0,
                r.failure_frac() * 100.0,
                r.usdc_frac() * 100.0,
                r.masked_frac() * 100.0,
                ov * 100.0
            );
        }
    }
    let _ = writeln!(
        out,
        "(signatures convert silent/failed wild branches into SWDetects; \
         the paper defers branch-target coverage to exactly this mechanism)"
    );
    out
}

fn recovery(cfg: &ReproConfig) -> String {
    use softft_campaign::recovery::{model_recovery, RecoveryModel};

    let ccfg = cfg.campaign_config();
    let model = RecoveryModel::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Recovery economics (checkpoint interval {} insts, Section IV-D)\n\
         {:<10} {:>10} {:>12} {:>14} {:>16}",
        model.checkpoint_interval,
        "benchmark",
        "triggers",
        "recovered",
        "rollback insts",
        "ckpt overhead"
    );
    for p in cfg.selected() {
        let r = campaign_run(cfg, &ccfg, &p, Technique::DupVal);
        let cost = model_recovery(&r, &model);
        let _ = writeln!(
            out,
            "{:<10} {:>9.1}% {:>11.1}% {:>14.0} {:>15.1}%",
            p.workload.name(),
            cost.recovery_trigger_frac * 100.0,
            cost.recovered_frac * 100.0,
            cost.mean_rollback_insts,
            cost.checkpoint_overhead * 100.0
        );
    }
    out
}

fn crossval(cfg: &ReproConfig) -> String {
    let ccfg = cfg.campaign_config();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Cross-validation: profile/inject inputs swapped (Dup + val chks)\n\
         {:<10} {:>16} {:>16} {:>12}",
        "benchmark", "fwd USDC", "swapped USDC", "max Δ bucket"
    );
    for name in ["jpegdec", "kmeans"] {
        let cv = cross_validate(name, &ccfg);
        let _ = writeln!(
            out,
            "{:<10} {:>15.2}% {:>15.2}% {:>11.2}%",
            cv.name,
            cv.forward.usdc_frac() * 100.0,
            cv.swapped.usdc_frac() * 100.0,
            cv.max_bucket_delta() * 100.0
        );
    }
    let _ = writeln!(out, "(paper: per-bucket deltas ≤ ~0.5% at 1000 trials)");
    out
}

// ---------------------------------------------------------------------------
// Run store: persistent streaming campaigns and the live observatory.
// ---------------------------------------------------------------------------

/// The technique store campaigns run under: DupVal register faults,
/// the paper's headline configuration.
const STORE_TECHNIQUE: Technique = Technique::DupVal;

/// Opens (or creates) the run store for the `campaign` and `fleet`
/// exhibits, with identical `--store` / `--resume` semantics: resume
/// adopts the manifest's config and shard list; continuing an existing
/// `--store` also adopts its config so a re-invocation cannot fork the
/// plan. Returns the store, the effective campaign config, the
/// benchmark plan, and the header line already written to `out`.
fn store_session(
    cfg: &ReproConfig,
    exhibit: &str,
    out: &mut String,
) -> Result<(RunStore, CampaignConfig, Vec<PreparedBenchmark>), String> {
    if let Some(dir) = &cfg.resume {
        // Resume: the manifest is the config; the command line's
        // trials/seed are ignored so a resumed campaign cannot fork.
        let store = match RunStore::open(dir) {
            Ok(s) => s,
            Err(e) => {
                return Err(format!(
                    "{exhibit}: cannot open run store {}: {e}\n",
                    dir.display()
                ));
            }
        };
        let manifest = store.manifest();
        let ccfg = match campaign_config_from_manifest(&manifest) {
            Ok(c) => c,
            Err(e) => return Err(format!("{exhibit}: {}: {e}\n", dir.display())),
        };
        let plan: Vec<PreparedBenchmark> = manifest
            .shards
            .iter()
            .filter_map(|s| workload_by_name(&s.benchmark))
            .map(prepare)
            .collect();
        if plan.is_empty() {
            return Err(format!(
                "{exhibit}: {} records no shards to resume\n",
                dir.display()
            ));
        }
        let _ = writeln!(
            out,
            "Resuming run store {} (seed {:#x}, {} trials/shard, {} faults)",
            dir.display(),
            ccfg.seed,
            ccfg.trials,
            fault_kind_label(ccfg.fault_kind)
        );
        Ok((store, ccfg, plan))
    } else if let Some(dir) = &cfg.store {
        let ccfg = cfg.campaign_config();
        match RunStore::create(dir, store_manifest(&ccfg)) {
            Ok(store) => {
                let _ = writeln!(
                    out,
                    "Created run store {} (seed {:#x}, {} trials/shard, {} faults)",
                    dir.display(),
                    ccfg.seed,
                    ccfg.trials,
                    fault_kind_label(ccfg.fault_kind)
                );
                Ok((store, ccfg, cfg.selected()))
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // Continuing an existing store: adopt its recorded
                // config so a re-invocation cannot fork the plan
                // (plan hashes would refuse the append anyway).
                let store = match RunStore::open(dir) {
                    Ok(s) => s,
                    Err(e) => {
                        return Err(format!(
                            "{exhibit}: cannot open run store {}: {e}\n",
                            dir.display()
                        ));
                    }
                };
                let ccfg = match campaign_config_from_manifest(&store.manifest()) {
                    Ok(c) => c,
                    Err(e) => return Err(format!("{exhibit}: {}: {e}\n", dir.display())),
                };
                let _ = writeln!(
                    out,
                    "Continuing run store {} (seed {:#x}, {} trials/shard, {} faults)",
                    dir.display(),
                    ccfg.seed,
                    ccfg.trials,
                    fault_kind_label(ccfg.fault_kind)
                );
                Ok((store, ccfg, cfg.selected()))
            }
            Err(e) => Err(format!(
                "{exhibit}: cannot create run store {}: {e}\n",
                dir.display()
            )),
        }
    } else {
        Err(format!(
            "{exhibit}: pass --store DIR to start a persistent campaign \
             or --resume DIR to continue one\n"
        ))
    }
}

/// The `campaign` exhibit: runs (or resumes) streaming campaigns over a
/// persistent run store — one shard per selected benchmark, each trial
/// appended as it completes. `--trial-cap N` bounds how many trials
/// this invocation appends across all shards (the interrupt half of
/// interrupt/resume); `--verify` replays the store and compares against
/// fresh buffered campaigns, printing a `replay_equivalent:` verdict.
fn campaign(cfg: &ReproConfig) -> String {
    let log = Logger::new(cfg.verbosity);
    let t = STORE_TECHNIQUE;
    let mut out = String::new();
    let (store, ccfg, plan) = match store_session(cfg, "campaign", &mut out) {
        Ok(v) => v,
        Err(e) => return e,
    };

    let mut budget = cfg.trial_cap;
    for p in &plan {
        let label = format!("{}/{}", p.workload.name(), t.slug());
        if budget == Some(0) {
            let _ = writeln!(out, "{label:<28} skipped (trial cap exhausted)");
            continue;
        }
        log.debug(format!("[repro] campaign shard: {label}"));
        match run_campaign_to_store(&store, p, t, &ccfg, budget) {
            Ok(stats) => {
                if let Some(b) = &mut budget {
                    *b -= stats.executed.min(*b);
                }
                let _ = writeln!(
                    out,
                    "{:<28} {:>5}/{:<5} trials ({} new this run){}",
                    stats.label,
                    stats.already_done + stats.executed,
                    stats.total,
                    stats.executed,
                    if stats.complete { "" } else { "  [incomplete]" }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{label}: ERROR: {e}");
            }
        }
    }
    log.info(format!(
        "[repro] run store at {} (watch it with `repro watch {}`)",
        store.dir().display(),
        store.dir().display()
    ));

    if cfg.verify {
        out.push_str(&verify_store(&store, &plan, &ccfg));
    }
    out
}

/// The `fleet` exhibit: runs (or resumes) each shard's campaign across
/// a work-stealing fleet of workers appending to one shared run store.
/// In-process pools by default; `--processes` spawns `repro fleet
/// worker` children driven over stdio wire frames. Results are bitwise
/// identical to the single-process `campaign` exhibit for any worker
/// count, steal interleaving, or killed-and-reclaimed worker —
/// `--verify` proves it on the spot.
fn fleet(cfg: &ReproConfig) -> String {
    if cfg.fleet_worker {
        return fleet_worker(cfg);
    }
    let log = Logger::new(cfg.verbosity);
    let t = STORE_TECHNIQUE;
    let mut out = String::new();
    let (store, ccfg, plan) = match store_session(cfg, "fleet", &mut out) {
        Ok(v) => v,
        Err(e) => return e,
    };

    for p in &plan {
        let label = format!("{}/{}", p.workload.name(), t.slug());
        // One observatory listener per shard run (the listener is owned
        // by the fleet for its duration; the address frees on drop, so
        // sequential shards can re-bind it).
        let observatory =
            cfg.serve
                .as_ref()
                .and_then(|addr| match std::net::TcpListener::bind(addr) {
                    Ok(l) => {
                        if let Ok(a) = l.local_addr() {
                            log.info(format!(
                            "[repro] observatory for {label} on {a} (repro watch --connect {a})"
                        ));
                        }
                        Some(l)
                    }
                    Err(e) => {
                        log.error(format!("[repro] cannot bind observatory {addr}: {e}"));
                        None
                    }
                });
        log.debug(format!(
            "[repro] fleet shard: {label} ({} worker(s), {})",
            cfg.workers.max(1),
            if cfg.processes { "processes" } else { "pools" }
        ));
        let fc = FleetConfig {
            workers: cfg.workers.max(1),
            worker_threads: cfg.worker_threads.max(1),
            processes: cfg.processes,
            observatory,
            heartbeat_ms: cfg.heartbeat_ms.max(1),
            fail_after: cfg.fail_after.clone(),
        };
        match run_fleet_campaign(&store, p, t, &ccfg, fc) {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<28} {:>5}/{:<5} trials ({} new, {} execution(s), {} steal(s), \
                     {} reclaim(s), {} worker(s)){}",
                    r.label,
                    r.distinct_done,
                    r.total,
                    r.distinct_done.saturating_sub(r.already_done),
                    r.executed,
                    r.steals,
                    r.reclaims,
                    r.workers,
                    if r.complete { "" } else { "  [incomplete]" }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{label}: ERROR: {e}");
            }
        }
    }
    log.info(format!(
        "[repro] run store at {} (watch it with `repro watch {}`)",
        store.dir().display(),
        store.dir().display()
    ));

    if cfg.verify {
        out.push_str(&verify_store(&store, &plan, &ccfg));
    }
    out
}

/// `repro fleet worker` (internal): the child-process half of a
/// process-mode fleet. Serves stdin assignments until told to exit;
/// stdout is the control channel, so this prints nothing on success
/// and exits nonzero (via stderr) on error.
fn fleet_worker(cfg: &ReproConfig) -> String {
    let Some(store) = cfg.store.clone() else {
        eprintln!("fleet worker: --store DIR required");
        std::process::exit(2);
    };
    let Some(label) = cfg.label.clone() else {
        eprintln!("fleet worker: --label BENCH/TECH required");
        std::process::exit(2);
    };
    let opts = WorkerOpts {
        store,
        label,
        worker_id: cfg.worker_id,
        worker_threads: cfg.worker_threads.max(1),
        fail_after: cfg.fail_after.first().map(|&(_, n)| n),
    };
    match run_worker(&opts) {
        Ok(()) => String::new(),
        Err(e) => {
            eprintln!("fleet worker {}: {e}", opts.worker_id);
            std::process::exit(2);
        }
    }
}

/// Default benchmark set for `repro fleetbench`: the same golden-run
/// cross-section `interpbench` uses.
const FLEET_BENCH_SET: [&str; 8] = INTERP_BENCH_SET;

/// Host-adaptive scaling floor for `w` workers: the paper-grade floors
/// (1.7x at 2 workers, 3x at 4) only apply when the host actually has
/// that many CPUs; below that, workers time-slice one core and the
/// floor only asserts that fleet overhead stays bounded (>= 0.5x, i.e.
/// no worse than half the single-worker rate).
fn fleet_floor(host_cpus: usize, w: usize) -> f64 {
    if host_cpus >= w {
        match w {
            2 => 1.7,
            4 => 3.0,
            _ => 0.0,
        }
    } else if host_cpus >= 2 {
        1.7
    } else {
        0.5
    }
}

/// The `fleetbench` exhibit: runs the same campaign at 1/2/4 in-process
/// workers (fresh store each), reports trials/s, speedup over one
/// worker, scaling efficiency, and steal/reclaim counts, and proves
/// each store replays bitwise-identically to the buffered
/// single-process campaign. Writes `BENCH_fleet.json` (`--bench-out`)
/// with host-adaptive floors so CI can gate equivalence everywhere and
/// scaling where the host can express it.
fn fleetbench(cfg: &ReproConfig) -> String {
    let log = Logger::new(cfg.verbosity);
    let t = STORE_TECHNIQUE;
    let names: Vec<String> = if cfg.benchmarks.is_empty() {
        FLEET_BENCH_SET.iter().map(|s| s.to_string()).collect()
    } else {
        cfg.benchmarks.clone()
    };
    let ccfg = cfg.campaign_config();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let worker_counts = [1usize, 2, 4];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet scaling bench: {} trials, {} x register faults, {} host cpu(s), {} thread(s)/worker\n\
         {:<10} {:>7} {:>10} {:>10} {:>8} {:>6} {:>7} {:>8} {:>6}",
        ccfg.trials,
        t.label(),
        host_cpus,
        cfg.worker_threads.max(1),
        "benchmark",
        "workers",
        "wall ms",
        "trials/s",
        "speedup",
        "eff",
        "steals",
        "reclaims",
        "equal"
    );

    let mut entries: Vec<String> = Vec::new();
    let mut all_equivalent = true;
    let mut passing = 0usize;
    let mut total_steals = 0u64;
    let mut total_reclaims = 0u64;
    for name in &names {
        let Some(w) = workload_by_name(name) else {
            let _ = writeln!(out, "{name:<10} unknown benchmark, skipped");
            continue;
        };
        let p = prepare(w);
        // The buffered single-process campaign is the equivalence
        // reference for every worker count.
        log.debug(format!("[repro] fleetbench: {name} reference leg"));
        let (ref_result, ref_telemetry) =
            run_campaign_attributed(&*p.workload, p.module(t), &ccfg, Some(p.protection(t)));

        let mut walls: Vec<f64> = Vec::new();
        let mut rows: Vec<String> = Vec::new();
        let mut bench_equiv = true;
        for (k, &workers) in worker_counts.iter().enumerate() {
            let dir = std::env::temp_dir().join(format!(
                "softft_fleetbench_{}_{name}_{workers}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            log.debug(format!("[repro] fleetbench: {name} x{workers} workers"));
            let run = (|| -> std::io::Result<(softft_fleet::FleetReport, f64, bool)> {
                let store = RunStore::create(&dir, store_manifest(&ccfg))?;
                let started = Instant::now();
                let report = run_fleet_campaign(
                    &store,
                    &p,
                    t,
                    &ccfg,
                    FleetConfig {
                        workers,
                        worker_threads: cfg.worker_threads.max(1),
                        processes: false,
                        observatory: None,
                        heartbeat_ms: cfg.heartbeat_ms.max(1),
                        fail_after: Vec::new(),
                    },
                )?;
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let shards = replay(store.dir())?;
                let equivalent = shards.iter().any(|s| {
                    s.complete
                        && s.result == ref_result
                        && s.telemetry.records == ref_telemetry.records
                        && s.telemetry.metrics.to_json() == ref_telemetry.metrics.to_json()
                });
                Ok((report, wall_ms, equivalent))
            })();
            let _ = std::fs::remove_dir_all(&dir);
            let (report, wall_ms, equivalent) = match run {
                Ok(v) => v,
                Err(e) => {
                    let _ = writeln!(out, "{name:<10} {workers:>7} ERROR: {e}");
                    bench_equiv = false;
                    continue;
                }
            };
            walls.push(wall_ms);
            bench_equiv &= equivalent;
            all_equivalent &= equivalent;
            total_steals += report.steals;
            total_reclaims += report.reclaims;
            let speedup = walls[0] / wall_ms.max(1e-9);
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>10.1} {:>10.1} {:>7.2}x {:>6.2} {:>7} {:>8} {:>6}",
                if k == 0 { name.as_str() } else { "" },
                workers,
                wall_ms,
                per_sec(ccfg.trials as u64, wall_ms),
                speedup,
                speedup / workers as f64,
                report.steals,
                report.reclaims,
                if equivalent { "yes" } else { "NO" }
            );
            rows.push(format!(
                "        {{ \"workers\": {workers}, \"wall_ms\": {:.3}, \"trials_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"efficiency\": {:.3}, \"steals\": {}, \"reclaims\": {}, \
                 \"equivalent\": {} }}",
                wall_ms,
                per_sec(ccfg.trials as u64, wall_ms),
                speedup,
                speedup / workers as f64,
                report.steals,
                report.reclaims,
                equivalent
            ));
        }
        let speedup_at = |w: usize| -> f64 {
            worker_counts
                .iter()
                .position(|&x| x == w)
                .and_then(|i| walls.first().zip(walls.get(i)))
                .map_or(0.0, |(w1, wn)| w1 / wn.max(1e-9))
        };
        let (s2, s4) = (speedup_at(2), speedup_at(4));
        let floor_ok = walls.len() == worker_counts.len()
            && s2 >= fleet_floor(host_cpus, 2)
            && s4 >= fleet_floor(host_cpus, 4);
        passing += usize::from(floor_ok);
        entries.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"runs\": [\n{}\n      ],\n      \
             \"speedup_2\": {s2:.3},\n      \"speedup_4\": {s4:.3},\n      \
             \"floor_ok\": {floor_ok},\n      \"equivalent\": {bench_equiv}\n    }}",
            rows.join(",\n")
        ));
    }

    // The scaling gate passes when >= 3/4 of benchmarks (6 of the
    // default 8) clear their host-adaptive floors; equivalence must
    // hold everywhere, always.
    let required = entries.len().max(1).div_ceil(4) * 3;
    let scaling_ok = passing >= required;
    let _ = writeln!(
        out,
        "(every store must replay bitwise-identically; 'NO' in the last column is a bug)\n\
         floors (host-adaptive): {:.2}x @ 2 workers, {:.2}x @ 4 workers\n\
         scaling_ok: {scaling_ok} ({passing}/{} benchmarks passing, {required} required)  \
         all_equivalent: {all_equivalent}",
        fleet_floor(host_cpus, 2),
        fleet_floor(host_cpus, 4),
        entries.len()
    );

    let json = format!(
        "{{\n  \"schema\": \"softft.bench.fleet.v1\",\n  \"trials\": {},\n  \"seed\": {},\n  \
         \"technique\": \"{}\",\n  \"worker_threads\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"floors\": {{ \"2\": {:.3}, \"4\": {:.3} }},\n  \"benchmarks\": [\n{}\n  ],\n  \
         \"passing\": {passing},\n  \"required\": {required},\n  \"scaling_ok\": {scaling_ok},\n  \
         \"steals_total\": {total_steals},\n  \"reclaims_total\": {total_reclaims},\n  \
         \"all_equivalent\": {all_equivalent}\n}}\n",
        ccfg.trials,
        ccfg.seed,
        tech_slug(t),
        cfg.worker_threads.max(1),
        fleet_floor(host_cpus, 2),
        fleet_floor(host_cpus, 4),
        entries.join(",\n")
    );
    let path = cfg
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_fleet.json"));
    match std::fs::write(&path, json) {
        Ok(()) => log.info(format!("[repro] fleet bench written to {}", path.display())),
        Err(e) => log.error(format!(
            "[repro] failed to write fleet bench {}: {e}",
            path.display()
        )),
    }
    out
}

/// Renders one fleet observatory frame (already-parsed JSON from the
/// socket) as human text. JSONL mode passes the body through verbatim.
fn render_fleet_frame(v: &JsonValue) -> String {
    let mut out = String::new();
    let s = |k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string();
    let n = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let _ = writeln!(
        out,
        "Fleet observatory: {} {}/{} trials, {:.1}s elapsed, {} steal(s), {} reclaim(s)",
        s("label"),
        n("done"),
        n("total"),
        n("elapsed_ms") as f64 / 1e3,
        n("steals"),
        n("reclaims")
    );
    for w in v.get("workers").and_then(|x| x.as_array()).unwrap_or(&[]) {
        let alive = w.get("alive").and_then(|a| a.as_bool()).unwrap_or(true);
        let rate = match w.get("rate") {
            Some(JsonValue::Number(raw)) => raw.clone(),
            _ => "0".to_string(),
        };
        let _ = writeln!(
            out,
            "  worker {} {:>8} executed  {:>8}/s  {}",
            w.get("worker").and_then(|x| x.as_u64()).unwrap_or(0),
            w.get("executed").and_then(|x| x.as_u64()).unwrap_or(0),
            rate,
            if alive { "alive" } else { "DEAD" }
        );
    }
    let mix: Vec<String> = v
        .get("outcomes")
        .and_then(|x| x.as_array())
        .unwrap_or(&[])
        .iter()
        .filter_map(|o| {
            Some(format!(
                "{} {}",
                o.get("outcome")?.as_str()?,
                o.get("trials")?.as_u64()?
            ))
        })
        .collect();
    if !mix.is_empty() {
        let _ = writeln!(out, "  outcomes: {}", mix.join("  "));
    }
    let gaps: Vec<String> = v
        .get("gaps")
        .and_then(|x| x.as_array())
        .unwrap_or(&[])
        .iter()
        .filter_map(|g| {
            Some(format!(
                "{} {} ({} usdc / {} trials)",
                g.get("func")?.as_str()?,
                g.get("op")?.as_str()?,
                g.get("usdc")?.as_u64()?,
                g.get("trials")?.as_u64()?
            ))
        })
        .collect();
    if !gaps.is_empty() {
        let _ = writeln!(out, "  top gaps: {}", gaps.join(" | "));
    }
    out
}

/// `repro watch --connect ADDR`: renders a fleet coordinator's
/// observatory socket. One frame and exit by default; `--follow` keeps
/// rendering (to stderr) until the coordinator closes the stream, then
/// returns the final frame.
fn watch_connect(cfg: &ReproConfig, addr: &str) -> String {
    use std::io::Read as _;
    let mut stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return format!("watch: cannot connect to {addr}: {e}\n"),
    };
    let jsonl = cfg.watch_format == "jsonl";
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let mut last = String::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => {
                if last.is_empty() {
                    return format!("watch: read from {addr}: {e}\n");
                }
                break;
            }
        };
        dec.push(&buf[..n]);
        loop {
            let body = match dec.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(e) => return format!("watch: bad frame from {addr}: {e}\n"),
            };
            let frame = if jsonl {
                format!("{body}\n")
            } else {
                match JsonValue::parse(&body) {
                    Ok(v) => render_fleet_frame(&v),
                    Err(e) => return format!("watch: bad frame JSON from {addr}: {e}\n"),
                }
            };
            if !cfg.follow {
                return frame;
            }
            eprint!("{frame}");
            last = frame;
        }
    }
    last
}

/// Serializes an event stream the way `--telemetry` does, for the
/// byte-level half of the replay-equivalence check.
fn jsonl_events(events: &[softft_telemetry::TrialEvent]) -> serde_json::Result<String> {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_jsonl()?);
        s.push('\n');
    }
    Ok(s)
}

/// Replays the store and re-runs each *complete* shard's buffered
/// campaign, comparing results, per-trial records, attributed events
/// (structurally and as serialized JSONL bytes), aggregated metrics
/// (serialized form), and coverage maps. The closing
/// `replay_equivalent:` line is the CI gate.
fn verify_store(store: &RunStore, plan: &[PreparedBenchmark], ccfg: &CampaignConfig) -> String {
    let mut out = String::new();
    let shards = match replay(store.dir()) {
        Ok(s) => s,
        Err(e) => return format!("replay: ERROR: {e}\nreplay_equivalent: false\n"),
    };
    let mut all = true;
    let mut compared = 0usize;
    for shard in &shards {
        if !shard.complete {
            let _ = writeln!(out, "replay {:<24} skipped (incomplete shard)", shard.label);
            continue;
        }
        let Some(p) = plan.iter().find(|p| p.workload.name() == shard.benchmark) else {
            let _ = writeln!(
                out,
                "replay {:<24} skipped (benchmark missing)",
                shard.label
            );
            continue;
        };
        let t = shard.technique;
        let (result, telemetry) =
            run_campaign_attributed(&*p.workload, p.module(t), ccfg, Some(p.protection(t)));
        let cov = build_coverage(
            &shard.benchmark,
            t,
            p.module(t),
            p.protection(t),
            &result,
            &telemetry.records,
        );
        let mut same = shard.result == result
            && shard.telemetry.events == telemetry.events
            && shard.telemetry.records == telemetry.records
            && shard.telemetry.metrics.to_json() == telemetry.metrics.to_json()
            && shard.coverage == cov;
        if let (Ok(a), Ok(b)) = (
            jsonl_events(&shard.telemetry.events),
            jsonl_events(&telemetry.events),
        ) {
            same &= a == b;
        }
        all &= same;
        compared += 1;
        let _ = writeln!(
            out,
            "replay {:<24} {}",
            shard.label,
            if same {
                "identical to buffered run"
            } else {
                "DIVERGED from buffered run"
            }
        );
    }
    if compared == 0 {
        all = false;
        let _ = writeln!(out, "replay: no complete shards to verify");
    }
    let _ = writeln!(out, "replay_equivalent: {all}");
    out
}

/// Incremental observatory state for one shard: one tail per shard
/// file (primary plus fleet worker files), each positioned past the
/// frames already folded, plus the streaming aggregates.
struct WatchShard {
    meta: ShardMeta,
    tails: Vec<(String, ShardTail)>,
    seen: HashSet<u32>,
    outcomes: [u64; Outcome::CANONICAL.len()],
    cov: CoverageAccum,
    trigger_unreached: u64,
    exec_ns: u64,
    watchdog_ns: u64,
    watchdog_trials: u64,
    last_t_ms: u64,
}

impl WatchShard {
    fn new(meta: ShardMeta) -> WatchShard {
        WatchShard {
            meta,
            tails: Vec::new(),
            seen: HashSet::new(),
            outcomes: [0; Outcome::CANONICAL.len()],
            cov: CoverageAccum::new(),
            trigger_unreached: 0,
            exec_ns: 0,
            watchdog_ns: 0,
            watchdog_trials: 0,
            last_t_ms: 0,
        }
    }

    /// Tracks a tail for every file the shard lists. Fleet worker
    /// files can appear on a store mid-watch (the coordinator upserts
    /// them before dispatching), so this re-syncs every poll.
    fn sync_tails(&mut self, store: &RunStore) {
        let listed = std::iter::once(&self.meta.file).chain(self.meta.worker_files.iter());
        for f in listed {
            if !self.tails.iter().any(|(name, _)| name == f) {
                self.tails
                    .push((f.clone(), ShardTail::new(store.shard_path(f))));
            }
        }
    }

    /// Folds one persisted trial in, ignoring duplicates (a resumed run
    /// racing a crash, or a fleet steal/reclaim overlap) and
    /// out-of-plan indices.
    fn fold(&mut self, st: &softft_telemetry::StoredTrial, trials: u32) {
        if st.trial >= trials || self.seen.contains(&st.trial) {
            return;
        }
        let Some(rec) = record_from_json(&st.record) else {
            return;
        };
        self.seen.insert(st.trial);
        self.last_t_ms = self.last_t_ms.max(st.t_ms);
        self.exec_ns += st.exec_ns;
        if st.watchdog {
            self.watchdog_trials += 1;
            self.watchdog_ns += st.exec_ns;
        }
        if rec.injection.is_none() {
            self.trigger_unreached += 1;
        }
        if let Some(idx) = Outcome::CANONICAL.iter().position(|o| *o == rec.outcome) {
            self.outcomes[idx] += 1;
        }
        self.cov.add(&rec);
    }

    fn done(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Observed appending throughput: trials over the shard's recorded
    /// wall time (prior runs' cumulative total from the manifest, plus
    /// the live run's latest trial timestamp).
    fn rate(&self) -> f64 {
        let wall_ms = if self.meta.complete {
            self.meta.wall_ms
        } else {
            self.meta.wall_ms + self.last_t_ms
        };
        self.done() as f64 / (wall_ms.max(1) as f64 / 1e3)
    }

    fn watchdog_share(&self) -> f64 {
        self.watchdog_ns as f64 / self.exec_ns.max(1) as f64
    }

    /// Nonzero outcome counts in canonical order.
    fn outcome_mix(&self) -> Vec<(String, u64)> {
        Outcome::CANONICAL
            .iter()
            .zip(self.outcomes.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(o, n)| (o.label().to_string(), *n))
            .collect()
    }
}

/// Prepares (and caches) the benchmark a shard needs for coverage
/// attribution, then snapshots the shard's streaming accumulator into a
/// [`CoverageMap`]. Returns `None` for shards naming unknown benchmarks
/// or techniques (a foreign store).
fn shard_coverage(
    prepared: &mut HashMap<String, PreparedBenchmark>,
    s: &WatchShard,
) -> Option<(Technique, CoverageMap)> {
    let t = Technique::from_slug(&s.meta.technique)?;
    if !prepared.contains_key(&s.meta.benchmark) {
        let w = workload_by_name(&s.meta.benchmark)?;
        prepared.insert(s.meta.benchmark.clone(), prepare(w));
    }
    let p = &prepared[&s.meta.benchmark];
    Some((
        t,
        s.cov.build(
            &s.meta.benchmark,
            t,
            p.module(t),
            p.protection(t),
            s.done(),
            s.trigger_unreached,
        ),
    ))
}

/// Minimal JSON string escaping for the watch JSONL frames.
fn json_esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders one status frame over every shard, as human text or JSONL
/// (one parseable object per shard per frame).
fn render_watch_frame(
    cfg: &ReproConfig,
    manifest: &StoreManifest,
    prepared: &mut HashMap<String, PreparedBenchmark>,
    shards: &[WatchShard],
) -> String {
    let mut out = String::new();
    let jsonl = cfg.watch_format == "jsonl";
    if !jsonl {
        let _ = writeln!(
            out,
            "Campaign observatory: seed {:#x}, {} trials/shard, {} faults, {} shard(s)",
            manifest.seed,
            manifest.trials,
            manifest.fault_kind,
            shards.len()
        );
    }
    for s in shards {
        let done = s.done();
        let total = manifest.trials as u64;
        let rate = s.rate();
        let eta_s = if done >= total || rate <= 0.0 {
            0.0
        } else {
            (total - done) as f64 / rate
        };
        let complete = done >= total;
        let gaps = shard_coverage(prepared, s)
            .map(|(_, cov)| cov.gap_sites(10))
            .unwrap_or_default();
        if jsonl {
            let mix = s
                .outcome_mix()
                .into_iter()
                .map(|(label, n)| format!("\"{}\": {n}", json_esc(&label)))
                .collect::<Vec<_>>()
                .join(", ");
            let gap_objs = gaps
                .iter()
                .map(|g| {
                    format!(
                        "{{\"func\": \"{}\", \"inst\": {}, \"op\": \"{}\", \"trials\": {}, \"usdc\": {}, \"usdc_rate\": {:.4}}}",
                        json_esc(&g.func),
                        g.inst.map_or("null".to_string(), |i| i.to_string()),
                        json_esc(&g.op),
                        g.trials,
                        g.usdc,
                        g.usdc_rate
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "{{\"shard\": \"{}\", \"benchmark\": \"{}\", \"technique\": \"{}\", \
                 \"done\": {done}, \"total\": {total}, \"complete\": {complete}, \
                 \"trials_per_sec\": {rate:.2}, \"eta_s\": {eta_s:.1}, \
                 \"watchdog_trials\": {}, \"watchdog_spin_share\": {:.4}, \
                 \"outcomes\": {{{mix}}}, \"gaps\": [{gap_objs}]}}",
                json_esc(&s.meta.label),
                json_esc(&s.meta.benchmark),
                json_esc(&s.meta.technique),
                s.watchdog_trials,
                s.watchdog_share(),
            );
        } else {
            let _ = writeln!(
                out,
                "{:<28} {:>5}/{:<5} {:>8.1}/s  eta {:>6.1}s  {}",
                s.meta.label,
                done,
                total,
                rate,
                eta_s,
                if complete { "complete" } else { "running" }
            );
            let mix = s
                .outcome_mix()
                .into_iter()
                .map(|(label, n)| format!("{label} {n}"))
                .collect::<Vec<_>>()
                .join("  ");
            if !mix.is_empty() {
                let _ = writeln!(out, "  outcomes: {mix}");
            }
            if s.exec_ns > 0 {
                let _ = writeln!(
                    out,
                    "  watchdog-spin: {:.1}% of exec time ({} trial(s))",
                    s.watchdog_share() * 100.0,
                    s.watchdog_trials
                );
            }
            if !gaps.is_empty() {
                let top = gaps
                    .iter()
                    .map(|g| {
                        format!(
                            "{} {} ({} usdc / {} trials)",
                            g.func,
                            match g.inst {
                                Some(i) => format!("i{i} {}", g.op),
                                None => g.op.clone(),
                            },
                            g.usdc,
                            g.trials
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" | ");
                let _ = writeln!(out, "  top gaps: {top}");
            }
        }
    }
    out
}

/// The `watch` exhibit: renders a run store's status — live or archived
/// — from its manifest and shard tails. Without `--follow` it prints
/// one frame and exits; with `--follow` it re-polls twice a second,
/// printing frames to stderr, and returns the final frame once every
/// shard completes. `--html PATH` additionally writes a self-contained
/// observatory page (status table + coverage-so-far grids).
fn watch(cfg: &ReproConfig) -> String {
    if let Some(addr) = &cfg.connect {
        return watch_connect(cfg, addr);
    }
    let Some(dir) = cfg.store.as_ref().or(cfg.resume.as_ref()) else {
        return "watch: pass a run-store DIR (e.g. `repro watch runs/demo`) \
                or --connect ADDR for a live fleet\n"
            .to_string();
    };
    let log = Logger::new(cfg.verbosity);
    let mut prepared: HashMap<String, PreparedBenchmark> = HashMap::new();
    let mut shards: Vec<WatchShard> = Vec::new();
    loop {
        let store = match RunStore::open(dir) {
            Ok(s) => s,
            Err(e) => return format!("watch: cannot open run store {}: {e}\n", dir.display()),
        };
        // Re-read the manifest each poll: a live campaign upserts shard
        // entries before executing them, so new shards appear here.
        let manifest = store.manifest();
        for meta in &manifest.shards {
            match shards.iter_mut().find(|s| s.meta.label == meta.label) {
                Some(s) => s.meta = meta.clone(),
                None => shards.push(WatchShard::new(meta.clone())),
            }
        }
        for s in &mut shards {
            // Tails consume only complete frames; a mid-write frame
            // stays pending until its writer finishes it.
            s.sync_tails(&store);
            let mut batch = Vec::new();
            for (_, tail) in &mut s.tails {
                batch.extend(tail.poll().unwrap_or_default());
            }
            for st in &batch {
                s.fold(st, manifest.trials);
            }
        }
        let frame = render_watch_frame(cfg, &manifest, &mut prepared, &shards);
        let all_done =
            !shards.is_empty() && shards.iter().all(|s| s.done() >= manifest.trials as u64);
        if !cfg.follow || all_done {
            if let Some(path) = &cfg.html {
                let rows: Vec<crate::html::WatchRow> = shards
                    .iter()
                    .map(|s| crate::html::WatchRow {
                        label: s.meta.label.clone(),
                        done: s.done(),
                        total: manifest.trials as u64,
                        rate: s.rate(),
                        complete: s.done() >= manifest.trials as u64,
                        watchdog_share: s.watchdog_share(),
                        outcomes: s.outcome_mix(),
                    })
                    .collect();
                let grids: Vec<(String, Vec<(Technique, CoverageMap)>)> = shards
                    .iter()
                    .filter_map(|s| {
                        shard_coverage(&mut prepared, s)
                            .map(|tc| (s.meta.benchmark.clone(), vec![tc]))
                    })
                    .collect();
                match crate::html::write_watch(path, &dir.display().to_string(), &rows, &grids) {
                    Ok(()) => log.info(format!(
                        "[repro] observatory page written to {}",
                        path.display()
                    )),
                    Err(e) => log.error(format!(
                        "[repro] failed to write observatory page {}: {e}",
                        path.display()
                    )),
                }
            }
            return frame;
        }
        eprint!("{frame}");
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_parsing() {
        assert_eq!(Exhibit::parse("fig11"), Some(Exhibit::Fig11));
        assert_eq!(Exhibit::parse("table1"), Some(Exhibit::Table1));
        assert_eq!(Exhibit::parse("profile"), Some(Exhibit::Profile));
        assert_eq!(Exhibit::parse("all"), Some(Exhibit::All));
        assert_eq!(Exhibit::parse("fig99"), None);
    }

    #[test]
    fn exhibit_names_are_single_sourced() {
        // Every name in the table parses back to its paired variant,
        // and names are unique.
        let mut names: Vec<&str> = Vec::new();
        for (n, e) in EXHIBITS {
            assert_eq!(Exhibit::parse(n), Some(e), "{n}");
            names.push(n);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXHIBITS.len(), "duplicate exhibit names");

        // The usage helper covers the whole table.
        let joined = Exhibit::names_joined();
        for (n, _) in EXHIBITS {
            assert!(joined.split(' ').any(|s| s == n), "{n} missing from usage");
        }

        // The `repro` binary's doc comment must list every exhibit —
        // this is the drift guard that previously failed silently when
        // new exhibits were added. Tokenize the source so substrings
        // ("all" inside "falsepos") can't mask a missing name.
        let src = include_str!("bin/repro.rs");
        for (n, _) in EXHIBITS {
            assert!(
                src.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .any(|tok| tok == n),
                "exhibit `{n}` missing from crates/bench/src/bin/repro.rs"
            );
        }
    }

    #[test]
    fn cheap_exhibits_render() {
        let cfg = ReproConfig {
            trials: 10,
            benchmarks: vec!["tiff2bw".into()],
            ..ReproConfig::default()
        };
        let t1 = run_exhibit(Exhibit::Table1, &cfg);
        assert!(t1.contains("tiff2bw"));
        let t2 = run_exhibit(Exhibit::Table2, &cfg);
        assert!(t2.contains("issue width"));
        let f10 = run_exhibit(Exhibit::Fig10, &cfg);
        assert!(f10.contains("state vars"));
    }

    #[test]
    fn campaign_store_watch_and_verify_round_trip() {
        let dir = std::env::temp_dir().join(format!("softft_orch_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Start a persistent campaign, interrupted after 5 trials.
        let cfg = ReproConfig {
            trials: 12,
            benchmarks: vec!["tiff2bw".into()],
            threads: 2,
            store: Some(dir.clone()),
            trial_cap: Some(5),
            ..ReproConfig::default()
        };
        let out = run_exhibit(Exhibit::Campaign, &cfg);
        assert!(out.contains("Created run store"), "{out}");
        assert!(out.contains("(5 new this run)"), "{out}");
        assert!(out.contains("[incomplete]"), "{out}");

        // Resume finishes exactly the remaining trials; --verify proves
        // the replayed store matches a fresh buffered campaign.
        let cfg2 = ReproConfig {
            resume: Some(dir.clone()),
            verify: true,
            ..ReproConfig::default()
        };
        let out2 = run_exhibit(Exhibit::Campaign, &cfg2);
        assert!(out2.contains("Resuming run store"), "{out2}");
        assert!(out2.contains("(7 new this run)"), "{out2}");
        assert!(out2.contains("replay_equivalent: true"), "{out2}");

        // Archived watch renders in text, JSONL, and HTML.
        let html = dir.join("watch.html");
        let wcfg = ReproConfig {
            store: Some(dir.clone()),
            html: Some(html.clone()),
            ..ReproConfig::default()
        };
        let text = run_exhibit(Exhibit::Watch, &wcfg);
        assert!(text.contains("tiff2bw/dup-val"), "{text}");
        assert!(text.contains("complete"), "{text}");
        let jcfg = ReproConfig {
            store: Some(dir.clone()),
            watch_format: "jsonl".into(),
            ..ReproConfig::default()
        };
        let jsonl = run_exhibit(Exhibit::Watch, &jcfg);
        assert!(jsonl.contains("\"done\": 12"), "{jsonl}");
        assert!(jsonl.contains("\"complete\": true"), "{jsonl}");
        let page = std::fs::read_to_string(&html).expect("watch --html page");
        assert!(page.contains("tiff2bw/dup-val"), "missing shard row");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_campaign_exhibit_renders() {
        let cfg = ReproConfig {
            trials: 15,
            benchmarks: vec!["tiff2bw".into()],
            threads: 2,
            ..ReproConfig::default()
        };
        let f2 = run_exhibit(Exhibit::Fig2, &cfg);
        assert!(f2.contains("tiff2bw"), "{f2}");
        let f12 = run_exhibit(Exhibit::Fig12, &cfg);
        assert!(f12.contains("Dup only"), "{f12}");
    }
}
