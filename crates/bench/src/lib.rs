#![warn(missing_docs)]

//! # softft-bench
//!
//! Benchmark harness for the soft-ft reproduction:
//!
//! * the `repro` binary regenerates every table and figure of the
//!   paper's evaluation (run `repro all`, or a single exhibit like
//!   `repro fig11 --trials 1000`);
//! * criterion benches (`cargo bench`) measure the substrate itself —
//!   interpreter throughput, timing-model overhead ratios per technique,
//!   pass pipeline cost, and profiling-histogram insertion rates.
//!
//! This crate deliberately contains only orchestration; all measurement
//! logic lives in `softft-campaign`.

pub mod html;
pub mod orchestrate;

pub use orchestrate::{Exhibit, ReproConfig, EXHIBITS};
