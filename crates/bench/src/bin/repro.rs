//! `repro`: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! repro <exhibit> [--trials N] [--seed S] [--threads T] [--benchmarks a,b,c]
//!                 [--telemetry DIR] [--html PATH] [--snapshot-interval K|auto]
//!                 [--no-spin-proof] [--no-prune]
//!                 [--bench-out PATH] [--engine tree,decoded,fused]
//!                 [--progress text|jsonl] [-v|--verbose] [-q|--quiet]
//!                 [--store DIR] [--resume DIR] [--trial-cap N] [--verify]
//!                 [--format text|jsonl] [--follow] [--floor F]
//!                 [--workers N] [--worker-threads K] [--processes]
//!                 [--serve ADDR] [--connect ADDR] [--heartbeat-ms MS]
//!                 [--fail-after W:N] [DIR]
//! repro fleet worker --store DIR --label BENCH/TECH --worker-id N
//!                    [--worker-threads K] [--fail-after N]
//!
//! exhibits: table1 table2 fig1 fig2 fig6 fig10 fig11 fig12 fig13
//!           detect latency falsepos crossval ablate cfc recovery
//!           coverage perfbench interpbench profile campaign watch
//!           fleet fleetbench all
//! ```
//!
//! The `exhibits:` list above is checked against
//! [`softft_bench::EXHIBITS`] by a test (the runtime usage string is
//! *derived* from that table), so neither can silently drift when an
//! exhibit is added.

use softft_bench::{Exhibit, ReproConfig};
use softft_telemetry::{set_progress_sink, JsonlSink, Logger, TextSink, Verbosity};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    // Usage goes out at every verbosity level. The exhibit list is
    // derived from the same table `Exhibit::parse` reads.
    Logger::default().error(format!(
        "usage: repro <exhibit> [--trials N] [--seed S] [--threads T] [--benchmarks a,b,c] [--telemetry DIR] [--html PATH] [--snapshot-interval K|auto] [--no-spin-proof] [--no-prune] [--bench-out PATH] [--engine tree,decoded,fused] [--progress text|jsonl] [--store DIR] [--resume DIR] [--trial-cap N] [--verify] [--format text|jsonl] [--follow] [--floor F] [--workers N] [--worker-threads K] [--processes] [--serve ADDR] [--connect ADDR] [--heartbeat-ms MS] [--fail-after W:N] [-v|--verbose] [-q|--quiet] [DIR]\n\
         \x20      repro fleet worker --store DIR --label BENCH/TECH --worker-id N [--worker-threads K] [--fail-after N]\n\
         exhibits: {}",
        Exhibit::names_joined(),
    ));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        return usage();
    };
    let Some(exhibit) = Exhibit::parse(first) else {
        return usage();
    };
    let mut cfg = ReproConfig::default();
    let mut i = 1;
    // `repro fleet worker ...` is the internal child-process entry
    // point of a process-mode fleet; the bare `worker` word selects it.
    if exhibit == Exhibit::Fleet && args.get(1).map(String::as_str) == Some("worker") {
        cfg.fleet_worker = true;
        i = 2;
    }
    while i < args.len() {
        let flag = &args[i];
        // Level flags take no value.
        match flag.as_str() {
            "-v" | "--verbose" => {
                cfg.verbosity = Verbosity::Verbose;
                i += 1;
                continue;
            }
            "-q" | "--quiet" => {
                cfg.verbosity = Verbosity::Quiet;
                i += 1;
                continue;
            }
            // Re-run buffered campaigns against a completed store and
            // print the replay-equivalence verdict (CI greps it).
            "--verify" => {
                cfg.verify = true;
                i += 1;
                continue;
            }
            // Keep `watch` tailing a live store until it completes.
            "--follow" => {
                cfg.follow = true;
                i += 1;
                continue;
            }
            // Scheduling-optimization escape hatches (results are
            // bitwise identical either way; CI smoke-tests both).
            "--no-spin-proof" => {
                cfg.spin_proof = false;
                i += 1;
                continue;
            }
            "--no-prune" => {
                cfg.prune = false;
                i += 1;
                continue;
            }
            // Spawn `repro fleet worker` OS processes instead of
            // in-process pools.
            "--processes" => {
                cfg.processes = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        // A bare (non-flag) argument is a run-store directory, so
        // `repro watch runs/segm` reads naturally.
        if !flag.starts_with('-') {
            cfg.store = Some(flag.into());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match flag.as_str() {
            "--trials" => match value.parse() {
                Ok(v) => cfg.trials = v,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(v) => cfg.seed = v,
                Err(_) => return usage(),
            },
            "--threads" => match value.parse() {
                Ok(v) => cfg.threads = v,
                Err(_) => return usage(),
            },
            "--benchmarks" => {
                cfg.benchmarks = value.split(',').map(str::to_string).collect();
            }
            "--telemetry" => {
                cfg.telemetry = Some(value.into());
            }
            "--html" => {
                cfg.html = Some(value.into());
            }
            // `auto` derives the interval from observed convergence
            // latencies (CampaignConfig::SNAPSHOT_AUTO).
            "--snapshot-interval" => match value.as_str() {
                "auto" => cfg.snapshot_interval = u64::MAX,
                _ => match value.parse() {
                    Ok(v) => cfg.snapshot_interval = v,
                    Err(_) => return usage(),
                },
            },
            "--bench-out" => {
                cfg.bench_out = Some(value.into());
            }
            // Execution tiers for `interpbench` (comma-separated
            // labels; default compares all three).
            "--engine" => {
                cfg.engines = value.split(',').map(str::to_string).collect();
            }
            // Run-store surfaces: `campaign --store DIR` creates (or
            // continues) a persistent store, `--resume DIR` requires
            // one to exist, `--trial-cap N` bounds how many trials
            // this invocation appends (interrupt simulation), and
            // `watch --format` picks the status rendering.
            "--store" => {
                cfg.store = Some(value.into());
            }
            "--resume" => {
                cfg.resume = Some(value.into());
            }
            "--trial-cap" => match value.parse() {
                Ok(v) => cfg.trial_cap = Some(v),
                Err(_) => return usage(),
            },
            "--format" => match value.as_str() {
                "text" | "jsonl" => cfg.watch_format = value.clone(),
                _ => return usage(),
            },
            // `perfbench` speedup floor (CI passes a strict one; the
            // default 1.0 only asserts scheduling never loses).
            "--floor" => match value.parse() {
                Ok(v) => cfg.floor = v,
                Err(_) => return usage(),
            },
            // Fleet topology and liveness.
            "--workers" => match value.parse() {
                Ok(v) => cfg.workers = v,
                Err(_) => return usage(),
            },
            "--worker-threads" => match value.parse() {
                Ok(v) => cfg.worker_threads = v,
                Err(_) => return usage(),
            },
            "--heartbeat-ms" => match value.parse() {
                Ok(v) => cfg.heartbeat_ms = v,
                Err(_) => return usage(),
            },
            // Observatory socket: the fleet serves it (`--serve`), a
            // remote watch renders it (`--connect`).
            "--serve" => {
                cfg.serve = Some(value.clone());
            }
            "--connect" => {
                cfg.connect = Some(value.clone());
            }
            // Worker-process identity (internal `fleet worker` mode).
            "--label" => {
                cfg.label = Some(value.clone());
            }
            "--worker-id" => match value.parse() {
                Ok(v) => cfg.worker_id = v,
                Err(_) => return usage(),
            },
            // Reclaim-path test knob: `W:N[,W:N..]` on the coordinator
            // (worker W dies after N trials), bare `N` on a worker.
            "--fail-after" => {
                for part in value.split(',') {
                    let parsed = match part.split_once(':') {
                        Some((w, n)) => w.parse().ok().zip(n.parse().ok()),
                        None => part.parse().ok().map(|n| (0usize, n)),
                    };
                    match parsed {
                        Some(pair) => cfg.fail_after.push(pair),
                        None => return usage(),
                    }
                }
            }
            // Stream per-campaign progress (trials done/total,
            // trials/sec, outcome mix, ETA) to stderr while exhibits
            // run. Pure observation: results are identical with or
            // without a sink.
            "--progress" => match value.as_str() {
                "text" => set_progress_sink(Some(Arc::new(TextSink::new()))),
                "jsonl" => set_progress_sink(Some(Arc::new(JsonlSink::new()))),
                _ => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let log = Logger::new(cfg.verbosity);
    let started = std::time::Instant::now();
    print!("{}", softft_bench::orchestrate::run_exhibit(exhibit, &cfg));
    // Worker processes skip the trailer: their trials/seed come from
    // the store manifest, not these defaults, and fleet stderr is
    // noisy enough.
    if !cfg.fleet_worker {
        log.info(format!(
            "[repro: {} trials/benchmark, seed {}, {:.1}s]",
            cfg.trials,
            cfg.seed,
            started.elapsed().as_secs_f64()
        ));
    }
    ExitCode::SUCCESS
}
