//! Property tests for the DSL's on-the-fly SSA construction: randomly
//! shaped straight-line/branching/looping programs always produce valid
//! SSA, and structural invariants hold.

use proptest::prelude::*;
use softft_ir::dom::DomTree;
use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::IntCC;
use softft_ir::loops::LoopForest;
use softft_ir::verify::verify_function;
use softft_ir::{Function, Type};

/// A tiny program-shape description drawn by proptest.
#[derive(Debug, Clone)]
struct Shape {
    n_vars: usize,
    ops: Vec<u8>,
    loop_trips: i64,
    nest: bool,
    branch: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        1usize..4,
        proptest::collection::vec(0u8..6, 1..8),
        1i64..6,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n_vars, ops, loop_trips, nest, branch)| Shape {
            n_vars,
            ops,
            loop_trips,
            nest,
            branch,
        })
}

fn build(shape: &Shape) -> Function {
    FunctionDsl::build("prop", &[Type::I64], Some(Type::I64), |d| {
        let p = d.param(0);
        let vars: Vec<_> = (0..shape.n_vars)
            .map(|i| {
                let v = d.declare_var(Type::I64);
                let init = d.i64c(i as i64 + 1);
                d.set(v, init);
                v
            })
            .collect();
        let body = |d: &mut FunctionDsl, shape: &Shape, vars: &[softft_ir::dsl::Var]| {
            for (k, &op) in shape.ops.iter().enumerate() {
                let var = vars[k % vars.len()];
                let cur = d.get(var);
                let c = d.i64c(op as i64 + 1);
                let next = match op % 6 {
                    0 => d.add(cur, c),
                    1 => d.sub(cur, c),
                    2 => d.mul(cur, c),
                    3 => d.xor(cur, c),
                    4 => d.and_(cur, c),
                    _ => d.or_(cur, c),
                };
                d.set(var, next);
            }
            if shape.branch {
                let var = vars[0];
                let cur = d.get(var);
                let z = d.i64c(0);
                let cond = d.icmp(IntCC::Sgt, cur, z);
                let one = d.i64c(1);
                d.if_else(
                    cond,
                    |d| {
                        let c = d.get(var);
                        let n = d.add(c, one);
                        d.set(var, n);
                    },
                    |d| {
                        let c = d.get(var);
                        let n = d.sub(c, one);
                        d.set(var, n);
                    },
                );
            }
        };
        let (s, e) = (d.i64c(0), d.i64c(shape.loop_trips));
        d.for_range(s, e, |d, _| {
            body(d, shape, &vars);
            if shape.nest {
                let (s2, e2) = (d.i64c(0), d.i64c(2));
                d.for_range(s2, e2, |d, _| body(d, shape, &vars));
            }
        });
        let mut acc = p;
        for &v in &vars {
            let val = d.get(v);
            acc = d.add(acc, val);
        }
        d.ret(Some(acc));
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_functions_verify(shape in shape_strategy()) {
        let f = build(&shape);
        verify_function(&f).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn phis_only_in_join_blocks(shape in shape_strategy()) {
        let f = build(&shape);
        let preds = f.compute_preds();
        for i in f.live_inst_ids() {
            if f.inst(i).op.is_phi() {
                let b = f.inst(i).block;
                prop_assert!(
                    preds[b.index()].len() >= 2,
                    "phi {i} in block with {} preds",
                    preds[b.index()].len()
                );
            }
        }
    }

    #[test]
    fn loop_headers_match_loop_count(shape in shape_strategy()) {
        let f = build(&shape);
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        let expect = if shape.nest { 2 } else { 1 };
        prop_assert_eq!(lf.loops().len(), expect);
        // Every loop body block is dominated by its header.
        for l in lf.loops() {
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b));
            }
        }
    }

    #[test]
    fn no_dead_instructions_linked(shape in shape_strategy()) {
        let f = build(&shape);
        for b in f.block_ids() {
            for &i in &f.block(b).insts {
                prop_assert!(!f.inst(i).dead, "dead {i} linked in {b}");
            }
        }
    }

    #[test]
    fn printer_never_panics_and_names_all_blocks(shape in shape_strategy()) {
        let f = build(&shape);
        let text = softft_ir::printer::print_function(&f);
        for b in f.block_ids() {
            prop_assert!(text.contains(&format!("{b}:")), "missing {b}");
        }
    }
}
