//! A low-level, typed instruction builder.
//!
//! [`InstBuilder`] wraps a [`Function`] and a current insertion block,
//! performing type computation and light validation for each instruction.
//! The structured [`crate::dsl`] frontend builds on top of it.

use crate::entities::{BlockId, FuncId, InstId, ValueId};
use crate::function::Function;
use crate::inst::{BinOp, CastKind, CheckKind, FloatCC, IntCC, Op, Term, UnOp};
use crate::types::Type;

/// Builds instructions into a [`Function`], appending to a current block.
#[derive(Debug)]
pub struct InstBuilder<'f> {
    func: &'f mut Function,
    block: BlockId,
}

impl<'f> InstBuilder<'f> {
    /// Creates a builder positioned at `block`.
    pub fn new(func: &'f mut Function, block: BlockId) -> Self {
        InstBuilder { func, block }
    }

    /// The function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// Mutable access to the function (for uses outside instruction
    /// building, e.g. adding blocks).
    pub fn func_mut(&mut self) -> &mut Function {
        self.func
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.block
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.block = block;
    }

    /// Interned integer constant.
    pub fn iconst(&mut self, ty: Type, v: i64) -> ValueId {
        self.func.iconst(ty, v)
    }

    /// Interned float constant.
    pub fn fconst(&mut self, v: f64) -> ValueId {
        self.func.fconst(v)
    }

    fn ty(&self, v: ValueId) -> Type {
        self.func.value_type(v)
    }

    fn emit(&mut self, op: Op, result_ty: Option<Type>) -> InstId {
        self.func.append_inst(op, result_ty, self.block)
    }

    fn emit_val(&mut self, op: Op, result_ty: Type) -> ValueId {
        let i = self.emit(op, Some(result_ty));
        self.func.inst(i).result.expect("result registered")
    }

    /// Two-operand arithmetic. Result type equals the operand type.
    ///
    /// # Panics
    ///
    /// Panics if operand types mismatch or the float/int domain is wrong
    /// for `op`.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lt = self.ty(lhs);
        let rt = self.ty(rhs);
        assert_eq!(lt, rt, "binop operand types differ: {lt} vs {rt}");
        assert_eq!(
            op.is_float(),
            lt.is_float(),
            "binop {op:?} domain mismatch with operand type {lt}"
        );
        self.emit_val(Op::Bin { op, lhs, rhs }, lt)
    }

    /// Single-operand float math.
    ///
    /// # Panics
    ///
    /// Panics if the operand is not `F64`.
    pub fn un(&mut self, op: UnOp, arg: ValueId) -> ValueId {
        let ty = self.ty(arg);
        assert!(ty.is_float(), "unary float op on {ty}");
        self.emit_val(Op::Un { op, arg }, ty)
    }

    /// Integer comparison; result is `I1`.
    ///
    /// # Panics
    ///
    /// Panics if operand types differ or are floats.
    pub fn icmp(&mut self, pred: IntCC, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lt = self.ty(lhs);
        assert_eq!(lt, self.ty(rhs), "icmp operand types differ");
        assert!(lt.is_int(), "icmp on float operands");
        self.emit_val(Op::Icmp { pred, lhs, rhs }, Type::I1)
    }

    /// Float comparison; result is `I1`.
    ///
    /// # Panics
    ///
    /// Panics if operands are not both `F64`.
    pub fn fcmp(&mut self, pred: FloatCC, lhs: ValueId, rhs: ValueId) -> ValueId {
        assert!(
            self.ty(lhs).is_float() && self.ty(rhs).is_float(),
            "fcmp on ints"
        );
        self.emit_val(Op::Fcmp { pred, lhs, rhs }, Type::I1)
    }

    /// Type conversion to `to`.
    ///
    /// # Panics
    ///
    /// Panics on invalid conversions (e.g. `Trunc` to a wider type).
    pub fn cast(&mut self, kind: CastKind, arg: ValueId, to: Type) -> ValueId {
        let from = self.ty(arg);
        match kind {
            CastKind::Trunc => {
                assert!(
                    from.is_int() && to.is_int() && to.bits() < from.bits(),
                    "bad trunc {from}->{to}"
                );
            }
            CastKind::ZExt | CastKind::SExt => {
                assert!(
                    from.is_int() && to.is_int() && to.bits() > from.bits(),
                    "bad ext {from}->{to}"
                );
            }
            CastKind::FpToSi => assert!(from.is_float() && to.is_int(), "bad fptosi {from}->{to}"),
            CastKind::SiToFp => assert!(from.is_int() && to.is_float(), "bad sitofp {from}->{to}"),
        }
        self.emit_val(Op::Cast { kind, arg }, to)
    }

    /// `cond ? on_true : on_false`.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not `I1` or arm types differ.
    pub fn select(&mut self, cond: ValueId, on_true: ValueId, on_false: ValueId) -> ValueId {
        assert_eq!(self.ty(cond), Type::I1, "select condition must be i1");
        let tt = self.ty(on_true);
        assert_eq!(tt, self.ty(on_false), "select arm types differ");
        self.emit_val(
            Op::Select {
                cond,
                on_true,
                on_false,
            },
            tt,
        )
    }

    /// Loads a `ty` value from byte address `addr` (an `I64`).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not `I64`.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        assert_eq!(self.ty(addr), Type::I64, "load address must be i64");
        self.emit_val(Op::Load { addr }, ty)
    }

    /// Stores `value` at byte address `addr` (an `I64`).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not `I64`.
    pub fn store(&mut self, addr: ValueId, value: ValueId) {
        assert_eq!(self.ty(addr), Type::I64, "store address must be i64");
        self.emit(Op::Store { addr, value }, None);
    }

    /// Direct call; returns the result value if the callee (as declared by
    /// `ret`) returns one. The callee's signature is supplied by the caller
    /// because functions are built one at a time.
    pub fn call(&mut self, func: FuncId, args: &[ValueId], ret: Option<Type>) -> Option<ValueId> {
        let op = Op::Call {
            func,
            args: args.to_vec(),
        };
        match ret {
            Some(ty) => Some(self.emit_val(op, ty)),
            None => {
                self.emit(op, None);
                None
            }
        }
    }

    /// Inserts a detection check: traps with `SwDetect(kind)` when `cond`
    /// is 0.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not `I1`.
    pub fn check(&mut self, cond: ValueId, kind: CheckKind) {
        assert_eq!(self.ty(cond), Type::I1, "check condition must be i1");
        self.emit(Op::Check { cond, kind }, None);
    }

    /// Creates an empty phi of type `ty` at the start of `block`; operands
    /// are filled in later via [`Function::inst_mut`].
    pub fn empty_phi(&mut self, ty: Type, block: BlockId) -> (InstId, ValueId) {
        let i = self.func.create_inst(
            Op::Phi {
                incomings: Vec::new(),
            },
            Some(ty),
            block,
        );
        self.func.block_mut(block).insts.insert(0, i);
        let v = self.func.inst(i).result.expect("phi result");
        (i, v)
    }

    /// Sets the current block's terminator to an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.set_term(self.block, Term::Br(target));
    }

    /// Sets the current block's terminator to a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not `I1`.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        assert_eq!(self.ty(cond), Type::I1, "branch condition must be i1");
        self.func.set_term(
            self.block,
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            },
        );
    }

    /// Sets the current block's terminator to a return.
    pub fn ret(&mut self, v: Option<ValueId>) {
        self.func.set_term(self.block, Term::Ret(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_types_propagate() {
        let mut f = Function::new("f", &[Type::I32, Type::I32], Some(Type::I32));
        let (a, b) = (f.param(0), f.param(1));
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        let s = bld.bin(BinOp::Add, a, b);
        let c = bld.icmp(IntCC::Slt, s, a);
        let sel = bld.select(c, s, a);
        bld.ret(Some(sel));
        assert_eq!(f.value_type(s), Type::I32);
        assert_eq!(f.value_type(c), Type::I1);
        assert_eq!(f.value_type(sel), Type::I32);
        assert!(matches!(f.block(entry).term, Some(Term::Ret(Some(v))) if v == sel));
    }

    #[test]
    #[should_panic(expected = "binop operand types differ")]
    fn mixed_width_binop_panics() {
        let mut f = Function::new("f", &[Type::I32, Type::I64], None);
        let (a, b) = (f.param(0), f.param(1));
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        bld.bin(BinOp::Add, a, b);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn float_op_on_ints_panics() {
        let mut f = Function::new("f", &[Type::I32, Type::I32], None);
        let (a, b) = (f.param(0), f.param(1));
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        bld.bin(BinOp::FAdd, a, b);
    }

    #[test]
    fn casts_check_widths() {
        let mut f = Function::new("f", &[Type::I32], None);
        let a = f.param(0);
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        let w = bld.cast(CastKind::SExt, a, Type::I64);
        let n = bld.cast(CastKind::Trunc, w, Type::I16);
        let fl = bld.cast(CastKind::SiToFp, n, Type::F64);
        let back = bld.cast(CastKind::FpToSi, fl, Type::I32);
        assert_eq!(f.value_type(back), Type::I32);
    }

    #[test]
    #[should_panic(expected = "bad trunc")]
    fn widening_trunc_panics() {
        let mut f = Function::new("f", &[Type::I16], None);
        let a = f.param(0);
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        bld.cast(CastKind::Trunc, a, Type::I64);
    }

    #[test]
    fn memory_ops_require_i64_addresses() {
        let mut f = Function::new("f", &[Type::I64], None);
        let addr = f.param(0);
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        let v = bld.load(Type::I8, addr);
        assert_eq!(f.value_type(v), Type::I8);
    }

    #[test]
    #[should_panic(expected = "load address must be i64")]
    fn narrow_address_panics() {
        let mut f = Function::new("f", &[Type::I32], None);
        let addr = f.param(0);
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        bld.load(Type::I8, addr);
    }

    #[test]
    fn empty_phi_prepends() {
        let mut f = Function::new("f", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        let mut bld = InstBuilder::new(&mut f, entry);
        let x = bld.bin(BinOp::Add, p, p);
        let (phi_inst, phi_val) = bld.empty_phi(Type::I32, entry);
        assert_eq!(f.block(entry).insts[0], phi_inst);
        assert_eq!(f.value_type(phi_val), Type::I32);
        let _ = x;
    }
}
