//! Natural loop detection.
//!
//! The state-variable analysis of the paper identifies *phi nodes in loop
//! headers*; this module finds the loop headers (targets of back edges in
//! the dominator-tree sense) and the blocks belonging to each natural loop.

use crate::dom::DomTree;
use crate::entities::BlockId;
use crate::function::Function;
use std::collections::{HashMap, HashSet};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of one or more back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Source blocks of the back edges (latches).
    pub latches: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

/// All natural loops of a function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    header_set: HashSet<BlockId>,
    depth_of: HashMap<BlockId, u32>,
}

impl LoopForest {
    /// Finds the natural loops of `func` using `dom`.
    ///
    /// Back edges `n -> h` where `h` dominates `n` define loops; loops
    /// sharing a header are merged (as in classic dragon-book analysis).
    pub fn compute(func: &Function, dom: &DomTree) -> Self {
        let preds = func.compute_preds();
        let mut by_header: HashMap<BlockId, (HashSet<BlockId>, Vec<BlockId>)> = HashMap::new();

        for b in func.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            let succs = func
                .block(b)
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default();
            for s in succs {
                if dom.dominates(s, b) {
                    // Back edge b -> s. Collect the loop body by walking
                    // predecessors backwards from the latch to the header.
                    let entry = by_header.entry(s).or_insert_with(|| {
                        let mut set = HashSet::new();
                        set.insert(s);
                        (set, Vec::new())
                    });
                    entry.1.push(b);
                    let (body, _) = by_header.get_mut(&s).expect("just inserted");
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in &preds[x.index()] {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, (blocks, latches))| Loop {
                header,
                blocks,
                latches,
                depth: 1,
            })
            .collect();
        // Deterministic order (by header id) and nesting depths.
        loops.sort_by_key(|l| l.header);
        let snapshot: Vec<(BlockId, HashSet<BlockId>)> =
            loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
        for l in &mut loops {
            l.depth = snapshot
                .iter()
                .filter(|(h, blocks)| blocks.contains(&l.header) && *h != l.header)
                .count() as u32
                + 1;
        }
        let header_set = loops.iter().map(|l| l.header).collect();
        let mut depth_of: HashMap<BlockId, u32> = HashMap::new();
        for l in &loops {
            for &b in &l.blocks {
                let e = depth_of.entry(b).or_insert(0);
                *e = (*e).max(l.depth);
            }
        }
        LoopForest {
            loops,
            header_set,
            depth_of,
        }
    }

    /// The loops, ordered by header block id.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// True if `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.header_set.contains(&b)
    }

    /// Loop-nesting depth of a block (0 if not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth_of.get(&b).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::types::Type;

    fn simple_loop_fn() -> Function {
        FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(5));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        })
    }

    #[test]
    fn single_loop_detected() {
        let f = simple_loop_fn();
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, BlockId::new(1)); // DSL creates header first
        assert_eq!(l.depth, 1);
        assert!(l.blocks.contains(&BlockId::new(2))); // body
        assert!(!l.blocks.contains(&BlockId::new(3))); // exit
        assert!(lf.is_header(BlockId::new(1)));
        assert!(!lf.is_header(BlockId::new(2)));
        assert_eq!(lf.depth(BlockId::new(2)), 1);
        assert_eq!(lf.depth(BlockId::new(3)), 0);
    }

    #[test]
    fn nested_loops_have_depths() {
        let f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(3));
            d.for_range(s, e, |d, i| {
                let (s2, e2) = (d.i64c(0), d.i64c(3));
                d.for_range(s2, e2, |d, j| {
                    let a = d.get(acc);
                    let ij = d.mul(i, j);
                    let a2 = d.add(a, ij);
                    d.set(acc, a2);
                });
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert_eq!(lf.loops().len(), 2);
        let depths: Vec<u32> = lf.loops().iter().map(|l| l.depth).collect();
        assert!(depths.contains(&1) && depths.contains(&2));
        // The inner loop's blocks are inside the outer loop's body set.
        let outer = lf.loops().iter().find(|l| l.depth == 1).unwrap();
        let inner = lf.loops().iter().find(|l| l.depth == 2).unwrap();
        assert!(inner.blocks.iter().all(|b| outer.blocks.contains(b)));
    }

    #[test]
    fn straightline_has_no_loops() {
        let f = FunctionDsl::build("f", &[Type::I32], Some(Type::I32), |d| {
            let p = d.param(0);
            let q = d.add(p, p);
            d.ret(Some(q));
        });
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert!(lf.loops().is_empty());
    }
}
