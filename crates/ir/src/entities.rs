//! Entity references (index newtypes) for IR objects.
//!
//! All IR objects live in per-function (or per-module) arenas and are
//! referenced by small, copyable index types. Indices are only meaningful
//! relative to the arena that produced them.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index overflow"))
            }

            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// Reference to an SSA value within a [`crate::Function`].
    ValueId,
    "v"
);
entity_id!(
    /// Reference to an instruction within a [`crate::Function`].
    InstId,
    "i"
);
entity_id!(
    /// Reference to a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
entity_id!(
    /// Reference to a function within a [`crate::Module`].
    FuncId,
    "fn"
);
entity_id!(
    /// Reference to a global data region within a [`crate::Module`].
    GlobalId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_indices() {
        let v = ValueId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(format!("{v}"), "v17");
        assert_eq!(format!("{v:?}"), "v17");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert_eq!(InstId::new(3), InstId(3));
    }

    #[test]
    #[should_panic(expected = "entity index overflow")]
    fn id_overflow_panics() {
        let _ = ValueId::new(usize::MAX);
    }
}
