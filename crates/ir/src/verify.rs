//! Structural and SSA verification.

use crate::dom::DomTree;
use crate::entities::{BlockId, InstId, ValueId};
use crate::function::{Function, ValueKind};
use crate::inst::{Op, Term};
use crate::module::Module;
use crate::types::Type;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification failed in `{}`: {}",
            self.func, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Callable signatures by function index: parameter types and return.
type CalleeSigs = HashMap<usize, (Vec<Type>, Option<Type>)>;

struct Checker<'f> {
    func: &'f Function,
    errors: Vec<String>,
}

impl<'f> Checker<'f> {
    fn err(&mut self, msg: impl Into<String>) {
        self.errors.push(msg.into());
    }

    fn check_value_ref(&mut self, v: ValueId, ctx: &str) {
        if v.index() >= self.func.num_values() {
            self.err(format!("{ctx}: value {v} out of range"));
            return;
        }
        if let ValueKind::Inst(i) = self.func.value(v).kind {
            if self.func.inst(i).dead {
                self.err(format!(
                    "{ctx}: value {v} is the result of dead instruction {i}"
                ));
            }
        }
    }

    fn run(&mut self, callee_sigs: Option<&CalleeSigs>) {
        let func = self.func;

        // Every block terminated; phis form a prefix; inst.block backlinks.
        for b in func.block_ids() {
            let data = func.block(b);
            if data.term.is_none() {
                self.err(format!("block {b} has no terminator"));
            }
            let mut seen_non_phi = false;
            for &i in &data.insts {
                let inst = func.inst(i);
                if inst.dead {
                    self.err(format!("dead instruction {i} still linked in {b}"));
                }
                if inst.block != b {
                    self.err(format!("instruction {i} backlink {} != {b}", inst.block));
                }
                if inst.op.is_phi() {
                    if seen_non_phi {
                        self.err(format!("phi {i} appears after non-phi instructions in {b}"));
                    }
                } else {
                    seen_non_phi = true;
                }
            }
            if let Some(t) = &data.term {
                for s in t.successors() {
                    if s.index() >= func.num_blocks() {
                        self.err(format!("terminator of {b} targets out-of-range {s}"));
                    }
                }
            }
        }

        // Type checks and operand validity.
        let mut ops = Vec::new();
        for i in func.live_inst_ids() {
            let inst = func.inst(i);
            ops.clear();
            inst.op.operands(&mut ops);
            for &v in &ops {
                self.check_value_ref(v, &format!("inst {i}"));
            }
            self.check_types(i);
            if let Op::Call { func: callee, args } = &inst.op {
                if let Some(sigs) = callee_sigs {
                    match sigs.get(&callee.index()) {
                        None => self.err(format!("inst {i}: call to unknown function {callee}")),
                        Some((params, ret)) => {
                            if params.len() != args.len() {
                                self.err(format!(
                                    "inst {i}: call arity {} != {}",
                                    args.len(),
                                    params.len()
                                ));
                            } else {
                                for (k, (&a, &p)) in args.iter().zip(params).enumerate() {
                                    if a.index() < func.num_values() && func.value_type(a) != p {
                                        self.err(format!(
                                            "inst {i}: call arg {k} type {} != param type {p}",
                                            func.value_type(a)
                                        ));
                                    }
                                }
                            }
                            match (inst.result, ret) {
                                (Some(r), Some(rt)) => {
                                    if func.value_type(r) != *rt {
                                        self.err(format!("inst {i}: call result type mismatch"));
                                    }
                                }
                                (Some(_), None) => self.err(format!(
                                    "inst {i}: call has result but callee returns none"
                                )),
                                (None, Some(_)) => { /* discarding a result is allowed */ }
                                (None, None) => {}
                            }
                        }
                    }
                }
            }
        }

        // Terminator operand checks.
        for b in func.block_ids() {
            if let Some(term) = &func.block(b).term {
                match term {
                    Term::CondBr { cond, .. } => {
                        self.check_value_ref(*cond, &format!("terminator of {b}"));
                        if cond.index() < func.num_values() && func.value_type(*cond) != Type::I1 {
                            self.err(format!("terminator of {b}: condition is not i1"));
                        }
                    }
                    Term::Ret(Some(v)) => {
                        self.check_value_ref(*v, &format!("ret of {b}"));
                        match func.ret {
                            None => {
                                self.err(format!("ret of {b} returns a value but function is void"))
                            }
                            Some(rt) => {
                                if v.index() < func.num_values() && func.value_type(*v) != rt {
                                    self.err(format!(
                                        "ret of {b}: type {} != declared {rt}",
                                        func.value_type(*v)
                                    ));
                                }
                            }
                        }
                    }
                    Term::Ret(None) => {
                        if func.ret.is_some() {
                            self.err(format!(
                                "ret of {b} returns nothing but function declares a return type"
                            ));
                        }
                    }
                    Term::Br(_) => {}
                }
            }
        }

        // Phi incoming blocks match predecessors exactly.
        let preds = func.compute_preds();
        for i in func.live_inst_ids() {
            if let Op::Phi { incomings } = &func.inst(i).op {
                let b = func.inst(i).block;
                let expect: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
                let got: HashSet<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                if got != expect {
                    self.err(format!(
                        "phi {i} in {b}: incoming blocks {got:?} != predecessors {expect:?}"
                    ));
                }
                if incomings.len() != expect.len() {
                    self.err(format!("phi {i} in {b}: duplicate incoming blocks"));
                }
                if let Some(r) = func.inst(i).result {
                    let rt = func.value_type(r);
                    for (p, v) in incomings {
                        if v.index() < func.num_values() && func.value_type(*v) != rt {
                            self.err(format!(
                                "phi {i}: incoming from {p} has type {} != {rt}",
                                func.value_type(*v)
                            ));
                        }
                    }
                }
            }
        }

        // SSA dominance: defs dominate uses.
        self.check_dominance(&preds);
    }

    fn check_types(&mut self, i: InstId) {
        let func = self.func;
        let inst = func.inst(i);
        let vt = |v: ValueId| func.value_type(v);
        match &inst.op {
            Op::Bin { op, lhs, rhs } => {
                if vt(*lhs) != vt(*rhs) {
                    self.err(format!("inst {i}: binop operand types differ"));
                }
                if op.is_float() != vt(*lhs).is_float() {
                    self.err(format!("inst {i}: binop domain mismatch"));
                }
                if let Some(r) = inst.result {
                    if vt(r) != vt(*lhs) {
                        self.err(format!("inst {i}: binop result type mismatch"));
                    }
                }
            }
            Op::Un { arg, .. } => {
                if !vt(*arg).is_float() {
                    self.err(format!("inst {i}: unary float op on integer"));
                }
            }
            Op::Icmp { lhs, rhs, .. } => {
                if vt(*lhs) != vt(*rhs) || vt(*lhs).is_float() {
                    self.err(format!("inst {i}: bad icmp operand types"));
                }
            }
            Op::Fcmp { lhs, rhs, .. } => {
                if !vt(*lhs).is_float() || !vt(*rhs).is_float() {
                    self.err(format!("inst {i}: fcmp on integers"));
                }
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                if vt(*cond) != Type::I1 {
                    self.err(format!("inst {i}: select condition not i1"));
                }
                if vt(*on_true) != vt(*on_false) {
                    self.err(format!("inst {i}: select arm types differ"));
                }
            }
            Op::Load { addr } => {
                if vt(*addr) != Type::I64 {
                    self.err(format!("inst {i}: load address not i64"));
                }
                if inst.result.is_none() {
                    self.err(format!("inst {i}: load without result"));
                }
            }
            Op::Store { addr, .. } => {
                if vt(*addr) != Type::I64 {
                    self.err(format!("inst {i}: store address not i64"));
                }
            }
            Op::Check { cond, .. } => {
                if vt(*cond) != Type::I1 {
                    self.err(format!("inst {i}: check condition not i1"));
                }
            }
            Op::Cast { .. } | Op::Call { .. } | Op::Phi { .. } => {}
        }
    }

    fn check_dominance(&mut self, preds: &[Vec<BlockId>]) {
        let func = self.func;
        let dom = DomTree::compute(func);

        // Position of each instruction within its block for intra-block order.
        let mut pos: HashMap<InstId, usize> = HashMap::new();
        for b in func.block_ids() {
            for (k, &i) in func.block(b).insts.iter().enumerate() {
                pos.insert(i, k);
            }
        }

        let def_site = |v: ValueId| -> Option<(BlockId, Option<usize>)> {
            match func.value(v).kind {
                ValueKind::Param(_) | ValueKind::Const(_) => None, // always available
                ValueKind::Inst(di) => {
                    let b = func.inst(di).block;
                    Some((b, pos.get(&di).copied()))
                }
            }
        };

        let mut ops = Vec::new();
        for i in func.live_inst_ids() {
            let b = func.inst(i).block;
            if !dom.is_reachable(b) {
                continue;
            }
            if let Op::Phi { incomings } = &func.inst(i).op {
                // Each incoming value must dominate the end of its pred block.
                for (p, v) in incomings {
                    if let Some((db, _)) = def_site(*v) {
                        if !dom.is_reachable(*p) {
                            continue;
                        }
                        if !dom.dominates(db, *p) {
                            self.err(format!(
                                "phi {i}: incoming {v} (defined in {db}) does not dominate pred {p}"
                            ));
                        }
                    }
                }
                continue;
            }
            ops.clear();
            func.inst(i).op.operands(&mut ops);
            for &v in &ops {
                if let Some((db, dpos)) = def_site(v) {
                    if db == b {
                        let upos = pos.get(&i).copied().unwrap_or(usize::MAX);
                        if dpos.is_none_or(|dp| dp >= upos) {
                            self.err(format!("inst {i}: uses {v} before its definition in {b}"));
                        }
                    } else if !dom.dominates(db, b) {
                        self.err(format!(
                            "inst {i} in {b}: operand {v} defined in non-dominating {db}"
                        ));
                    }
                }
            }
        }
        let _ = preds;
    }
}

/// Verifies one function (no cross-function signature checks).
///
/// # Errors
///
/// Returns the first batch of violations found.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let mut c = Checker {
        func,
        errors: Vec::new(),
    };
    c.run(None);
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(VerifyError {
            func: func.name.clone(),
            message: c.errors.join("; "),
        })
    }
}

/// Verifies a whole module, including call-site signatures.
///
/// # Errors
///
/// Returns the violations of the first offending function.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    let sigs: HashMap<usize, (Vec<Type>, Option<Type>)> = module
        .functions()
        .iter()
        .enumerate()
        .map(|(i, f)| (i, (f.params.clone(), f.ret)))
        .collect();
    for f in module.functions() {
        let mut c = Checker {
            func: f,
            errors: Vec::new(),
        };
        c.run(Some(&sigs));
        if !c.errors.is_empty() {
            return Err(VerifyError {
                func: f.name.clone(),
                message: c.errors.join("; "),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::inst::{BinOp, IntCC};

    #[test]
    fn valid_function_passes() {
        let f = FunctionDsl::build("ok", &[Type::I32], Some(Type::I32), |d| {
            let p = d.param(0);
            let one = d.i32c(1);
            let c = d.icmp(IntCC::Sgt, p, one);
            let x = d.declare_var(Type::I32);
            d.if_else(c, |d| d.set(x, one), |d| d.set(x, p));
            let xv = d.get(x);
            d.ret(Some(xv));
        });
        verify_function(&f).unwrap();
    }

    #[test]
    fn missing_terminator_detected() {
        let f = Function::new("bad", &[], None);
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("no terminator"), "{e}");
    }

    #[test]
    fn use_before_def_in_block_detected() {
        let mut f = Function::new("bad", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        // Create two adds; make the first use the second's result.
        let a1 = f.append_inst(
            Op::Bin {
                op: BinOp::Add,
                lhs: p,
                rhs: p,
            },
            Some(Type::I32),
            entry,
        );
        let a2 = f.append_inst(
            Op::Bin {
                op: BinOp::Add,
                lhs: p,
                rhs: p,
            },
            Some(Type::I32),
            entry,
        );
        let r2 = f.inst(a2).result.unwrap();
        if let Op::Bin { lhs, .. } = &mut f.inst_mut(a1).op {
            *lhs = r2;
        }
        f.set_term(entry, crate::Term::Ret(None));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("before its definition"), "{e}");
    }

    #[test]
    fn dangling_dead_reference_detected() {
        let mut f = Function::new("bad", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        let a1 = f.append_inst(
            Op::Bin {
                op: BinOp::Add,
                lhs: p,
                rhs: p,
            },
            Some(Type::I32),
            entry,
        );
        let r1 = f.inst(a1).result.unwrap();
        f.append_inst(
            Op::Bin {
                op: BinOp::Add,
                lhs: r1,
                rhs: r1,
            },
            Some(Type::I32),
            entry,
        );
        f.remove_inst(a1);
        f.set_term(entry, crate::Term::Ret(None));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("dead instruction"), "{e}");
    }

    #[test]
    fn phi_incoming_mismatch_detected() {
        let mut f = Function::new("bad", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        let next = f.add_block();
        f.set_term(entry, crate::Term::Br(next));
        // Phi claims an incoming from a non-predecessor (next itself).
        f.append_inst(
            Op::Phi {
                incomings: vec![(next, p)],
            },
            Some(Type::I32),
            next,
        );
        f.set_term(next, crate::Term::Ret(None));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("incoming blocks"), "{e}");
    }

    #[test]
    fn ret_type_mismatch_detected() {
        let mut f = Function::new("bad", &[Type::I32], Some(Type::I64));
        let p = f.param(0);
        f.set_term(f.entry(), crate::Term::Ret(Some(p)));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("declared"), "{e}");
    }

    #[test]
    fn module_call_signature_checked() {
        let mut m = Module::new("m");
        let callee = FunctionDsl::build("callee", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            d.ret(Some(p));
        });
        let callee_id = m.add_function(callee);
        let caller = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let arg = d.i32c(3); // wrong type: i32 instead of i64
            let r = d.call(callee_id, &[arg], Some(Type::I64)).unwrap();
            d.ret(Some(r));
        });
        m.add_function(caller);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("call arg"), "{e}");
    }
}
