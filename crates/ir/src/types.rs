//! Value types and constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar type of an SSA value.
///
/// The IR is deliberately small: integers of four widths, a 1-bit boolean,
/// and IEEE-754 double floats. Addresses are plain `I64` byte offsets into
/// the module's linear memory, which keeps memory instructions simple and
/// makes out-of-bounds symptoms (the paper's `HWDetect` category) easy to
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 1-bit boolean (comparison results, check conditions).
    I1,
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer; also used for memory addresses.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
}

impl Type {
    /// Bit width of the type (64 for `F64`).
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 | Type::F64 => 64,
        }
    }

    /// Size in bytes when stored to memory (`I1` stores as one byte).
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 => 8,
        }
    }

    /// True for all integer types, including `I1`.
    #[inline]
    pub fn is_int(self) -> bool {
        !matches!(self, Type::F64)
    }

    /// True for `F64`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64)
    }

    /// Sign-extends `raw` (an `N`-bit pattern in the low bits) to `i64`
    /// according to this type's width. For `F64` the bits are returned
    /// unchanged.
    #[inline]
    pub fn sign_extend(self, raw: u64) -> i64 {
        match self {
            Type::I1 => (raw & 1) as i64,
            Type::I8 => raw as u8 as i8 as i64,
            Type::I16 => raw as u16 as i16 as i64,
            Type::I32 => raw as u32 as i32 as i64,
            Type::I64 | Type::F64 => raw as i64,
        }
    }

    /// Truncates `v` to this type's width, returning the canonical
    /// sign-extended representation used by the VM.
    #[inline]
    pub fn canon(self, v: i64) -> i64 {
        self.sign_extend(v as u64)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A typed constant.
///
/// Integer payloads are stored canonically sign-extended to `i64`; the
/// associated [`Type`] records the width.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Const {
    /// An integer constant of the given type.
    Int(i64, Type),
    /// A double-precision float constant.
    F64(f64),
}

impl Const {
    /// The type of this constant.
    #[inline]
    pub fn ty(self) -> Type {
        match self {
            Const::Int(_, ty) => ty,
            Const::F64(_) => Type::F64,
        }
    }

    /// Raw 64-bit payload as the VM stores it (sign-extended integers,
    /// float bit patterns).
    #[inline]
    pub fn bits(self) -> u64 {
        match self {
            Const::Int(v, _) => v as u64,
            Const::F64(v) => v.to_bits(),
        }
    }
}

/// A key for hashing/interning constants (floats compared by bit pattern).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConstKey(pub u64, pub Type);

impl From<Const> for ConstKey {
    fn from(c: Const) -> Self {
        ConstKey(c.bits(), c.ty())
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v, ty) => write!(f, "{v}_{ty}"),
            Const::F64(v) => write!(f, "{v}_f64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_sizes() {
        assert_eq!(Type::I1.bits(), 1);
        assert_eq!(Type::I8.bytes(), 1);
        assert_eq!(Type::I16.bytes(), 2);
        assert_eq!(Type::I32.bits(), 32);
        assert_eq!(Type::F64.bytes(), 8);
        assert!(Type::F64.is_float());
        assert!(Type::I64.is_int());
        assert!(!Type::F64.is_int());
    }

    #[test]
    fn sign_extension_canonicalizes() {
        assert_eq!(Type::I8.sign_extend(0xFF), -1);
        assert_eq!(Type::I8.sign_extend(0x7F), 127);
        assert_eq!(Type::I16.canon(0x1_0000), 0);
        assert_eq!(Type::I32.canon(-1), -1);
        assert_eq!(Type::I1.sign_extend(3), 1);
    }

    #[test]
    fn const_bits_roundtrip() {
        let c = Const::Int(-5, Type::I32);
        assert_eq!(c.ty(), Type::I32);
        assert_eq!(c.bits() as i64, -5);
        let f = Const::F64(1.5);
        assert_eq!(f64::from_bits(f.bits()), 1.5);
        assert_eq!(ConstKey::from(c), ConstKey((-5i64) as u64, Type::I32));
    }
}
