//! Human-readable textual dump of functions and modules.

use crate::entities::ValueId;
use crate::function::{Function, ValueKind};
use crate::inst::Op;
use crate::module::Module;
use std::fmt::Write as _;

fn fmt_value(func: &Function, v: ValueId) -> String {
    match func.value(v).kind {
        ValueKind::Const(c) => format!("{c}"),
        ValueKind::Param(n) => format!("p{n}"),
        ValueKind::Inst(_) => format!("{v}"),
    }
}

/// Renders one function as text.
///
/// The format is for humans and tests; there is no parser. Dead
/// instructions are omitted.
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("p{i}: {t}"))
        .collect();
    let ret = func.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    let _ = writeln!(out, "func @{}({}){} {{", func.name, params.join(", "), ret);
    for b in func.block_ids() {
        let _ = writeln!(out, "{b}:");
        for &i in &func.block(b).insts {
            let inst = func.inst(i);
            if inst.dead {
                continue;
            }
            let mut rhs = String::new();
            match &inst.op {
                Op::Phi { incomings } => {
                    let parts: Vec<String> = incomings
                        .iter()
                        .map(|(p, v)| format!("[{p}: {}]", fmt_value(func, *v)))
                        .collect();
                    let _ = write!(rhs, "phi {}", parts.join(", "));
                }
                Op::Icmp { pred, lhs, rhs: r } => {
                    let _ = write!(
                        rhs,
                        "icmp.{pred:?} {}, {}",
                        fmt_value(func, *lhs),
                        fmt_value(func, *r)
                    );
                }
                Op::Fcmp { pred, lhs, rhs: r } => {
                    let _ = write!(
                        rhs,
                        "fcmp.{pred:?} {}, {}",
                        fmt_value(func, *lhs),
                        fmt_value(func, *r)
                    );
                }
                Op::Check { cond, kind } => {
                    let _ = write!(rhs, "check.{kind:?} {}", fmt_value(func, *cond));
                }
                Op::Call { func: fid, args } => {
                    let a: Vec<String> = args.iter().map(|&v| fmt_value(func, v)).collect();
                    let _ = write!(rhs, "call {fid}({})", a.join(", "));
                }
                op => {
                    let ops: Vec<String> = op
                        .operand_vec()
                        .into_iter()
                        .map(|v| fmt_value(func, v))
                        .collect();
                    let _ = write!(rhs, "{} {}", op.mnemonic(), ops.join(", "));
                }
            }
            match inst.result {
                Some(r) => {
                    let ty = func.value_type(r);
                    let _ = writeln!(out, "  {r}: {ty} = {rhs}");
                }
                None => {
                    let _ = writeln!(out, "  {rhs}");
                }
            }
        }
        if let Some(t) = &func.block(b).term {
            let _ = writeln!(out, "  {t}");
        } else {
            let _ = writeln!(out, "  <no terminator>");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module (globals then functions).
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module @{} {{", module.name);
    for g in module.globals() {
        let _ = writeln!(
            out,
            "  global @{} : {} bytes @ {:#x}{}",
            g.name,
            g.size,
            g.addr,
            if g.init.is_empty() {
                ""
            } else {
                " (initialized)"
            }
        );
    }
    let _ = writeln!(out, "}}");
    for f in module.functions() {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::types::Type;

    #[test]
    fn printed_function_contains_structure() {
        let f = FunctionDsl::build("demo", &[Type::I64], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let p = d.param(0);
            let s = d.i64c(0);
            d.for_range(s, p, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let text = print_function(&f);
        assert!(text.contains("func @demo(p0: i64) -> i64 {"), "{text}");
        assert!(text.contains("phi"), "{text}");
        assert!(text.contains("condbr"), "{text}");
        assert!(text.contains("ret"), "{text}");
        assert!(text.contains("add"), "{text}");
    }

    #[test]
    fn printed_module_lists_globals() {
        let mut m = Module::new("m");
        m.add_global_init("tab", 32, vec![1, 2]);
        let f = FunctionDsl::build("main", &[], None, |d| d.ret(None));
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("module @m"), "{text}");
        assert!(text.contains("global @tab : 32 bytes"), "{text}");
        assert!(text.contains("(initialized)"), "{text}");
        assert!(text.contains("func @main"), "{text}");
    }
}
