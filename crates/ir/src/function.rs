//! Functions: arenas of values, instructions and basic blocks.

use crate::entities::{BlockId, InstId, ValueId};
use crate::inst::{Op, Term};
use crate::types::{Const, ConstKey, Type};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How an SSA value is defined.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ValueKind {
    /// The `n`-th function parameter.
    Param(u32),
    /// An interned constant.
    Const(Const),
    /// The result of an instruction.
    Inst(InstId),
}

/// A value table entry: definition plus type.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValueData {
    /// How the value is defined.
    pub kind: ValueKind,
    /// Scalar type of the value.
    pub ty: Type,
}

/// An instruction table entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstData {
    /// The operation.
    pub op: Op,
    /// Result value, if the instruction produces one.
    pub result: Option<ValueId>,
    /// Enclosing block (kept in sync by insertion APIs).
    pub block: BlockId,
    /// True once the instruction has been unlinked (e.g. a removed trivial
    /// phi). Dead instructions are skipped by analyses and the verifier
    /// rejects references to their results.
    pub dead: bool,
}

/// A basic block: an ordered list of instructions plus one terminator.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockData {
    /// Instructions in execution order. Phis must form a prefix.
    pub insts: Vec<InstId>,
    /// The terminator; `None` only while the block is under construction.
    pub term: Option<Term>,
}

/// A function: SSA values, instructions, and a CFG of basic blocks.
///
/// `Function` is a passive arena with mutation helpers; richer construction
/// goes through [`crate::builder::InstBuilder`] or the structured
/// [`crate::dsl::FunctionDsl`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name (unique within a module).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, if any.
    pub ret: Option<Type>,
    values: Vec<ValueData>,
    insts: Vec<InstData>,
    blocks: Vec<BlockData>,
    entry: BlockId,
    #[serde(skip)]
    const_cache: HashMap<ConstKey, ValueId>,
    param_values: Vec<ValueId>,
}

impl Function {
    /// Creates an empty function with an entry block and one SSA value per
    /// parameter.
    pub fn new(name: impl Into<String>, params: &[Type], ret: Option<Type>) -> Self {
        let mut f = Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            values: Vec::new(),
            insts: Vec::new(),
            blocks: vec![BlockData::default()],
            entry: BlockId::new(0),
            const_cache: HashMap::new(),
            param_values: Vec::new(),
        };
        for (i, &ty) in params.iter().enumerate() {
            let v = f.push_value(ValueData {
                kind: ValueKind::Param(i as u32),
                ty,
            });
            f.param_values.push(v);
        }
        f
    }

    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// SSA value for the `n`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn param(&self, n: usize) -> ValueId {
        self.param_values[n]
    }

    /// Number of values in the arena (including dead instruction results).
    #[inline]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of instructions in the arena (including dead ones).
    #[inline]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Iterates over live (non-dead) instruction ids in arena order.
    pub fn live_inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.dead)
            .map(|(i, _)| InstId::new(i))
    }

    /// Value table entry.
    #[inline]
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// Type of a value.
    #[inline]
    pub fn value_type(&self, v: ValueId) -> Type {
        self.values[v.index()].ty
    }

    /// Instruction table entry.
    #[inline]
    pub fn inst(&self, i: InstId) -> &InstData {
        &self.insts[i.index()]
    }

    /// Mutable instruction table entry.
    #[inline]
    pub fn inst_mut(&mut self, i: InstId) -> &mut InstData {
        &mut self.insts[i.index()]
    }

    /// Block data.
    #[inline]
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable block data.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Appends a fresh, empty basic block.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(BlockData::default());
        BlockId::new(self.blocks.len() - 1)
    }

    /// Interns a constant, returning its value id.
    pub fn make_const(&mut self, c: Const) -> ValueId {
        let key = ConstKey::from(c);
        if let Some(&v) = self.const_cache.get(&key) {
            return v;
        }
        let v = self.push_value(ValueData {
            kind: ValueKind::Const(c),
            ty: c.ty(),
        });
        self.const_cache.insert(key, v);
        v
    }

    /// Convenience: interned integer constant.
    pub fn iconst(&mut self, ty: Type, v: i64) -> ValueId {
        self.make_const(Const::Int(ty.canon(v), ty))
    }

    /// Convenience: interned float constant.
    pub fn fconst(&mut self, v: f64) -> ValueId {
        self.make_const(Const::F64(v))
    }

    fn push_value(&mut self, data: ValueData) -> ValueId {
        self.values.push(data);
        ValueId::new(self.values.len() - 1)
    }

    /// Creates an instruction (without inserting it into a block) and
    /// registers its result value if `result_ty` is `Some`.
    ///
    /// Most callers want [`Function::append_inst`] or the builder APIs.
    pub fn create_inst(&mut self, op: Op, result_ty: Option<Type>, block: BlockId) -> InstId {
        let id = InstId::new(self.insts.len());
        let result = result_ty.map(|ty| {
            self.push_value(ValueData {
                kind: ValueKind::Inst(id),
                ty,
            })
        });
        self.insts.push(InstData {
            op,
            result,
            block,
            dead: false,
        });
        id
    }

    /// Creates an instruction and appends it to `block`.
    pub fn append_inst(&mut self, op: Op, result_ty: Option<Type>, block: BlockId) -> InstId {
        let id = self.create_inst(op, result_ty, block);
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Creates an instruction and inserts it immediately after `after`
    /// within the same block.
    ///
    /// # Panics
    ///
    /// Panics if `after` is not linked into its block.
    pub fn insert_inst_after(&mut self, op: Op, result_ty: Option<Type>, after: InstId) -> InstId {
        let block = self.insts[after.index()].block;
        let id = self.create_inst(op, result_ty, block);
        let list = &mut self.blocks[block.index()].insts;
        let pos = list
            .iter()
            .position(|&i| i == after)
            .expect("anchor instruction not linked into its block");
        list.insert(pos + 1, id);
        id
    }

    /// Creates an instruction and inserts it immediately before `before`
    /// within the same block.
    ///
    /// # Panics
    ///
    /// Panics if `before` is not linked into its block.
    pub fn insert_inst_before(
        &mut self,
        op: Op,
        result_ty: Option<Type>,
        before: InstId,
    ) -> InstId {
        let block = self.insts[before.index()].block;
        let id = self.create_inst(op, result_ty, block);
        let list = &mut self.blocks[block.index()].insts;
        let pos = list
            .iter()
            .position(|&i| i == before)
            .expect("anchor instruction not linked into its block");
        list.insert(pos, id);
        id
    }

    /// Creates an instruction and inserts it at the end of `block`, but
    /// before the terminator (blocks store the terminator separately, so
    /// this is equivalent to [`Function::append_inst`]).
    pub fn insert_inst_at_end(
        &mut self,
        op: Op,
        result_ty: Option<Type>,
        block: BlockId,
    ) -> InstId {
        self.append_inst(op, result_ty, block)
    }

    /// Creates an instruction and inserts it after the phi prefix of
    /// `block` (i.e. as the first non-phi instruction).
    pub fn insert_inst_after_phis(
        &mut self,
        op: Op,
        result_ty: Option<Type>,
        block: BlockId,
    ) -> InstId {
        let id = self.create_inst(op, result_ty, block);
        let pos = {
            let list = &self.blocks[block.index()].insts;
            list.iter()
                .position(|&i| !self.insts[i.index()].op.is_phi())
                .unwrap_or(list.len())
        };
        self.blocks[block.index()].insts.insert(pos, id);
        id
    }

    /// Unlinks an instruction from its block and marks it dead.
    ///
    /// The caller is responsible for first rewriting all uses of the
    /// instruction's result; the verifier will reject dangling references.
    pub fn remove_inst(&mut self, i: InstId) {
        let block = self.insts[i.index()].block;
        self.blocks[block.index()].insts.retain(|&x| x != i);
        self.insts[i.index()].dead = true;
    }

    /// The defining instruction of a value, if it is an instruction result.
    pub fn def_inst(&self, v: ValueId) -> Option<InstId> {
        match self.values[v.index()].kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Sets the terminator of `block`.
    pub fn set_term(&mut self, block: BlockId, term: Term) {
        self.blocks[block.index()].term = Some(term);
    }

    /// Computes the predecessor lists of every block from the terminators.
    pub fn compute_preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(term) = &b.term {
                for succ in term.successors() {
                    preds[succ.index()].push(BlockId::new(i));
                }
            }
        }
        preds
    }

    /// Counts live static instructions (the paper's "static IR instructions"
    /// denominator in Fig. 10).
    pub fn static_inst_count(&self) -> usize {
        self.insts.iter().filter(|d| !d.dead).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn add_op(f: &mut Function, a: ValueId, b: ValueId) -> Op {
        let _ = f;
        Op::Bin {
            op: BinOp::Add,
            lhs: a,
            rhs: b,
        }
    }

    #[test]
    fn params_become_values() {
        let f = Function::new("f", &[Type::I32, Type::F64], Some(Type::I32));
        assert_eq!(f.value_type(f.param(0)), Type::I32);
        assert_eq!(f.value_type(f.param(1)), Type::F64);
        assert_eq!(f.num_values(), 2);
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn constants_are_interned() {
        let mut f = Function::new("f", &[], None);
        let a = f.iconst(Type::I32, 7);
        let b = f.iconst(Type::I32, 7);
        let c = f.iconst(Type::I64, 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let x = f.fconst(2.5);
        let y = f.fconst(2.5);
        assert_eq!(x, y);
    }

    #[test]
    fn insertion_order_is_respected() {
        let mut f = Function::new("f", &[Type::I32], Some(Type::I32));
        let p = f.param(0);
        let entry = f.entry();
        let i1 = {
            let op = add_op(&mut f, p, p);
            f.append_inst(op, Some(Type::I32), entry)
        };
        let i2 = {
            let op = add_op(&mut f, p, p);
            f.append_inst(op, Some(Type::I32), entry)
        };
        let mid = {
            let op = add_op(&mut f, p, p);
            f.insert_inst_after(op, Some(Type::I32), i1)
        };
        let first = {
            let op = add_op(&mut f, p, p);
            f.insert_inst_before(op, Some(Type::I32), i1)
        };
        assert_eq!(f.block(entry).insts, vec![first, i1, mid, i2]);
    }

    #[test]
    fn remove_marks_dead_and_unlinks() {
        let mut f = Function::new("f", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        let op = add_op(&mut f, p, p);
        let i = f.append_inst(op, Some(Type::I32), entry);
        f.remove_inst(i);
        assert!(f.inst(i).dead);
        assert!(f.block(entry).insts.is_empty());
        assert_eq!(f.static_inst_count(), 0);
        assert_eq!(f.live_inst_ids().count(), 0);
    }

    #[test]
    fn preds_follow_terminators() {
        let mut f = Function::new("f", &[], None);
        let entry = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let cond = f.iconst(Type::I1, 1);
        f.set_term(
            entry,
            Term::CondBr {
                cond,
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.set_term(b1, Term::Br(b2));
        f.set_term(b2, Term::Ret(None));
        let preds = f.compute_preds();
        assert_eq!(preds[b1.index()], vec![entry]);
        assert_eq!(preds[b2.index()], vec![entry, b1]);
        assert!(preds[entry.index()].is_empty());
    }

    #[test]
    fn insert_after_phis_skips_phi_prefix() {
        let mut f = Function::new("f", &[Type::I32], None);
        let p = f.param(0);
        let entry = f.entry();
        let phi = f.append_inst(
            Op::Phi {
                incomings: vec![(entry, p)],
            },
            Some(Type::I32),
            entry,
        );
        let op = add_op(&mut f, p, p);
        let i = f.insert_inst_after_phis(op, Some(Type::I32), entry);
        assert_eq!(f.block(entry).insts, vec![phi, i]);
    }
}
