//! Modules: collections of functions plus global data regions.

use crate::entities::{FuncId, GlobalId};
use crate::function::Function;
use serde::{Deserialize, Serialize};

/// Base address of the first global; everything below is a guard region so
/// that small faulty addresses (e.g. a corrupted base pointer of zero)
/// fault instead of silently reading data — the analogue of a page fault on
/// a null dereference, which the paper's `HWDetect` category relies on.
pub const GLOBAL_BASE: u64 = 0x1000;

/// A statically allocated region of linear memory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents; zero-padded to `size` when shorter. Runners may
    /// overwrite this region before execution (workload inputs).
    pub init: Vec<u8>,
    /// Assigned byte address in linear memory.
    pub addr: u64,
}

/// A module: functions plus global data, with a trivial linear memory
/// layout assigned as globals are added.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Module {
    /// Module name (used in reports).
    pub name: String,
    funcs: Vec<Function>,
    globals: Vec<Global>,
    next_addr: u64,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
            next_addr: GLOBAL_BASE,
        }
    }

    /// Adds a function, returning its id. The id of a function named
    /// `main` is conventionally the VM entry point.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId::new(self.funcs.len() - 1)
    }

    /// Replaces the function at `id` (used by transformation passes that
    /// rebuild functions).
    pub fn replace_function(&mut self, id: FuncId, f: Function) {
        self.funcs[id.index()] = f;
    }

    /// Adds a zero-initialized global of `size` bytes, 8-byte aligned.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.add_global_init(name, size, Vec::new())
    }

    /// Adds a global with initial contents (`init` may be shorter than
    /// `size`; the rest is zero).
    ///
    /// # Panics
    ///
    /// Panics if `init.len() > size`.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        size: u64,
        init: Vec<u8>,
    ) -> GlobalId {
        assert!(
            init.len() as u64 <= size,
            "global initializer larger than region"
        );
        let addr = self.next_addr;
        self.next_addr = (self.next_addr + size + 7) & !7;
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
            addr,
        });
        GlobalId::new(self.globals.len() - 1)
    }

    /// The function table.
    pub fn functions(&self) -> &[Function] {
        &self.funcs
    }

    /// Mutable access to a function.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// A function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// The global table.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// A global by id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// One-past-the-end address of the highest global: the minimum linear
    /// memory size a VM must provision.
    pub fn memory_end(&self) -> u64 {
        self.next_addr
    }

    /// Total live static instructions across all functions (Fig. 10
    /// denominator).
    pub fn static_inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.static_inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn globals_are_laid_out_sequentially_aligned() {
        let mut m = Module::new("m");
        let a = m.add_global("a", 3);
        let b = m.add_global_init("b", 16, vec![1, 2, 3]);
        assert_eq!(m.global(a).addr, GLOBAL_BASE);
        assert_eq!(m.global(b).addr, GLOBAL_BASE + 8); // 3 rounded up to 8
        assert_eq!(m.memory_end(), GLOBAL_BASE + 8 + 16);
        assert_eq!(m.global_by_name("b").unwrap().init, vec![1, 2, 3]);
        assert!(m.global_by_name("c").is_none());
    }

    #[test]
    #[should_panic(expected = "global initializer larger")]
    fn oversized_initializer_panics() {
        let mut m = Module::new("m");
        m.add_global_init("x", 2, vec![0; 3]);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut m = Module::new("m");
        let f = Function::new("main", &[], Some(Type::I32));
        let id = m.add_function(f);
        assert_eq!(m.function_by_name("main"), Some(id));
        assert_eq!(m.function(id).name, "main");
        assert!(m.function_by_name("nope").is_none());
    }
}
