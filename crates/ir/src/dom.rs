//! Dominator tree computation (Cooper–Harvey–Kennedy).

use crate::entities::BlockId;
use crate::function::Function;

/// A dominator tree over the blocks of one function.
///
/// Unreachable blocks have no immediate dominator and are reported as not
/// dominated by anything (including themselves) except in the trivial
/// reflexive sense, which [`DomTree::dominates`] still honours.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator; `None` for the entry and for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder index per block (`usize::MAX` if unreachable).
    rpo_index: Vec<usize>,
    /// Blocks in reverse postorder.
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let entry = func.entry();

        // Postorder DFS from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
        let succs_of = |b: BlockId| -> Vec<BlockId> {
            func.block(b)
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default()
        };
        visited[entry.index()] = true;
        stack.push((entry, succs_of(entry), 0));
        while let Some((b, succs, idx)) = stack.last_mut() {
            if *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    let ss = succs_of(s);
                    stack.push((s, ss, 0));
                }
            } else {
                post.push(*b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();

        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let preds = func.compute_preds();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry); // sentinel during iteration

        let intersect =
            |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_index[a.index()] > rpo_index[b.index()] {
                        a = idom[a.index()].expect("processed block has idom");
                    }
                    while rpo_index[b.index()] > rpo_index[a.index()] {
                        b = idom[b.index()].expect("processed block has idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if rpo_index[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue; // not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[entry.index()] = None; // entry has no idom

        DomTree {
            idom,
            rpo_index,
            rpo,
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Blocks in reverse postorder (reachable blocks only).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            match self.idom[cur.index()] {
                Some(i) => {
                    if i == a {
                        return true;
                    }
                    if i == cur {
                        return false;
                    }
                    cur = i;
                }
                None => return cur == self.entry && a == self.entry,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::inst::IntCC;
    use crate::types::Type;
    use crate::Term;

    #[test]
    fn diamond_dominance() {
        let f = FunctionDsl::build("f", &[Type::I32], Some(Type::I32), |d| {
            let x = d.declare_var(Type::I32);
            let p = d.param(0);
            let z = d.i32c(0);
            let c = d.icmp(IntCC::Sgt, p, z);
            let a = d.i32c(1);
            let b = d.i32c(2);
            d.if_else(c, |d| d.set(x, a), |d| d.set(x, b));
            let xv = d.get(x);
            d.ret(Some(xv));
        });
        let dt = DomTree::compute(&f);
        let entry = f.entry();
        // Blocks: entry(0), then(1), else(2), merge(3).
        let then_bb = BlockId::new(1);
        let else_bb = BlockId::new(2);
        let merge = BlockId::new(3);
        assert!(dt.dominates(entry, merge));
        assert!(dt.dominates(entry, then_bb));
        assert!(!dt.dominates(then_bb, merge));
        assert!(!dt.dominates(else_bb, merge));
        assert_eq!(dt.idom(merge), Some(entry));
        assert_eq!(dt.idom(entry), None);
        assert!(dt.dominates(merge, merge));
    }

    #[test]
    fn loop_header_dominates_body_and_exit() {
        let f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(5));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let dt = DomTree::compute(&f);
        // header = 1, body = 2, exit = 3 (DSL creation order).
        let header = BlockId::new(1);
        let body = BlockId::new(2);
        let exit = BlockId::new(3);
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert!(!dt.dominates(body, exit));
        assert_eq!(dt.reverse_postorder().first(), Some(&f.entry()));
    }

    #[test]
    fn unreachable_block_reported() {
        let mut f = crate::Function::new("f", &[], None);
        let entry = f.entry();
        let dead = f.add_block();
        f.set_term(entry, Term::Ret(None));
        f.set_term(dead, Term::Ret(None));
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(dt.is_reachable(entry));
        assert!(!dt.dominates(entry, dead));
    }
}
