//! Def-use chains.
//!
//! Producer-chain duplication walks *use-def* edges (operands, available
//! directly from [`crate::Op`]); Optimization 1 of the paper additionally
//! needs *def-use* edges ("is any transitive consumer of this instruction
//! also check-amenable?"), which this module provides.

use crate::entities::{BlockId, InstId, ValueId};
use crate::function::Function;
use std::collections::HashMap;

/// A single use of a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Use {
    /// Used as an operand of an instruction.
    Inst(InstId),
    /// Used by a block terminator (branch condition or return value).
    Term(BlockId),
}

/// Def-use chains for one function.
#[derive(Clone, Debug, Default)]
pub struct UseMap {
    map: HashMap<ValueId, Vec<Use>>,
}

impl UseMap {
    /// Builds def-use chains from the live instructions and terminators.
    pub fn compute(func: &Function) -> Self {
        let mut map: HashMap<ValueId, Vec<Use>> = HashMap::new();
        let mut ops = Vec::new();
        for i in func.live_inst_ids() {
            ops.clear();
            func.inst(i).op.operands(&mut ops);
            for &v in &ops {
                map.entry(v).or_default().push(Use::Inst(i));
            }
        }
        for b in func.block_ids() {
            if let Some(term) = &func.block(b).term {
                let mut t = term.clone();
                t.for_each_operand_mut(|v| {
                    map.entry(*v).or_default().push(Use::Term(b));
                });
            }
        }
        UseMap { map }
    }

    /// Uses of `v` (empty slice if unused).
    pub fn uses(&self, v: ValueId) -> &[Use] {
        self.map.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `v` has no uses.
    pub fn is_unused(&self, v: ValueId) -> bool {
        self.uses(v).is_empty()
    }

    /// Instruction consumers of `v` (terminator uses filtered out).
    pub fn inst_users(&self, v: ValueId) -> impl Iterator<Item = InstId> + '_ {
        self.uses(v).iter().filter_map(|u| match u {
            Use::Inst(i) => Some(*i),
            Use::Term(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::types::Type;

    #[test]
    fn uses_are_recorded_for_insts_and_terms() {
        let f = FunctionDsl::build("f", &[Type::I32], Some(Type::I32), |d| {
            let p = d.param(0);
            let a = d.add(p, p); // two uses of p
            d.ret(Some(a)); // term use of a
        });
        let um = UseMap::compute(&f);
        let p = f.param(0);
        assert_eq!(um.uses(p).len(), 2);
        let add_inst = f.live_inst_ids().next().unwrap();
        let a = f.inst(add_inst).result.unwrap();
        assert_eq!(um.uses(a), &[Use::Term(f.entry())]);
        assert!(!um.is_unused(a));
        // `p` appears as both operands of the add: one entry per operand.
        assert_eq!(um.inst_users(p).count(), 2);
    }

    #[test]
    fn unused_value_is_reported() {
        let f = FunctionDsl::build("f", &[Type::I32], None, |d| {
            let p = d.param(0);
            let _dead = d.mul(p, p);
            d.ret(None);
        });
        let um = UseMap::compute(&f);
        let mul_inst = f.live_inst_ids().next().unwrap();
        let dead = f.inst(mul_inst).result.unwrap();
        assert!(um.is_unused(dead));
    }
}
