//! Classic scalar optimizations: dead-code elimination, constant
//! folding, and loop-invariant code motion.
//!
//! The paper's transformation runs inside an optimizing compiler (LLVM
//! `-O2`); these passes make the same assumption hold for DSL-built
//! kernels. LICM matters most for protection quality: an unhoisted
//! input-dependent "constant" inside a loop profiles as a single value
//! and would turn into a guaranteed-false-positive check on any other
//! input (see the `segm` kernel's history in EXPERIMENTS.md).

use crate::dom::DomTree;
use crate::entities::{InstId, ValueId};
use crate::function::{Function, ValueKind};
use crate::inst::{BinOp, CastKind, FloatCC, IntCC, Op, UnOp};
use crate::loops::LoopForest;
use crate::module::Module;
use crate::types::{Const, Type};
use crate::uses::UseMap;
use std::collections::{HashMap, HashSet};

/// Counters from one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions removed as dead.
    pub dce_removed: usize,
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions hoisted out of loops.
    pub hoisted: usize,
}

impl OptStats {
    /// Sum of all changes (0 = fixpoint reached).
    pub fn total(&self) -> usize {
        self.dce_removed + self.folded + self.hoisted
    }
}

/// Runs DCE + constant folding + LICM on every function to a fixpoint
/// (bounded by a small iteration cap).
pub fn optimize(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for idx in 0..module.functions().len() {
        let fid = crate::entities::FuncId::new(idx);
        let f = module.function_mut(fid);
        for _round in 0..8 {
            let mut round_stats = OptStats {
                folded: const_fold(f),
                hoisted: licm(f),
                dce_removed: dce(f),
            };
            // DCE after folding/hoisting catches newly dead producers.
            round_stats.dce_removed += dce(f);
            total.dce_removed += round_stats.dce_removed;
            total.folded += round_stats.folded;
            total.hoisted += round_stats.hoisted;
            if round_stats.total() == 0 {
                break;
            }
        }
    }
    total
}

/// Removes pure instructions whose results are never used. Returns the
/// number removed.
pub fn dce(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let uses = UseMap::compute(func);
        let dead: Vec<InstId> = func
            .live_inst_ids()
            .filter(|&i| {
                let inst = func.inst(i);
                if inst.op.has_side_effect() {
                    return false;
                }
                match inst.result {
                    Some(r) => uses.is_unused(r),
                    None => false, // terminator-less markers don't exist
                }
            })
            .collect();
        if dead.is_empty() {
            return removed;
        }
        for i in dead {
            func.remove_inst(i);
            removed += 1;
        }
    }
}

fn const_of(func: &Function, v: ValueId) -> Option<Const> {
    match func.value(v).kind {
        ValueKind::Const(c) => Some(c),
        _ => None,
    }
}

fn fold_int(op: BinOp, ty: Type, a: i64, b: i64) -> Option<i64> {
    let mask_shift = |s: i64| (s as u64 % ty.bits() as u64) as u32;
    let width_mask = if ty.bits() == 64 {
        u64::MAX
    } else {
        (1u64 << ty.bits()) - 1
    };
    let (ua, ub) = ((a as u64) & width_mask, (b as u64) & width_mask);
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return None; // preserve the trap
            }
            a.wrapping_div(b)
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::UDiv => {
            if ub == 0 {
                return None;
            }
            (ua / ub) as i64
        }
        BinOp::URem => {
            if ub == 0 {
                return None;
            }
            (ua % ub) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(mask_shift(b)),
        BinOp::LShr => (ua >> mask_shift(b)) as i64,
        BinOp::AShr => a.wrapping_shr(mask_shift(b)),
        _ => return None,
    };
    Some(ty.canon(r))
}

fn fold_float(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::FAdd => a + b,
        BinOp::FSub => a - b,
        BinOp::FMul => a * b,
        BinOp::FDiv => a / b,
        _ => return None,
    })
}

/// Folds instructions with all-constant operands (and a few algebraic
/// identities) by rewriting their uses to interned constants. Returns the
/// number folded.
pub fn const_fold(func: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        // One folding opportunity per scan keeps the use-rewriting simple.
        let mut target: Option<(InstId, Const)> = None;
        let live: Vec<InstId> = func.live_inst_ids().collect();
        'scan: for i in live {
            let inst = func.inst(i);
            let Some(result) = inst.result else { continue };
            let ty = func.value_type(result);
            let c = match &inst.op {
                Op::Bin { op, lhs, rhs } => {
                    match (const_of(func, *lhs), const_of(func, *rhs)) {
                        (Some(Const::Int(a, _)), Some(Const::Int(b, _))) => {
                            fold_int(*op, ty, a, b).map(|v| Const::Int(v, ty))
                        }
                        (Some(Const::F64(a)), Some(Const::F64(b))) => {
                            fold_float(*op, a, b).map(Const::F64)
                        }
                        // Identities: x+0, x*1, x&-1, x|0, x^0, x<<0 …
                        (None, Some(Const::Int(b, _))) => match (op, b) {
                            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, 0)
                            | (BinOp::Mul | BinOp::SDiv | BinOp::UDiv, 1)
                            | (BinOp::Shl | BinOp::LShr | BinOp::AShr, 0) => {
                                // Replace with the live operand directly.
                                let lhs = *lhs;
                                replace_uses(func, result, lhs);
                                func.remove_inst(i);
                                folded += 1;
                                target = None;
                                continue 'scan;
                            }
                            _ => None,
                        },
                        _ => None,
                    }
                }
                Op::Un { op, arg } => match const_of(func, *arg) {
                    Some(Const::F64(a)) => Some(Const::F64(match op {
                        UnOp::FSqrt => a.sqrt(),
                        UnOp::FAbs => a.abs(),
                        UnOp::FFloor => a.floor(),
                        UnOp::FNeg => -a,
                    })),
                    _ => None,
                },
                Op::Icmp { pred, lhs, rhs } => match (const_of(func, *lhs), const_of(func, *rhs)) {
                    (Some(Const::Int(a, t)), Some(Const::Int(b, _))) => {
                        let width_mask = if t.bits() == 64 {
                            u64::MAX
                        } else {
                            (1u64 << t.bits()) - 1
                        };
                        let (ua, ub) = ((a as u64) & width_mask, (b as u64) & width_mask);
                        let r = match pred {
                            IntCC::Eq => a == b,
                            IntCC::Ne => a != b,
                            IntCC::Slt => a < b,
                            IntCC::Sle => a <= b,
                            IntCC::Sgt => a > b,
                            IntCC::Sge => a >= b,
                            IntCC::Ult => ua < ub,
                            IntCC::Ule => ua <= ub,
                            IntCC::Ugt => ua > ub,
                            IntCC::Uge => ua >= ub,
                        };
                        Some(Const::Int(r as i64, Type::I1))
                    }
                    _ => None,
                },
                Op::Fcmp { pred, lhs, rhs } => match (const_of(func, *lhs), const_of(func, *rhs)) {
                    (Some(Const::F64(a)), Some(Const::F64(b))) => {
                        let r = match pred {
                            FloatCC::Eq => a == b,
                            FloatCC::Ne => a != b,
                            FloatCC::Lt => a < b,
                            FloatCC::Le => a <= b,
                            FloatCC::Gt => a > b,
                            FloatCC::Ge => a >= b,
                        };
                        Some(Const::Int(r as i64, Type::I1))
                    }
                    _ => None,
                },
                Op::Cast { kind, arg } => match const_of(func, *arg) {
                    Some(Const::Int(a, src)) => match kind {
                        CastKind::Trunc | CastKind::SExt => Some(Const::Int(ty.canon(a), ty)),
                        CastKind::ZExt => {
                            let width_mask = if src.bits() == 64 {
                                u64::MAX
                            } else {
                                (1u64 << src.bits()) - 1
                            };
                            Some(Const::Int(((a as u64) & width_mask) as i64, ty))
                        }
                        CastKind::SiToFp => Some(Const::F64(a as f64)),
                        CastKind::FpToSi => None,
                    },
                    Some(Const::F64(a)) => match kind {
                        CastKind::FpToSi => Some(Const::Int(ty.canon(a as i64), ty)),
                        _ => None,
                    },
                    None => None,
                },
                Op::Select {
                    cond,
                    on_true,
                    on_false,
                } => match const_of(func, *cond) {
                    Some(Const::Int(c, _)) => {
                        let chosen = if c & 1 == 1 { *on_true } else { *on_false };
                        replace_uses(func, result, chosen);
                        func.remove_inst(i);
                        folded += 1;
                        target = None;
                        continue 'scan;
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(c) = c {
                target = Some((i, c));
                break;
            }
        }
        match target {
            Some((i, c)) => {
                let result = func.inst(i).result.expect("folded inst has result");
                let cv = func.make_const(c);
                replace_uses(func, result, cv);
                func.remove_inst(i);
                folded += 1;
            }
            None => return folded,
        }
    }
}

/// Rewrites every use of `old` (operands and terminators) to `new`.
fn replace_uses(func: &mut Function, old: ValueId, new: ValueId) {
    for i in 0..func.num_insts() {
        let id = InstId::new(i);
        if func.inst(id).dead {
            continue;
        }
        func.inst_mut(id).op.for_each_operand_mut(|v| {
            if *v == old {
                *v = new;
            }
        });
    }
    for b in func.block_ids() {
        if let Some(term) = &mut func.block_mut(b).term {
            term.for_each_operand_mut(|v| {
                if *v == old {
                    *v = new;
                }
            });
        }
    }
}

/// Hoists loop-invariant pure instructions into the loop's preheader.
/// Returns the number hoisted.
///
/// Conservative: only side-effect-free, non-trapping, non-load
/// instructions whose operands are all defined outside the loop, and
/// only for loops whose header has exactly one out-of-loop predecessor
/// (the DSL always produces that shape).
pub fn licm(func: &mut Function) -> usize {
    let dom = DomTree::compute(func);
    let loops = LoopForest::compute(func, &dom);
    if loops.loops().is_empty() {
        return 0;
    }
    let preds = func.compute_preds();
    let mut hoisted = 0;
    // Operand scratch, reused across every candidate scan (the scan
    // repeats per hoist round; a fresh Vec per instruction dominated it).
    let mut ops: Vec<ValueId> = Vec::new();

    // Innermost-first (deeper loops first) so invariants bubble outward
    // across fixpoint rounds.
    let mut order: Vec<usize> = (0..loops.loops().len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(loops.loops()[i].depth));

    for li in order {
        let l = &loops.loops()[li];
        let outside_preds: Vec<_> = preds[l.header.index()]
            .iter()
            .copied()
            .filter(|p| !l.blocks.contains(p))
            .collect();
        let [preheader] = outside_preds[..] else {
            continue;
        };

        // Values defined inside the loop.
        let mut defined_in: HashSet<ValueId> = HashSet::new();
        for &b in &l.blocks {
            for &i in &func.block(b).insts {
                if let Some(r) = func.inst(i).result {
                    defined_in.insert(r);
                }
            }
        }

        loop {
            let mut candidate: Option<InstId> = None;
            'outer: for &b in &l.blocks {
                for &i in &func.block(b).insts {
                    let inst = func.inst(i);
                    if inst.dead || inst.op.is_phi() || !inst.op.is_duplicable() {
                        continue;
                    }
                    // Never speculate trapping ops out of their guard.
                    if let Op::Bin { op, .. } = &inst.op {
                        if op.can_trap() {
                            continue;
                        }
                    }
                    ops.clear();
                    inst.op.operands(&mut ops);
                    let invariant = ops.iter().all(|v| !defined_in.contains(v));
                    if invariant {
                        candidate = Some(i);
                        break 'outer;
                    }
                }
            }
            let Some(i) = candidate else { break };
            // Move: unlink from its block, append to the preheader (before
            // its terminator).
            let result = func.inst(i).result;
            let op = func.inst(i).op.clone();
            let ty = result.map(|r| func.value_type(r));
            func.remove_inst(i);
            let new_inst = func.insert_inst_at_end(op, ty, preheader);
            if let (Some(old_r), Some(new_r)) = (result, func.inst(new_inst).result) {
                replace_uses(func, old_r, new_r);
                defined_in.remove(&old_r);
            }
            hoisted += 1;
        }
    }
    let _ = HashMap::<u8, u8>::new();
    hoisted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::FunctionDsl;
    use crate::verify::verify_function;

    fn run_i64(m: &Module) -> i64 {
        // Minimal structural interpreter is in softft-vm; here we only
        // check structure, so tests that need execution live in the
        // integration crate. This helper asserts verification instead.
        let _ = m;
        0
    }

    #[test]
    fn dce_removes_unused_chains() {
        let mut f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let dead1 = d.mul(p, p);
            let _dead2 = d.add(dead1, p);
            d.ret(Some(p));
        });
        let before = f.static_inst_count();
        let removed = dce(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.static_inst_count(), before - 2);
        verify_function(&f).unwrap();
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = Module::new("m");
        let g = m.add_global("g", 16);
        let base = m.global(g).addr as i64;
        let mut f = FunctionDsl::build("f", &[], None, |d| {
            let b = d.i64c(base);
            let z = d.i64c(0);
            let v = d.i64c(7);
            d.store_elem(b, z, v);
            d.ret(None);
        });
        assert_eq!(dce(&mut f), 0);
        verify_function(&f).unwrap();
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let mut f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let a = d.i64c(6);
            let b = d.i64c(7);
            let p = d.mul(a, b); // 42
            let z = d.i64c(0);
            let q = d.add(p, z); // identity
            d.ret(Some(q));
        });
        let folded = const_fold(&mut f);
        assert!(folded >= 2, "{folded}");
        let removed = dce(&mut f);
        let _ = removed;
        verify_function(&f).unwrap();
        // The ret operand should now be the interned 42.
        let term = f.block(f.entry()).term.clone().unwrap();
        if let crate::Term::Ret(Some(v)) = term {
            assert_eq!(f.value(v).kind, ValueKind::Const(Const::Int(42, Type::I64)));
        } else {
            panic!("expected ret");
        }
    }

    #[test]
    fn const_fold_preserves_division_traps() {
        let mut f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let a = d.i64c(5);
            let z = d.i64c(0);
            let q = d.sdiv(a, z); // must stay: traps at run time
            d.ret(Some(q));
        });
        assert_eq!(const_fold(&mut f), 0);
        verify_function(&f).unwrap();
    }

    #[test]
    fn licm_hoists_invariant_computation() {
        let mut f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(10));
            d.for_range(s, e, |d, _i| {
                // Loop-invariant: p * 3 recomputed every iteration.
                let three = d.i64c(3);
                let inv = d.mul(p, three);
                let a = d.get(acc);
                let a2 = d.add(a, inv);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let hoisted = licm(&mut f);
        assert!(hoisted >= 1, "{hoisted}");
        verify_function(&f).unwrap();
        // The multiply must now live outside the loop body.
        let dom = DomTree::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        let l = &loops.loops()[0];
        for &b in &l.blocks {
            for &i in &f.block(b).insts {
                assert!(
                    !matches!(f.inst(i).op, Op::Bin { op: BinOp::Mul, .. }),
                    "multiply still inside the loop"
                );
            }
        }
        let _ = run_i64(&Module::new("unused"));
    }

    #[test]
    fn licm_does_not_hoist_loads_or_divisions() {
        let mut m = Module::new("m");
        let g = m.add_global("t", 64);
        let base = m.global(g).addr as i64;
        let mut f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(4));
            let b = d.i64c(base);
            d.for_range(s, e, |d, _i| {
                let z2 = d.i64c(0);
                let ld = d.load_elem(Type::I64, b, z2); // invariant-looking load
                let seven = d.i64c(7);
                let dv = d.sdiv(ld, p); // could trap if p == 0
                let a = d.get(acc);
                let t = d.add(dv, seven);
                let a2 = d.add(a, t);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        licm(&mut f);
        verify_function(&f).unwrap();
        let dom = DomTree::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        let l = &loops.loops()[0];
        let mut has_load = false;
        let mut has_div = false;
        for &b in &l.blocks {
            for &i in &f.block(b).insts {
                match &f.inst(i).op {
                    Op::Load { .. } => has_load = true,
                    Op::Bin {
                        op: BinOp::SDiv, ..
                    } => has_div = true,
                    _ => {}
                }
            }
        }
        assert!(has_load, "load was unsafely hoisted");
        assert!(has_div, "division was unsafely hoisted");
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(8));
            d.for_range(s, e, |d, _| {
                let two = d.i64c(2);
                let three = d.i64c(3);
                let six = d.mul(two, three); // foldable
                let inv = d.mul(p, six); // then hoistable
                let _dead = d.add(inv, two); // then dead
                let a = d.get(acc);
                let a2 = d.add(a, inv);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let stats = optimize(&mut m);
        assert!(stats.folded >= 1, "{stats:?}");
        assert!(stats.hoisted >= 1, "{stats:?}");
        assert!(stats.dce_removed >= 1, "{stats:?}");
        crate::verify::verify_module(&m).unwrap();
        // Second run is a no-op.
        let again = optimize(&mut m);
        assert_eq!(again.total(), 0, "{again:?}");
    }
}
