//! Instruction opcodes, operands, and terminators.

use crate::entities::{BlockId, FuncId, ValueId};
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-operand arithmetic/logic opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping integer add.
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply.
    Mul,
    /// Signed integer divide (traps on divide-by-zero).
    SDiv,
    /// Signed integer remainder (traps on divide-by-zero).
    SRem,
    /// Unsigned integer divide (traps on divide-by-zero).
    UDiv,
    /// Unsigned integer remainder (traps on divide-by-zero).
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount taken modulo the type width).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
}

impl BinOp {
    /// True for the four float opcodes.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True for opcodes that can raise a divide-by-zero trap.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::SRem | BinOp::UDiv | BinOp::URem)
    }
}

/// Single-operand opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Float square root (negative inputs yield NaN).
    FSqrt,
    /// Float absolute value.
    FAbs,
    /// Round toward negative infinity.
    FFloor,
    /// Float negation.
    FNeg,
}

/// Width/domain conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Truncate an integer to a narrower integer type.
    Trunc,
    /// Zero-extend an integer to a wider integer type.
    ZExt,
    /// Sign-extend an integer to a wider integer type.
    SExt,
    /// Convert a float to a signed integer (saturating).
    FpToSi,
    /// Convert a signed integer to a float.
    SiToFp,
}

/// Signed/unsigned integer comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntCC {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less than or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater than or equal.
    Sge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less than or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater than or equal.
    Uge,
}

/// Ordered float comparison predicates (NaN compares false).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatCC {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Why a [`Op::Check`] instruction exists — carried into the detection
/// outcome so campaigns can attribute software detections to a mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckKind {
    /// Producer-chain duplication mismatch on a state variable (hard check).
    DupMismatch,
    /// Expected-value check: single frequent value (Fig. 6a).
    ValueSingle,
    /// Expected-value check: two frequent values (Fig. 6b).
    ValuePair,
    /// Expected-value check: compact range (Fig. 6c).
    ValueRange,
    /// Full-duplication baseline: store operand comparison.
    StoreGuard,
    /// Full-duplication baseline: branch condition comparison.
    BranchGuard,
    /// Control-flow signature mismatch (CFCSS extension: the incoming
    /// signature does not belong to any CFG predecessor — a corrupted
    /// branch target).
    CfcSignature,
}

impl CheckKind {
    /// True for the soft expected-value checks (as opposed to duplication
    /// comparisons).
    pub fn is_value_check(self) -> bool {
        matches!(
            self,
            CheckKind::ValueSingle | CheckKind::ValuePair | CheckKind::ValueRange
        )
    }
}

/// A non-terminator instruction.
///
/// Instructions that produce a value have their result registered in the
/// enclosing [`crate::Function`]'s value table; see
/// [`crate::InstData::result`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Two-operand arithmetic/logic.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Single-operand float math.
    Un {
        /// Opcode.
        op: UnOp,
        /// Operand.
        arg: ValueId,
    },
    /// Integer comparison producing `I1`.
    Icmp {
        /// Predicate.
        pred: IntCC,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Float comparison producing `I1`.
    Fcmp {
        /// Predicate.
        pred: FloatCC,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Type conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Operand.
        arg: ValueId,
    },
    /// Two-way select: `cond ? on_true : on_false`.
    Select {
        /// `I1` condition.
        cond: ValueId,
        /// Value when `cond` is 1.
        on_true: ValueId,
        /// Value when `cond` is 0.
        on_false: ValueId,
    },
    /// Load a value of the instruction's result type from memory.
    Load {
        /// Byte address (`I64`).
        addr: ValueId,
    },
    /// Store `value` at byte address `addr`.
    Store {
        /// Byte address (`I64`).
        addr: ValueId,
        /// Stored value; its type determines the access width.
        value: ValueId,
    },
    /// Direct call to another function in the module.
    Call {
        /// Callee.
        func: FuncId,
        /// Arguments, matching the callee's parameter types.
        args: Vec<ValueId>,
    },
    /// SSA phi; merges one value per predecessor block.
    Phi {
        /// `(predecessor, value)` pairs; order is irrelevant.
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// Fault-detection check: traps with `SwDetect(kind)` when `cond` is 0.
    ///
    /// This models the compare-and-branch-to-recovery sequence the paper
    /// inserts; the VM charges it like a branch and the timing model gives
    /// it unit latency.
    Check {
        /// `I1` condition that must hold in a fault-free run.
        cond: ValueId,
        /// Which detection mechanism inserted the check.
        kind: CheckKind,
    },
}

impl Op {
    /// Appends all value operands to `out` (in a fixed order).
    pub fn operands(&self, out: &mut Vec<ValueId>) {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Icmp { lhs, rhs, .. } | Op::Fcmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Op::Un { arg, .. } | Op::Cast { arg, .. } => out.push(*arg),
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                out.push(*cond);
                out.push(*on_true);
                out.push(*on_false);
            }
            Op::Load { addr } => out.push(*addr),
            Op::Store { addr, value } => {
                out.push(*addr);
                out.push(*value);
            }
            Op::Call { args, .. } => out.extend_from_slice(args),
            Op::Phi { incomings } => out.extend(incomings.iter().map(|(_, v)| *v)),
            Op::Check { cond, .. } => out.push(*cond),
        }
    }

    /// Collects the operands into a fresh vector.
    pub fn operand_vec(&self) -> Vec<ValueId> {
        let mut v = Vec::with_capacity(3);
        self.operands(&mut v);
        v
    }

    /// Applies `f` to every value operand in place.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut ValueId)) {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Icmp { lhs, rhs, .. } | Op::Fcmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Un { arg, .. } | Op::Cast { arg, .. } => f(arg),
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Op::Load { addr } => f(addr),
            Op::Store { addr, value } => {
                f(addr);
                f(value);
            }
            Op::Call { args, .. } => args.iter_mut().for_each(&mut f),
            Op::Phi { incomings } => incomings.iter_mut().for_each(|(_, v)| f(v)),
            Op::Check { cond, .. } => f(cond),
        }
    }

    /// True if this is a phi node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Op::Phi { .. })
    }

    /// True for instructions with side effects (must not be removed or
    /// duplicated): memory writes, calls, and checks.
    pub fn has_side_effect(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. } | Op::Check { .. })
    }

    /// True for pure computation instructions whose producer chain the
    /// duplication pass may clone (arithmetic, comparisons, casts, selects).
    ///
    /// Loads are excluded deliberately: the paper terminates producer-chain
    /// duplication at loads to save memory traffic, relying on out-of-bounds
    /// symptoms to cover faulty addresses.
    pub fn is_duplicable(&self) -> bool {
        matches!(
            self,
            Op::Bin { .. }
                | Op::Un { .. }
                | Op::Icmp { .. }
                | Op::Fcmp { .. }
                | Op::Cast { .. }
                | Op::Select { .. }
        )
    }

    /// Short mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Bin { op, .. } => match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::SDiv => "sdiv",
                BinOp::SRem => "srem",
                BinOp::UDiv => "udiv",
                BinOp::URem => "urem",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Xor => "xor",
                BinOp::Shl => "shl",
                BinOp::LShr => "lshr",
                BinOp::AShr => "ashr",
                BinOp::FAdd => "fadd",
                BinOp::FSub => "fsub",
                BinOp::FMul => "fmul",
                BinOp::FDiv => "fdiv",
            },
            Op::Un { op, .. } => match op {
                UnOp::FSqrt => "fsqrt",
                UnOp::FAbs => "fabs",
                UnOp::FFloor => "ffloor",
                UnOp::FNeg => "fneg",
            },
            Op::Icmp { .. } => "icmp",
            Op::Fcmp { .. } => "fcmp",
            Op::Cast { kind, .. } => match kind {
                CastKind::Trunc => "trunc",
                CastKind::ZExt => "zext",
                CastKind::SExt => "sext",
                CastKind::FpToSi => "fptosi",
                CastKind::SiToFp => "sitofp",
            },
            Op::Select { .. } => "select",
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Call { .. } => "call",
            Op::Phi { .. } => "phi",
            Op::Check { .. } => "check",
        }
    }
}

/// Block terminators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on an `I1` value.
    CondBr {
        /// Condition.
        cond: ValueId,
        /// Target when `cond` is 1.
        then_bb: BlockId,
        /// Target when `cond` is 0.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<ValueId>),
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Term::Ret(_) => Vec::new(),
        }
    }

    /// The condition value, if any.
    pub fn cond(&self) -> Option<ValueId> {
        match self {
            Term::CondBr { cond, .. } => Some(*cond),
            _ => None,
        }
    }

    /// Applies `f` to every value operand in place.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut ValueId)) {
        match self {
            Term::Br(_) => {}
            Term::CondBr { cond, .. } => f(cond),
            Term::Ret(Some(v)) => f(v),
            Term::Ret(None) => {}
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Br(b) => write!(f, "br {b}"),
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "condbr {cond}, {then_bb}, {else_bb}"),
            Term::Ret(Some(v)) => write!(f, "ret {v}"),
            Term::Ret(None) => write!(f, "ret"),
        }
    }
}

/// The result type of an instruction, given its operand/result context.
///
/// Returns `None` for instructions that produce no value.
pub fn result_type(
    op: &Op,
    operand_ty: impl Fn(ValueId) -> Type,
    ret_of: impl Fn(FuncId) -> Option<Type>,
) -> Option<Type> {
    match op {
        Op::Bin { lhs, .. } => Some(operand_ty(*lhs)),
        Op::Un { arg, .. } => Some(operand_ty(*arg)),
        Op::Icmp { .. } | Op::Fcmp { .. } => Some(Type::I1),
        Op::Cast { .. } => None, // cast result type is explicit; see builder
        Op::Select { on_true, .. } => Some(operand_ty(*on_true)),
        Op::Load { .. } => None, // load result type is explicit; see builder
        Op::Store { .. } | Op::Check { .. } => None,
        Op::Call { func, .. } => ret_of(*func),
        Op::Phi { incomings } => incomings.first().map(|(_, v)| operand_ty(*v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_collection_covers_all_variants() {
        let a = ValueId::new(0);
        let b = ValueId::new(1);
        let c = ValueId::new(2);
        let cases: Vec<(Op, usize)> = vec![
            (
                Op::Bin {
                    op: BinOp::Add,
                    lhs: a,
                    rhs: b,
                },
                2,
            ),
            (
                Op::Un {
                    op: UnOp::FAbs,
                    arg: a,
                },
                1,
            ),
            (
                Op::Icmp {
                    pred: IntCC::Eq,
                    lhs: a,
                    rhs: b,
                },
                2,
            ),
            (
                Op::Fcmp {
                    pred: FloatCC::Lt,
                    lhs: a,
                    rhs: b,
                },
                2,
            ),
            (
                Op::Cast {
                    kind: CastKind::SExt,
                    arg: c,
                },
                1,
            ),
            (
                Op::Select {
                    cond: a,
                    on_true: b,
                    on_false: c,
                },
                3,
            ),
            (Op::Load { addr: a }, 1),
            (Op::Store { addr: a, value: b }, 2),
            (
                Op::Call {
                    func: FuncId::new(0),
                    args: vec![a, b, c],
                },
                3,
            ),
            (
                Op::Phi {
                    incomings: vec![(BlockId::new(0), a), (BlockId::new(1), b)],
                },
                2,
            ),
            (
                Op::Check {
                    cond: a,
                    kind: CheckKind::ValueRange,
                },
                1,
            ),
        ];
        for (op, n) in cases {
            assert_eq!(op.operand_vec().len(), n, "{}", op.mnemonic());
        }
    }

    #[test]
    fn operand_rewrite_applies_everywhere() {
        let a = ValueId::new(0);
        let b = ValueId::new(1);
        let mut op = Op::Select {
            cond: a,
            on_true: a,
            on_false: a,
        };
        op.for_each_operand_mut(|v| *v = b);
        assert_eq!(op.operand_vec(), vec![b, b, b]);
    }

    #[test]
    fn classification_predicates() {
        let a = ValueId::new(0);
        assert!(Op::Store { addr: a, value: a }.has_side_effect());
        assert!(!Op::Load { addr: a }.has_side_effect());
        assert!(!Op::Load { addr: a }.is_duplicable());
        assert!(Op::Bin {
            op: BinOp::Mul,
            lhs: a,
            rhs: a
        }
        .is_duplicable());
        assert!(BinOp::SDiv.can_trap());
        assert!(!BinOp::Add.can_trap());
        assert!(BinOp::FMul.is_float());
        assert!(CheckKind::ValuePair.is_value_check());
        assert!(!CheckKind::DupMismatch.is_value_check());
    }

    #[test]
    fn terminator_successors() {
        let t = Term::CondBr {
            cond: ValueId::new(0),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(t.cond(), Some(ValueId::new(0)));
        assert!(Term::Ret(None).successors().is_empty());
    }
}
