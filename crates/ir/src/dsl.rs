//! Structured frontend with on-the-fly SSA construction.
//!
//! [`FunctionDsl`] lets workloads be written with mutable variables and
//! structured control flow (`if`/`while`/`for`); SSA form is constructed
//! on the fly using the algorithm of Braun et al. (CC 2013): variable reads
//! insert phi operands lazily, blocks are *sealed* once all their
//! predecessors are known, and trivial phis are removed with use-rewriting.
//!
//! The payoff for this reproduction: any variable that carries state across
//! loop iterations materializes as a **phi node in the loop header** — the
//! exact structural property the paper's state-variable analysis keys on —
//! while variables that are merely read in a loop do *not* (their trivial
//! phis are removed), keeping the state-variable census honest.

use crate::builder::InstBuilder;
use crate::entities::{BlockId, FuncId, InstId, ValueId};
use crate::function::Function;
use crate::inst::{BinOp, CastKind, CheckKind, FloatCC, IntCC, Op, Term, UnOp};
use crate::types::Type;
use std::collections::HashMap;

/// A mutable variable handle in the DSL (pre-SSA).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(u32);

/// Where a value is used (for trivial-phi use rewriting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UseSite {
    Inst(InstId),
    Term(BlockId),
}

/// Structured function builder with automatic SSA construction.
///
/// See the [module docs](self) and the crate-level example.
#[derive(Debug)]
pub struct FunctionDsl {
    func: Function,
    cur: BlockId,
    terminated: bool,
    var_types: Vec<Type>,
    current_def: Vec<HashMap<BlockId, ValueId>>,
    sealed: Vec<bool>,
    preds: Vec<Vec<BlockId>>,
    incomplete_phis: HashMap<BlockId, Vec<(Var, InstId)>>,
    uses: HashMap<ValueId, Vec<UseSite>>,
    replaced: HashMap<ValueId, ValueId>,
}

impl FunctionDsl {
    /// Builds a complete function by running `body` against a fresh DSL.
    ///
    /// If `body` does not terminate the final block, a `ret` (of zero for
    /// value-returning functions) is appended automatically.
    ///
    /// # Panics
    ///
    /// Panics if construction leaves a reachable block unterminated or a
    /// block unsealed (both indicate a bug in the structured API usage).
    pub fn build(
        name: impl Into<String>,
        params: &[Type],
        ret: Option<Type>,
        body: impl FnOnce(&mut FunctionDsl),
    ) -> Function {
        let func = Function::new(name, params, ret);
        let mut d = FunctionDsl {
            cur: func.entry(),
            terminated: false,
            func,
            var_types: Vec::new(),
            current_def: Vec::new(),
            sealed: vec![true], // entry block has no predecessors
            preds: vec![Vec::new()],
            incomplete_phis: HashMap::new(),
            uses: HashMap::new(),
            replaced: HashMap::new(),
        };
        body(&mut d);
        d.finish()
    }

    fn finish(mut self) -> Function {
        if !self.terminated {
            let ret = self.func.ret;
            let v = ret.map(|ty| self.zero(ty));
            self.ret(v);
        }
        assert!(
            self.incomplete_phis.is_empty(),
            "unsealed blocks remain at end of construction"
        );
        // Terminate unreachable blocks (e.g. the merge block after an
        // if/else in which both arms return).
        for b in 0..self.func.num_blocks() {
            let bid = BlockId::new(b);
            if self.func.block(bid).term.is_none() {
                assert!(
                    self.preds[b].is_empty(),
                    "reachable block {bid} left unterminated"
                );
                let ret = self.func.ret;
                let v = ret.map(|ty| self.zero(ty));
                self.func.set_term(bid, Term::Ret(v));
            }
        }
        self.func
    }

    /// The function under construction (read-only view).
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// SSA value of the `n`-th parameter.
    pub fn param(&self, n: usize) -> ValueId {
        self.func.param(n)
    }

    // ---- value resolution & use tracking -------------------------------

    fn resolve(&self, mut v: ValueId) -> ValueId {
        while let Some(&r) = self.replaced.get(&v) {
            v = r;
        }
        v
    }

    fn note_use(&mut self, v: ValueId, site: UseSite) {
        self.uses.entry(v).or_default().push(site);
    }

    fn emit(&mut self, build: impl FnOnce(&mut InstBuilder<'_>) -> ValueId) -> ValueId {
        let cur = self.cur;
        assert!(!self.terminated, "emitting into a terminated block");
        let mut b = InstBuilder::new(&mut self.func, cur);
        let v = build(&mut b);
        if let Some(inst) = self.func.def_inst(v) {
            let ops = self.func.inst(inst).op.operand_vec();
            for o in ops {
                self.note_use(o, UseSite::Inst(inst));
            }
        }
        v
    }

    fn emit_void(&mut self, build: impl FnOnce(&mut InstBuilder<'_>)) {
        let cur = self.cur;
        assert!(!self.terminated, "emitting into a terminated block");
        let mut b = InstBuilder::new(&mut self.func, cur);
        build(&mut b);
        let last = *self
            .func
            .block(cur)
            .insts
            .last()
            .expect("void emission appends an instruction");
        let ops = self.func.inst(last).op.operand_vec();
        for o in ops {
            self.note_use(o, UseSite::Inst(last));
        }
    }

    // ---- variables (Braun SSA) ------------------------------------------

    /// Declares a mutable variable of type `ty`.
    pub fn declare_var(&mut self, ty: Type) -> Var {
        self.var_types.push(ty);
        self.current_def.push(HashMap::new());
        Var(self.var_types.len() as u32 - 1)
    }

    /// Assigns `value` to `var` at the current point.
    ///
    /// # Panics
    ///
    /// Panics if the value's type does not match the variable's type.
    pub fn set(&mut self, var: Var, value: ValueId) {
        let value = self.resolve(value);
        assert_eq!(
            self.func.value_type(value),
            self.var_types[var.0 as usize],
            "variable assignment type mismatch"
        );
        self.write_var(var, self.cur, value);
    }

    /// Reads the current SSA value of `var`, inserting phis as needed.
    ///
    /// # Panics
    ///
    /// Panics if the variable is read before any assignment on some path
    /// (detected as a phi in the entry block with no predecessors).
    pub fn get(&mut self, var: Var) -> ValueId {
        self.read_var(var, self.cur)
    }

    fn write_var(&mut self, var: Var, block: BlockId, value: ValueId) {
        self.current_def[var.0 as usize].insert(block, value);
    }

    fn read_var(&mut self, var: Var, block: BlockId) -> ValueId {
        if let Some(&v) = self.current_def[var.0 as usize].get(&block) {
            return self.resolve(v);
        }
        self.read_var_recursive(var, block)
    }

    fn read_var_recursive(&mut self, var: Var, block: BlockId) -> ValueId {
        let ty = self.var_types[var.0 as usize];
        let val;
        if !self.sealed[block.index()] {
            let (inst, v) = {
                let mut b = InstBuilder::new(&mut self.func, block);
                b.empty_phi(ty, block)
            };
            self.incomplete_phis
                .entry(block)
                .or_default()
                .push((var, inst));
            val = v;
        } else if self.preds[block.index()].len() == 1 {
            let pred = self.preds[block.index()][0];
            val = self.read_var(var, pred);
        } else {
            assert!(
                !self.preds[block.index()].is_empty(),
                "variable read before assignment (no predecessor defines it)"
            );
            let (inst, v) = {
                let mut b = InstBuilder::new(&mut self.func, block);
                b.empty_phi(ty, block)
            };
            // Break potential cycles before recursing.
            self.write_var(var, block, v);
            val = self.add_phi_operands(var, inst);
        }
        self.write_var(var, block, val);
        val
    }

    fn add_phi_operands(&mut self, var: Var, phi: InstId) -> ValueId {
        let block = self.func.inst(phi).block;
        let preds = self.preds[block.index()].clone();
        for pred in preds {
            let v = self.read_var(var, pred);
            if let Op::Phi { incomings } = &mut self.func.inst_mut(phi).op {
                incomings.push((pred, v));
            }
            self.note_use(v, UseSite::Inst(phi));
        }
        self.try_remove_trivial_phi(phi)
    }

    fn try_remove_trivial_phi(&mut self, phi: InstId) -> ValueId {
        let phi_val = self.func.inst(phi).result.expect("phi has a result");
        if self.func.inst(phi).dead {
            return self.resolve(phi_val);
        }
        let incomings = match &self.func.inst(phi).op {
            Op::Phi { incomings } => incomings.clone(),
            _ => unreachable!("try_remove_trivial_phi on non-phi"),
        };
        let mut same: Option<ValueId> = None;
        for (_, op) in &incomings {
            let op = self.resolve(*op);
            if op == phi_val || Some(op) == same {
                continue;
            }
            if same.is_some() {
                return phi_val; // merges at least two distinct values
            }
            same = Some(op);
        }
        let Some(same) = same else {
            // Only self-references (unreachable-in-practice phi); keep it.
            return phi_val;
        };
        // Reroute every use of phi_val to same, then erase the phi.
        let users = self.uses.remove(&phi_val).unwrap_or_default();
        self.replaced.insert(phi_val, same);
        let mut phi_users = Vec::new();
        for site in &users {
            match *site {
                UseSite::Inst(i) => {
                    if self.func.inst(i).dead || i == phi {
                        continue;
                    }
                    self.func.inst_mut(i).op.for_each_operand_mut(|v| {
                        if *v == phi_val {
                            *v = same;
                        }
                    });
                    self.note_use(same, UseSite::Inst(i));
                    if self.func.inst(i).op.is_phi() {
                        phi_users.push(i);
                    }
                }
                UseSite::Term(b) => {
                    if let Some(term) = &mut self.func.block_mut(b).term {
                        term.for_each_operand_mut(|v| {
                            if *v == phi_val {
                                *v = same;
                            }
                        });
                    }
                    self.note_use(same, UseSite::Term(b));
                }
            }
        }
        self.func.remove_inst(phi);
        for user in phi_users {
            self.try_remove_trivial_phi(user);
        }
        self.resolve(same)
    }

    fn seal_block(&mut self, block: BlockId) {
        if self.sealed[block.index()] {
            return;
        }
        if let Some(pending) = self.incomplete_phis.remove(&block) {
            for (var, phi) in pending {
                self.add_phi_operands(var, phi);
            }
        }
        self.sealed[block.index()] = true;
    }

    // ---- control flow ----------------------------------------------------

    fn new_block(&mut self) -> BlockId {
        let b = self.func.add_block();
        self.sealed.push(false);
        self.preds.push(Vec::new());
        b
    }

    fn add_edge(&mut self, from: BlockId, to: BlockId) {
        assert!(
            !self.sealed[to.index()],
            "adding a predecessor to an already-sealed block"
        );
        self.preds[to.index()].push(from);
    }

    fn branch_to(&mut self, target: BlockId) {
        let from = self.cur;
        self.add_edge(from, target);
        self.func.set_term(from, Term::Br(target));
    }

    fn cond_branch_to(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        let cond = self.resolve(cond);
        let from = self.cur;
        self.add_edge(from, then_bb);
        self.add_edge(from, else_bb);
        assert_eq!(
            self.func.value_type(cond),
            Type::I1,
            "branch condition must be i1"
        );
        self.func.set_term(
            from,
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            },
        );
        self.note_use(cond, UseSite::Term(from));
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, v: Option<ValueId>) {
        let v = v.map(|v| self.resolve(v));
        let from = self.cur;
        self.func.set_term(from, Term::Ret(v));
        if let Some(v) = v {
            self.note_use(v, UseSite::Term(from));
        }
        self.terminated = true;
    }

    /// `if cond { then_f }` — a one-armed conditional.
    pub fn if_(&mut self, cond: ValueId, then_f: impl FnOnce(&mut FunctionDsl)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// `if cond { then_f } else { else_f }`.
    ///
    /// Either arm may `ret`; execution continues in the merge block.
    pub fn if_else(
        &mut self,
        cond: ValueId,
        then_f: impl FnOnce(&mut FunctionDsl),
        else_f: impl FnOnce(&mut FunctionDsl),
    ) {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let merge = self.new_block();
        self.cond_branch_to(cond, then_bb, else_bb);
        self.seal_block(then_bb);
        self.seal_block(else_bb);

        self.cur = then_bb;
        self.terminated = false;
        then_f(self);
        if !self.terminated {
            self.branch_to(merge);
        }

        self.cur = else_bb;
        self.terminated = false;
        else_f(self);
        if !self.terminated {
            self.branch_to(merge);
        }

        self.seal_block(merge);
        self.cur = merge;
        self.terminated = false;
    }

    /// `while cond_f() { body_f }`.
    ///
    /// `cond_f` is evaluated in the loop header each iteration and must be
    /// straight-line (no nested control flow); `body_f` may nest freely.
    pub fn while_(
        &mut self,
        cond_f: impl FnOnce(&mut FunctionDsl) -> ValueId,
        body_f: impl FnOnce(&mut FunctionDsl),
    ) {
        let header = self.new_block();
        let body = self.new_block();
        let exit = self.new_block();
        self.branch_to(header);

        // Header is left unsealed until the backedge is known.
        self.cur = header;
        self.terminated = false;
        let cond = cond_f(self);
        assert_eq!(
            self.cur, header,
            "while_ condition closures must be straight-line"
        );
        self.cond_branch_to(cond, body, exit);

        self.seal_block(body);
        self.cur = body;
        self.terminated = false;
        body_f(self);
        if !self.terminated {
            self.branch_to(header); // the backedge
        }
        self.seal_block(header);
        self.seal_block(exit);
        self.cur = exit;
        self.terminated = false;
    }

    /// `for i in start..end { body(i) }` over the type of `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` and `end` have different integer types.
    pub fn for_range(
        &mut self,
        start: ValueId,
        end: ValueId,
        body: impl FnOnce(&mut FunctionDsl, ValueId),
    ) {
        self.for_range_step(start, end, 1, body);
    }

    /// `for i in (start..end).step_by(step) { body(i) }`.
    pub fn for_range_step(
        &mut self,
        start: ValueId,
        end: ValueId,
        step: i64,
        body: impl FnOnce(&mut FunctionDsl, ValueId),
    ) {
        let ty = self.func.value_type(self.resolve(start));
        assert_eq!(
            ty,
            self.func.value_type(self.resolve(end)),
            "for_range bound types differ"
        );
        assert!(ty.is_int(), "for_range over non-integer type");
        let i = self.declare_var(ty);
        self.set(i, start);
        self.while_(
            |d| {
                let iv = d.get(i);
                d.icmp(IntCC::Slt, iv, end)
            },
            |d| {
                let iv = d.get(i);
                body(d, iv);
                let one = d.iconst_t(ty, step);
                let iv = d.get(i);
                let next = d.add(iv, one);
                d.set(i, next);
            },
        );
    }

    // ---- instruction wrappers ---------------------------------------------

    /// Integer constant of type `ty`.
    pub fn iconst(&mut self, ty: Type, v: i64) -> ValueId {
        self.func.iconst(ty, v)
    }

    /// Integer constant of type `ty` (alias kept for call sites that read
    /// better with an explicit `_t` suffix).
    pub fn iconst_t(&mut self, ty: Type, v: i64) -> ValueId {
        self.func.iconst(ty, v)
    }

    /// `I64` constant (the common case: loop bounds and addresses).
    pub fn i64c(&mut self, v: i64) -> ValueId {
        self.func.iconst(Type::I64, v)
    }

    /// `I32` constant.
    pub fn i32c(&mut self, v: i64) -> ValueId {
        self.func.iconst(Type::I32, v)
    }

    /// Float constant.
    pub fn fconst(&mut self, v: f64) -> ValueId {
        self.func.fconst(v)
    }

    /// Zero of `ty`.
    pub fn zero(&mut self, ty: Type) -> ValueId {
        match ty {
            Type::F64 => self.func.fconst(0.0),
            _ => self.func.iconst(ty, 0),
        }
    }

    fn bin2(&mut self, op: BinOp, a: ValueId, b: ValueId) -> ValueId {
        let (a, b) = (self.resolve(a), self.resolve(b));
        self.emit(|bld| bld.bin(op, a, b))
    }

    /// Wrapping integer add.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Add, a, b)
    }
    /// Wrapping integer subtract.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Sub, a, b)
    }
    /// Wrapping integer multiply.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Mul, a, b)
    }
    /// Signed divide.
    pub fn sdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::SDiv, a, b)
    }
    /// Signed remainder.
    pub fn srem(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::SRem, a, b)
    }
    /// Unsigned divide.
    pub fn udiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::UDiv, a, b)
    }
    /// Unsigned remainder.
    pub fn urem(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::URem, a, b)
    }
    /// Bitwise and.
    pub fn and_(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::And, a, b)
    }
    /// Bitwise or.
    pub fn or_(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Xor, a, b)
    }
    /// Shift left.
    pub fn shl(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::Shl, a, b)
    }
    /// Logical shift right.
    pub fn lshr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::LShr, a, b)
    }
    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::AShr, a, b)
    }
    /// Float add.
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::FAdd, a, b)
    }
    /// Float subtract.
    pub fn fsub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::FSub, a, b)
    }
    /// Float multiply.
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::FMul, a, b)
    }
    /// Float divide.
    pub fn fdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin2(BinOp::FDiv, a, b)
    }

    /// Float square root.
    pub fn fsqrt(&mut self, a: ValueId) -> ValueId {
        let a = self.resolve(a);
        self.emit(|b| b.un(UnOp::FSqrt, a))
    }
    /// Float absolute value.
    pub fn fabs(&mut self, a: ValueId) -> ValueId {
        let a = self.resolve(a);
        self.emit(|b| b.un(UnOp::FAbs, a))
    }
    /// Float floor.
    pub fn ffloor(&mut self, a: ValueId) -> ValueId {
        let a = self.resolve(a);
        self.emit(|b| b.un(UnOp::FFloor, a))
    }
    /// Float negation.
    pub fn fneg(&mut self, a: ValueId) -> ValueId {
        let a = self.resolve(a);
        self.emit(|b| b.un(UnOp::FNeg, a))
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: IntCC, a: ValueId, b: ValueId) -> ValueId {
        let (a, b) = (self.resolve(a), self.resolve(b));
        self.emit(|bld| bld.icmp(pred, a, b))
    }
    /// Float comparison.
    pub fn fcmp(&mut self, pred: FloatCC, a: ValueId, b: ValueId) -> ValueId {
        let (a, b) = (self.resolve(a), self.resolve(b));
        self.emit(|bld| bld.fcmp(pred, a, b))
    }
    /// Two-way select.
    pub fn select(&mut self, c: ValueId, t: ValueId, f: ValueId) -> ValueId {
        let (c, t, f) = (self.resolve(c), self.resolve(t), self.resolve(f));
        self.emit(|bld| bld.select(c, t, f))
    }
    /// Type cast.
    pub fn cast(&mut self, kind: CastKind, a: ValueId, to: Type) -> ValueId {
        let a = self.resolve(a);
        self.emit(|bld| bld.cast(kind, a, to))
    }
    /// Sign-extend to `to` (no-op if the type already matches).
    pub fn sext(&mut self, a: ValueId, to: Type) -> ValueId {
        let a = self.resolve(a);
        if self.func.value_type(a) == to {
            return a;
        }
        self.cast(CastKind::SExt, a, to)
    }
    /// Zero-extend to `to` (no-op if the type already matches).
    pub fn zext(&mut self, a: ValueId, to: Type) -> ValueId {
        let a = self.resolve(a);
        if self.func.value_type(a) == to {
            return a;
        }
        self.cast(CastKind::ZExt, a, to)
    }
    /// Truncate to `to` (no-op if the type already matches).
    pub fn trunc(&mut self, a: ValueId, to: Type) -> ValueId {
        let a = self.resolve(a);
        if self.func.value_type(a) == to {
            return a;
        }
        self.cast(CastKind::Trunc, a, to)
    }
    /// Signed integer to float.
    pub fn sitofp(&mut self, a: ValueId) -> ValueId {
        self.cast(CastKind::SiToFp, a, Type::F64)
    }
    /// Float to signed integer of type `to`.
    pub fn fptosi(&mut self, a: ValueId, to: Type) -> ValueId {
        self.cast(CastKind::FpToSi, a, to)
    }

    /// Load a `ty` value from byte address `addr`.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        let addr = self.resolve(addr);
        self.emit(|b| b.load(ty, addr))
    }
    /// Store `value` at byte address `addr`.
    pub fn store(&mut self, addr: ValueId, value: ValueId) {
        let (addr, value) = (self.resolve(addr), self.resolve(value));
        self.emit_void(|b| b.store(addr, value));
    }
    /// Direct call (see [`InstBuilder::call`]).
    pub fn call(&mut self, func: FuncId, args: &[ValueId], ret: Option<Type>) -> Option<ValueId> {
        let args: Vec<ValueId> = args.iter().map(|&a| self.resolve(a)).collect();
        assert!(!self.terminated, "emitting into a terminated block");
        let cur = self.cur;
        let mut b = InstBuilder::new(&mut self.func, cur);
        let r = b.call(func, &args, ret);
        let last = *self.func.block(cur).insts.last().expect("call appended");
        for a in args {
            self.note_use(a, UseSite::Inst(last));
        }
        r
    }
    /// Insert a detection check (mainly useful in tests; the transformation
    /// passes insert checks themselves).
    pub fn check(&mut self, cond: ValueId, kind: CheckKind) {
        let cond = self.resolve(cond);
        self.emit_void(|b| b.check(cond, kind));
    }

    // ---- addressing helpers ------------------------------------------------

    /// Computes `base + index * scale` as an `I64` address.
    ///
    /// `index` may be any integer type; it is sign-extended.
    pub fn elem_addr(&mut self, base: ValueId, index: ValueId, scale: i64) -> ValueId {
        let idx = self.sext(index, Type::I64);
        let scaled = if scale == 1 {
            idx
        } else {
            let s = self.i64c(scale);
            self.mul(idx, s)
        };
        self.add(base, scaled)
    }

    /// Loads element `index` (scaled by the type's byte size) from `base`.
    pub fn load_elem(&mut self, ty: Type, base: ValueId, index: ValueId) -> ValueId {
        let addr = self.elem_addr(base, index, ty.bytes() as i64);
        self.load(ty, addr)
    }

    /// Stores `value` to element `index` (scaled by the value type's size)
    /// of `base`.
    pub fn store_elem(&mut self, base: ValueId, index: ValueId, value: ValueId) {
        let value = self.resolve(value);
        let bytes = self.func.value_type(value).bytes() as i64;
        let addr = self.elem_addr(base, index, bytes);
        self.store(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;
    use crate::{Op, ValueKind};

    fn loop_header_phis(f: &Function) -> usize {
        // Count phis anywhere (all DSL phis are in loop headers or merges).
        f.live_inst_ids().filter(|&i| f.inst(i).op.is_phi()).count()
    }

    #[test]
    fn straightline_function_builds_and_verifies() {
        let f = FunctionDsl::build("f", &[Type::I32, Type::I32], Some(Type::I32), |d| {
            let (a, b) = (d.param(0), d.param(1));
            let s = d.add(a, b);
            let t = d.mul(s, a);
            d.ret(Some(t));
        });
        verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn loop_carried_variable_becomes_phi() {
        let f = FunctionDsl::build("sum", &[], Some(Type::I64), |d| {
            let sum = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(sum, z);
            let start = d.i64c(0);
            let end = d.i64c(10);
            d.for_range(start, end, |d, i| {
                let s = d.get(sum);
                let s2 = d.add(s, i);
                d.set(sum, s2);
            });
            let s = d.get(sum);
            d.ret(Some(s));
        });
        verify_function(&f).unwrap();
        // Two phis in the loop header: `sum` and the induction variable.
        assert_eq!(loop_header_phis(&f), 2);
    }

    #[test]
    fn read_only_variable_in_loop_has_no_phi() {
        let f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let k = d.declare_var(Type::I64);
            let p = d.param(0);
            d.set(k, p); // never modified inside the loop
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(4));
            d.for_range(s, e, |d, _i| {
                let kv = d.get(k); // read-only use
                let a = d.get(acc);
                let a2 = d.add(a, kv);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        verify_function(&f).unwrap();
        // Phis: acc + induction var only — k's trivial phi was removed.
        assert_eq!(loop_header_phis(&f), 2);
    }

    #[test]
    fn if_else_merges_with_phi() {
        let f = FunctionDsl::build("f", &[Type::I32], Some(Type::I32), |d| {
            let x = d.declare_var(Type::I32);
            let p = d.param(0);
            let zero = d.i32c(0);
            let c = d.icmp(IntCC::Sgt, p, zero);
            let one = d.i32c(1);
            let neg = d.i32c(-1);
            d.if_else(c, |d| d.set(x, one), |d| d.set(x, neg));
            let xv = d.get(x);
            d.ret(Some(xv));
        });
        verify_function(&f).unwrap();
        assert_eq!(loop_header_phis(&f), 1); // merge phi for x
    }

    #[test]
    fn early_return_in_one_arm() {
        let f = FunctionDsl::build("f", &[Type::I32], Some(Type::I32), |d| {
            let p = d.param(0);
            let zero = d.i32c(0);
            let c = d.icmp(IntCC::Slt, p, zero);
            d.if_(c, |d| {
                let m = d.i32c(-100);
                d.ret(Some(m));
            });
            d.ret(Some(p));
        });
        verify_function(&f).unwrap();
    }

    #[test]
    fn nested_loops_verify() {
        let f = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(3));
            d.for_range(s, e, |d, i| {
                let (s2, e2) = (d.i64c(0), d.i64c(3));
                d.for_range(s2, e2, |d, j| {
                    let a = d.get(acc);
                    let ij = d.mul(i, j);
                    let a2 = d.add(a, ij);
                    d.set(acc, a2);
                });
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        verify_function(&f).unwrap();
    }

    #[test]
    fn while_with_state_variable_like_crc() {
        // Mirrors the paper's Fig. 3 mp3 CRC loop shape.
        let f = FunctionDsl::build("crc", &[Type::I64, Type::I64], Some(Type::I64), |d| {
            let crc = d.declare_var(Type::I64);
            let len = d.declare_var(Type::I64);
            let init = d.param(0);
            let n = d.param(1);
            d.set(crc, init);
            d.set(len, n);
            d.while_(
                |d| {
                    let l = d.get(len);
                    let c32 = d.i64c(32);
                    d.icmp(IntCC::Sge, l, c32)
                },
                |d| {
                    let c = d.get(crc);
                    let eight = d.i64c(8);
                    let shifted = d.shl(c, eight);
                    let l = d.get(len);
                    let x = d.xor(shifted, l);
                    d.set(crc, x);
                    let c32 = d.i64c(32);
                    let l2 = d.sub(l, c32);
                    d.set(len, l2);
                },
            );
            let c = d.get(crc);
            d.ret(Some(c));
        });
        verify_function(&f).unwrap();
        assert_eq!(loop_header_phis(&f), 2); // crc and len
    }

    #[test]
    fn trivial_phi_replacement_rewrites_terminator_uses() {
        // A variable set before a loop and returned after it, with the
        // return inside an if that reads it: ensures Term rewrites work.
        let f = FunctionDsl::build("f", &[Type::I64], Some(Type::I64), |d| {
            let v = d.declare_var(Type::I64);
            let p = d.param(0);
            d.set(v, p);
            let (s, e) = (d.i64c(0), d.i64c(2));
            d.for_range(s, e, |d, _| {
                let _unused = d.get(v);
            });
            let out = d.get(v);
            d.ret(Some(out));
        });
        verify_function(&f).unwrap();
        // v is loop-invariant: only the induction phi remains.
        assert_eq!(
            f.live_inst_ids().filter(|&i| f.inst(i).op.is_phi()).count(),
            1
        );
    }

    #[test]
    fn elem_addressing_scales_by_width() {
        let f = FunctionDsl::build("f", &[Type::I64, Type::I32], Some(Type::I32), |d| {
            let base = d.param(0);
            let idx = d.param(1);
            let v = d.load_elem(Type::I32, base, idx);
            d.store_elem(base, idx, v);
            d.ret(Some(v));
        });
        verify_function(&f).unwrap();
        // Check a mul-by-4 exists.
        let has_scale = f.live_inst_ids().any(|i| {
            matches!(&f.inst(i).op, Op::Bin { op: BinOp::Mul, rhs, .. }
                if matches!(f.value(*rhs).kind, ValueKind::Const(c) if c.bits() == 4))
        });
        assert!(has_scale);
    }

    #[test]
    #[should_panic(expected = "variable read before assignment")]
    fn uninitialized_read_panics() {
        let _ = FunctionDsl::build("f", &[], Some(Type::I64), |d| {
            let v = d.declare_var(Type::I64);
            let x = d.get(v);
            d.ret(Some(x));
        });
    }

    #[test]
    fn auto_return_on_fallthrough() {
        let f = FunctionDsl::build("f", &[], Some(Type::I32), |d| {
            let _ = d.i32c(1);
        });
        verify_function(&f).unwrap();
    }
}
